//! # Computational Neighborhood (CN)
//!
//! A full Rust reproduction of *“A Model-Driven Approach to Job/Task
//! Composition in Cluster Computing”* (Mehta, Kanitkar, Läufer,
//! Thiruvathukal; IPDPS 2007).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`xml`] / [`xpath`] / [`xslt`] — the XML substrate the generative tool
//!   chain runs on (built from scratch; no offline XML crates exist).
//! * [`model`] — UML activity-diagram models with tagged values and XMI 1.2
//!   import/export (paper Figures 3, 4, 5, 7).
//! * [`cnx`] — the CNX compositional language (paper Figure 2).
//! * [`cluster`] — the deterministic simulated cluster substrate standing in
//!   for the paper's Ethernet cluster of PCs.
//! * [`core`] — the CN runtime: CN API factory, Job/Task, JobManager,
//!   TaskManager, CNServer, messaging, tuple spaces.
//! * [`tasks`] — the task library, including the paper's guiding example
//!   (parallel Floyd transitive closure: `TaskSplit`, `TCTask`, `TCJoin`).
//! * [`codegen`] — native client-program generation from CNX.
//! * [`transform`] — XMI2CNX / CNX2Rust / CNX2Java stylesheets, the six-step
//!   pipeline of Figure 6, and the web-portal prototype.
//! * [`graph`] — shared graph algorithms (deterministic cycle search).
//! * [`analysis`] — the cross-layer lint engine behind `cnctl lint`: coded,
//!   spanned diagnostics over CNX descriptors and activity models.
//! * [`check`] — the deterministic concurrency checker behind `cnctl check`:
//!   controlled-scheduler exploration of the runtime's real concurrency
//!   surfaces, with lock-order analysis and replayable counterexamples.
//! * [`observe`] — the observability subsystem: metrics registry, span
//!   tracing with logical clocks, flight recorder, and the exporters behind
//!   `cnctl trace` / `cnctl stats`.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the complete model → XMI → CNX → execute
//! flow on a 5-worker transitive-closure job.

pub use cn_analysis as analysis;
pub use cn_check as check;
pub use cn_cluster as cluster;
pub use cn_cnx as cnx;
pub use cn_codegen as codegen;
pub use cn_core as core;
pub use cn_graph as graph;
pub use cn_model as model;
pub use cn_observe as observe;
pub use cn_portal as portal;
pub use cn_tasks as tasks;
pub use cn_transform as transform;
pub use cn_wire as wire;
pub use cn_xml as xml;
pub use cn_xpath as xpath;
pub use cn_xslt as xslt;
