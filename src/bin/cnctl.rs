//! `cnctl` — command-line front end to the CN tool chain.
//!
//! ```text
//! cnctl validate  <file.cnx>                      check + DAG analytics
//! cnctl transform <file.xmi> [--class C] [--port P] [--log L] [--no-keys]
//! cnctl codegen   <file.cnx> [--lang rust|java]
//! cnctl render    <file.cnx|file.xmi> [--format dot|ascii]
//! cnctl demo      [workers]                        full pipeline on the TC example
//! cnctl example-xmi [workers]                      emit the Figure-3 model as XMI
//! ```
//!
//! Everything reads/writes plain files or stdout, so the tool composes with
//! shell pipelines the way the paper's XSLT-based tooling did.

use std::fmt::Write as _;

use computational_neighborhood::cnx;
use computational_neighborhood::codegen;
use computational_neighborhood::model;
use computational_neighborhood::transform::{self, xmi2cnx::ClientSettings};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("cnctl: {e}");
            std::process::exit(1);
        }
    }
}

/// Dispatch a command line; returns the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter();
    let command = it.next().map(String::as_str).unwrap_or("help");
    let rest: Vec<&str> = it.map(String::as_str).collect();
    match command {
        "validate" => {
            let path = positional(&rest, 0).ok_or("usage: cnctl validate <file.cnx>")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            validate_cnx(&text)
        }
        "transform" => {
            let path = positional(&rest, 0).ok_or("usage: cnctl transform <file.xmi> [...]")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            transform_xmi(&text, &rest)
        }
        "codegen" => {
            let path = positional(&rest, 0).ok_or("usage: cnctl codegen <file.cnx> [...]")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            codegen_cnx(&text, flag_value(&rest, "--lang").unwrap_or("rust"))
        }
        "render" => {
            let path = positional(&rest, 0).ok_or("usage: cnctl render <file> [...]")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            render(&text, flag_value(&rest, "--format").unwrap_or("ascii"))
        }
        "example-xmi" => {
            let workers: usize = positional(&rest, 0)
                .map(|w| w.parse().map_err(|_| format!("bad worker count {w:?}")))
                .transpose()?
                .unwrap_or(5);
            if workers == 0 {
                return Err("need at least one worker".to_string());
            }
            Ok(computational_neighborhood::xml::write_document(
                &model::export_xmi(&transform::figure2_model(workers)),
                &computational_neighborhood::xml::WriteOptions::xmi(),
            ))
        }
        "demo" => {
            let workers: usize = positional(&rest, 0)
                .map(|w| w.parse().map_err(|_| format!("bad worker count {w:?}")))
                .transpose()?
                .unwrap_or(3);
            demo(workers)
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "usage: cnctl <validate|transform|codegen|render|demo|example-xmi|help> [args]\n";

fn positional<'a>(args: &[&'a str], index: usize) -> Option<&'a str> {
    args.iter().filter(|a| !a.starts_with("--")).nth(index).copied()
}

fn flag_value<'a>(args: &[&'a str], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| *a == flag).and_then(|i| args.get(i + 1)).copied()
}

fn has_flag(args: &[&str], flag: &str) -> bool {
    args.contains(&flag)
}

/// `validate`: parse, validate, and summarize the dependency structure.
fn validate_cnx(text: &str) -> Result<String, String> {
    let doc = cnx::parse_cnx(text).map_err(|e| e.to_string())?;
    cnx::validate(&doc).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "client {:?}: OK", doc.client.class);
    for (i, job) in doc.client.jobs.iter().enumerate() {
        let graph = cnx::DependencyGraph::build(job).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "  job {i}: {} tasks, {} wave(s), critical path {}, max parallelism {}",
            graph.len(),
            graph.waves().len(),
            graph.critical_path_len(),
            graph.max_parallelism()
        );
        for (w, wave) in graph.waves().iter().enumerate() {
            let names: Vec<&str> = wave.iter().map(|&t| graph.name(t)).collect();
            let _ = writeln!(out, "    wave {w}: {}", names.join(", "));
        }
    }
    Ok(out)
}

/// `transform`: XMI text → CNX text via the XSLT path.
fn transform_xmi(text: &str, args: &[&str]) -> Result<String, String> {
    let settings = ClientSettings {
        class: flag_value(args, "--class").map(str::to_string),
        port: flag_value(args, "--port")
            .map(|p| p.parse().map_err(|_| format!("bad port {p:?}")))
            .transpose()?,
        log: flag_value(args, "--log").map(str::to_string),
    };
    let result = if has_flag(args, "--no-keys") {
        transform::xmi2cnx::xmi_to_cnx_xslt_nokeys(text, &settings)
    } else {
        transform::xmi_to_cnx_xslt(text, &settings)
    };
    result.map_err(|e| e.to_string())
}

/// `codegen`: CNX text → client program source.
fn codegen_cnx(text: &str, lang: &str) -> Result<String, String> {
    let doc = cnx::parse_cnx(text).map_err(|e| e.to_string())?;
    cnx::validate(&doc).map_err(|e| e.to_string())?;
    match lang {
        "rust" => Ok(codegen::generate_rust_client(&doc)),
        "java" => Ok(codegen::generate_java_client(&doc)),
        other => Err(format!("unknown language {other:?} (rust|java)")),
    }
}

/// `render`: CNX or XMI → activity diagram (DOT or ASCII).
fn render(text: &str, format: &str) -> Result<String, String> {
    // Sniff the input: XMI documents have an <XMI> root.
    let doc = computational_neighborhood::xml::parse(text).map_err(|e| e.to_string())?;
    let root_name = doc
        .root_element()
        .and_then(|r| doc.name(r))
        .map(|n| n.local().to_string())
        .unwrap_or_default();
    let graphs = if root_name == "XMI" {
        vec![model::import_xmi(&doc).map_err(|e| e.to_string())?]
    } else {
        let cnx_doc = cnx::parse_cnx_doc(&doc).map_err(|e| e.to_string())?;
        transform::cnx_to_models(&cnx_doc)
    };
    let mut out = String::new();
    for graph in &graphs {
        match format {
            "dot" => out.push_str(&model::render::to_dot(graph)),
            "ascii" => out.push_str(&model::render::to_ascii(graph)),
            other => return Err(format!("unknown format {other:?} (dot|ascii)")),
        }
    }
    Ok(out)
}

/// `demo`: build the Figure 2/3 model, run the whole pipeline on a small
/// random graph, and show every artifact.
fn demo(workers: usize) -> Result<String, String> {
    use computational_neighborhood::cluster::NodeSpec;
    use computational_neighborhood::core::{DynamicArgs, Neighborhood};
    use computational_neighborhood::tasks::{
        self, floyd_sequential, random_digraph, seed_input, Matrix,
    };

    if workers == 0 {
        return Err("need at least one worker".to_string());
    }
    let nb = Neighborhood::deploy(NodeSpec::fleet(3, 8192, 16));
    tasks::publish_all_archives(nb.registry());
    let input = random_digraph(16, 0.25, 1..9, 1);
    let worker_names: Vec<String> = (1..=workers).map(|i| format!("tctask{i}")).collect();
    let input2 = input.clone();
    let options = transform::PipelineOptions {
        settings: transform::figure2_settings(),
        dynamic: DynamicArgs::new(),
        timeout: std::time::Duration::from_secs(60),
        seed: Some(Box::new(move |job| {
            seed_input(job.tuplespace(), "matrix.txt", &input2, &worker_names, "tctask999");
        })),
    };
    let run = transform::Pipeline::new(&nb)
        .run(&transform::figure2_model(workers), options)?;
    let result = Matrix::from_userdata(
        run.reports[0].result("tctask999").ok_or("no joiner result")?,
    )
    .map_err(|e| e.to_string())?;
    let verified = result == floyd_sequential(&input);
    nb.shutdown();

    let mut out = String::new();
    let _ = writeln!(out, "== CNX descriptor ==\n{}", run.cnx_text);
    let _ = writeln!(out, "== stage timings ==");
    for t in &run.timings {
        let _ = writeln!(out, "  {:<16} {:?}", t.stage, t.elapsed);
    }
    let _ = writeln!(out, "== execution: {} task results, verified={verified} ==", run.reports[0].results.len());
    if !verified {
        return Err("demo result did not match sequential Floyd".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use computational_neighborhood::cnx::{ast::figure2_descriptor, write_cnx};
    use computational_neighborhood::transform::figure2_model;

    fn figure2_cnx_text() -> String {
        write_cnx(&figure2_descriptor(3))
    }

    fn figure2_xmi_text() -> String {
        computational_neighborhood::xml::write_document(
            &computational_neighborhood::model::export_xmi(&figure2_model(3)),
            &computational_neighborhood::xml::WriteOptions::xmi(),
        )
    }

    #[test]
    fn validate_reports_waves() {
        let out = validate_cnx(&figure2_cnx_text()).unwrap();
        assert!(out.contains("client \"TransClosure\": OK"));
        assert!(out.contains("5 tasks") || out.contains("critical path 3"), "{out}");
        assert!(out.contains("wave 1: tctask1, tctask2, tctask3"));
    }

    #[test]
    fn validate_rejects_cycles() {
        let bad = r#"<cn2><client class="C"><job>
            <task name="a" jar="j" class="K" depends="a"/>
        </job></client></cn2>"#;
        let err = validate_cnx(bad).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn transform_produces_cnx() {
        let args = vec!["x.xmi", "--class", "TransClosure", "--port", "5666"];
        let out = transform_xmi(&figure2_xmi_text(), &args).unwrap();
        assert!(out.contains("<cn2>"));
        assert!(out.contains(r#"port="5666""#));
        // The keyless path gives the same answer.
        let mut nk = args.clone();
        nk.push("--no-keys");
        assert_eq!(out, transform_xmi(&figure2_xmi_text(), &nk).unwrap());
    }

    #[test]
    fn codegen_both_languages() {
        let rust = codegen_cnx(&figure2_cnx_text(), "rust").unwrap();
        assert!(rust.contains("fn main"));
        let java = codegen_cnx(&figure2_cnx_text(), "java").unwrap();
        assert!(java.contains("public static void main"));
        assert!(codegen_cnx(&figure2_cnx_text(), "cobol").is_err());
    }

    #[test]
    fn render_handles_both_inputs_and_formats() {
        let from_cnx = render(&figure2_cnx_text(), "ascii").unwrap();
        assert!(from_cnx.contains("[tctask0]"));
        let from_xmi = render(&figure2_xmi_text(), "dot").unwrap();
        assert!(from_xmi.starts_with("digraph"));
        assert!(render(&figure2_cnx_text(), "png").is_err());
    }

    #[test]
    fn demo_runs_end_to_end() {
        let out = demo(2).unwrap();
        assert!(out.contains("verified=true"), "{out}");
    }

    #[test]
    fn example_xmi_feeds_transform() {
        let xmi = run(&["example-xmi".to_string(), "2".to_string()]).unwrap();
        assert!(xmi.contains("UML:ActionState"));
        let cnx = transform_xmi(&xmi, &["x", "--class", "TC"]).unwrap();
        assert!(cnx.contains("tctask999"));
        assert!(run(&["example-xmi".to_string(), "0".to_string()]).is_err());
    }

    #[test]
    fn arg_helpers() {
        let args = vec!["file.cnx", "--lang", "java", "--no-keys"];
        assert_eq!(positional(&args, 0), Some("file.cnx"));
        assert_eq!(flag_value(&args, "--lang"), Some("java"));
        assert!(has_flag(&args, "--no-keys"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("usage:"));
        assert!(run(&[]).unwrap().contains("usage:"));
    }
}
