//! `cnctl` — command-line front end to the CN tool chain.
//!
//! ```text
//! cnctl validate  <file.cnx>                      all diagnostics + DAG analytics
//! cnctl lint      <file.cnx|file.xmi> [--format text|json] [--deny warnings]
//!                 [--nodes N --node-memory MB [--node-slots S]]
//!                 [--server-memory MB1,MB2,...] [--payload-warn-fraction F]
//!                 [--peer-capacity N [--reactor-shards S] [--fd-soft-limit N] [--cores N]]
//!                 [--portal-max-inflight N [--portal-body-limit BYTES] [--host-memory MB]]
//!                 [--steal-threshold N [--steal-heartbeat-ms MS] [--fair-quantum MB]]
//! cnctl lint      --explain CN0xx                  document one diagnostic code
//! cnctl check     [--scenario NAME] [--seeds S1,S2,...] [--schedules N]
//!                 [--max-steps N] [--format text|json] [--trace-dir DIR]
//!                 [--list]
//! cnctl transform <file.xmi> [--class C] [--port P] [--log L] [--no-keys]
//! cnctl codegen   <file.cnx> [--lang rust|java]
//! cnctl render    <file.cnx|file.xmi> [--format dot|ascii]
//! cnctl demo      [workers]                        full pipeline on the TC example
//! cnctl example-xmi [workers]                      emit the Figure-3 model as XMI
//! cnctl trace     <file.xmi|examples> [--out trace.json] [--journal j.jsonl] [--workers N]
//! cnctl stats     <file.xmi|examples> [--workers N]
//! cnctl serve     [--port P] [--peers P1,P2] [--multicast] [--name NAME]
//!                 [--memory MB] [--slots N] [--run-for SECS] [--trace out.json]
//!                 [--no-batch] [--reactor-shards N] [--sched POLICY]
//! cnctl submit    <file.cnx|examples> [--peers P1,P2,P3] [--multicast] [--workers N]
//!                 [--timeout SECS] [--journal j.jsonl] [--trace out.json]
//!                 [--no-batch] [--reactor-shards N]
//! cnctl portal    [--http-port P] [--peers P1,P2 | --multicast | --sim NODES]
//!                 [--reactor-shards N] [--max-inflight N] [--per-addr N]
//!                 [--workers N] [--body-limit BYTES] [--timeout SECS]
//!                 [--seed N] [--name NAME] [--run-for SECS] [--no-batch]
//!                 [--board-ttl SECS]
//! ```
//!
//! Everything reads/writes plain files or stdout, so the tool composes with
//! shell pipelines the way the paper's XSLT-based tooling did. `lint` and
//! `validate` use their exit code to report what they found: 0 = clean,
//! 1 = errors, 2 = warnings only (`lint` only; `validate` ignores warnings
//! for exit purposes).

use std::fmt::Write as _;

use computational_neighborhood::analysis;
use computational_neighborhood::check;
use computational_neighborhood::cluster::ClusterCapacity;
use computational_neighborhood::cnx;
use computational_neighborhood::codegen;
use computational_neighborhood::model;
use computational_neighborhood::transform::{self, xmi2cnx::ClientSettings};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((output, code)) => {
            print!("{output}");
            if code != 0 {
                std::process::exit(code);
            }
        }
        Err(e) => {
            eprintln!("cnctl: {e}");
            std::process::exit(1);
        }
    }
}

/// Dispatch a command line; returns the text to print and the exit code.
fn run(args: &[String]) -> Result<(String, i32), String> {
    let mut it = args.iter();
    let command = it.next().map(String::as_str).unwrap_or("help");
    let rest: Vec<&str> = it.map(String::as_str).collect();
    match command {
        "validate" => {
            let path = positional(&rest, 0).ok_or("usage: cnctl validate <file.cnx>")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            validate_cnx(&text)
        }
        "lint" => {
            if let Some(code) = flag_value(&rest, "--explain") {
                return explain_code(code);
            }
            let path = positional(&rest, 0).ok_or(
                "usage: cnctl lint <file.cnx|file.xmi> [--format text|json] [--deny warnings] \
                 [--explain CN0xx]",
            )?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            lint_input(&text, &rest)
        }
        "check" => check_cmd(&rest),
        "transform" => {
            let path = positional(&rest, 0).ok_or("usage: cnctl transform <file.xmi> [...]")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            transform_xmi(&text, &rest).map(clean)
        }
        "codegen" => {
            let path = positional(&rest, 0).ok_or("usage: cnctl codegen <file.cnx> [...]")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            codegen_cnx(&text, flag_value(&rest, "--lang").unwrap_or("rust")).map(clean)
        }
        "render" => {
            let path = positional(&rest, 0).ok_or("usage: cnctl render <file> [...]")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            render(&text, flag_value(&rest, "--format").unwrap_or("ascii")).map(clean)
        }
        "example-xmi" => {
            let workers: usize = positional(&rest, 0)
                .map(|w| w.parse().map_err(|_| format!("bad worker count {w:?}")))
                .transpose()?
                .unwrap_or(5);
            if workers == 0 {
                return Err("need at least one worker".to_string());
            }
            Ok(clean(computational_neighborhood::xml::write_document(
                &model::export_xmi(&transform::figure2_model(workers)),
                &computational_neighborhood::xml::WriteOptions::xmi(),
            )))
        }
        "demo" => {
            let workers: usize = positional(&rest, 0)
                .map(|w| w.parse().map_err(|_| format!("bad worker count {w:?}")))
                .transpose()?
                .unwrap_or(3);
            demo(workers).map(clean)
        }
        "trace" => trace_cmd(&rest).map(clean),
        "stats" => stats_cmd(&rest).map(clean),
        "serve" => serve_cmd(&rest).map(clean),
        "submit" => submit_cmd(&rest).map(clean),
        "portal" => portal_cmd(&rest).map(clean),
        "help" | "--help" | "-h" => Ok(clean(USAGE.to_string())),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "usage: cnctl \
     <validate|lint|check|transform|codegen|render|demo|example-xmi|trace|stats|serve|submit|portal|help> \
     [args]\n";

/// Wrap plain output with the success exit code.
fn clean(output: String) -> (String, i32) {
    (output, 0)
}

fn positional<'a>(args: &[&'a str], index: usize) -> Option<&'a str> {
    args.iter().filter(|a| !a.starts_with("--")).nth(index).copied()
}

fn flag_value<'a>(args: &[&'a str], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| *a == flag).and_then(|i| args.get(i + 1)).copied()
}

fn has_flag(args: &[&str], flag: &str) -> bool {
    args.contains(&flag)
}

/// `validate`: run every lint pass, print all diagnostics sorted by source
/// span, and summarize the dependency structure when the descriptor is
/// error-free. The exit code is non-zero only for errors — warnings and
/// infos are advisory here (use `lint --deny warnings` to harden).
fn validate_cnx(text: &str) -> Result<(String, i32), String> {
    let report = analysis::lint_cnx_source(text, &analysis::LintOptions::default());
    let mut out = String::new();
    for d in report.diagnostics() {
        let _ = writeln!(out, "{d}");
    }
    if report.has_errors() {
        return Ok((out, 1));
    }
    let doc = cnx::parse_cnx(text).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "client {:?}: OK", doc.client.class);
    for (i, job) in doc.client.jobs.iter().enumerate() {
        let graph = cnx::DependencyGraph::build(job).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "  job {i}: {} tasks, {} wave(s), critical path {}, max parallelism {}",
            graph.len(),
            graph.waves().len(),
            graph.critical_path_len(),
            graph.max_parallelism()
        );
        for (w, wave) in graph.waves().iter().enumerate() {
            let names: Vec<&str> = wave.iter().map(|&t| graph.name(t)).collect();
            let _ = writeln!(out, "    wave {w}: {}", names.join(", "));
        }
    }
    Ok((out, 0))
}

/// `lint`: run the cross-layer lint engine over a CNX descriptor or an XMI
/// model and render the report. Exit code: 0 clean, 1 errors, 2 warnings
/// only. `--deny warnings` promotes warnings to errors; `--nodes` /
/// `--node-memory` / `--node-slots` describe the target cluster so the
/// capacity passes (CN011/CN015/CN016) can judge resource requirements,
/// and `--server-memory 512,1024` lists the per-server `cnctl serve
/// --memory` values a wire deployment was launched with (CN019).
/// `--payload-warn-fraction 0.25` tunes how close to the wire frame limit
/// a task's estimated parameter payload may get before CN009 warns.
/// `--peer-capacity N [--reactor-shards S]` describes the wire
/// deployment's shape so CN057 can judge it against the host's fd soft
/// limit and core count (`--fd-soft-limit` / `--cores` override the live
/// probes to lint against a different target machine).
/// `--steal-threshold N [--steal-heartbeat-ms MS] [--fair-quantum MB]`
/// describes the scheduler's work-stealing and fair-admission knobs so
/// CN059 can judge them against the descriptor's job shapes.
fn lint_input(text: &str, args: &[&str]) -> Result<(String, i32), String> {
    let format = flag_value(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown format {format:?} (text|json)"));
    }
    match flag_value(args, "--deny") {
        None | Some("warnings") => {}
        Some(other) => return Err(format!("unknown deny class {other:?} (warnings)")),
    }
    let payload_warn_fraction = flag_value(args, "--payload-warn-fraction")
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|f| (0.0..=1.0).contains(f))
                .ok_or_else(|| format!("bad value {v:?} for --payload-warn-fraction (0..=1)"))
        })
        .transpose()?;
    let opts = analysis::LintOptions {
        capacity: capacity_from_args(args)?,
        server_memory_mb: server_memory_from_args(args)?,
        payload_warn_fraction,
        deployment: deployment_from_args(args)?,
        portal: portal_shape_from_args(args)?,
        scheduler: scheduler_shape_from_args(args)?,
    };
    let mut report = if looks_like_xmi(text) {
        analysis::lint_xmi_source(text, &opts)
    } else {
        analysis::lint_cnx_source(text, &opts)
    };
    if flag_value(args, "--deny") == Some("warnings") {
        report = report.deny_warnings();
    }
    let rendered = match format {
        "json" => {
            let mut json = report.to_json();
            json.push('\n');
            json
        }
        _ => report.to_text(),
    };
    let code = if report.has_errors() {
        1
    } else if report.has_warnings() {
        2
    } else {
        0
    };
    Ok((rendered, code))
}

/// Build a [`ClusterCapacity`] from `--nodes N --node-memory MB
/// [--node-slots S]`; both leading flags are required together.
fn capacity_from_args(args: &[&str]) -> Result<Option<ClusterCapacity>, String> {
    let nodes = flag_value(args, "--nodes");
    let memory = flag_value(args, "--node-memory");
    let slots = flag_value(args, "--node-slots");
    match (nodes, memory) {
        (None, None) => {
            if slots.is_some() {
                return Err("--node-slots requires --nodes and --node-memory".to_string());
            }
            Ok(None)
        }
        (Some(n), Some(m)) => {
            let nodes: usize = n.parse().map_err(|_| format!("bad node count {n:?}"))?;
            let memory: u64 = m.parse().map_err(|_| format!("bad node memory {m:?}"))?;
            let slots: usize = slots
                .map(|s| s.parse().map_err(|_| format!("bad slot count {s:?}")))
                .transpose()?
                .unwrap_or(1);
            Ok(Some(ClusterCapacity::uniform(nodes, memory, slots)))
        }
        _ => Err("--nodes and --node-memory must be given together".to_string()),
    }
}

/// Parse `--server-memory 512,1024,8192` into per-server MB values for the
/// CN019 wire-deployment check.
fn server_memory_from_args(args: &[&str]) -> Result<Option<Vec<u64>>, String> {
    let Some(raw) = flag_value(args, "--server-memory") else { return Ok(None) };
    let servers = raw
        .split(',')
        .map(|s| s.trim().parse::<u64>().map_err(|_| format!("bad server memory {s:?}")))
        .collect::<Result<Vec<u64>, String>>()?;
    if servers.is_empty() {
        return Err("--server-memory needs at least one value".to_string());
    }
    Ok(Some(servers))
}

/// Parse the wire-deployment shape flags for the CN057 host-capacity
/// check. `--peer-capacity` is the gate (no expected peer count, no
/// opinion); `--fd-soft-limit` and `--cores` replace the live host probes
/// so a plan can be judged against the machine it will actually run on.
fn deployment_from_args(args: &[&str]) -> Result<Option<analysis::DeploymentShape>, String> {
    let Some(raw) = flag_value(args, "--peer-capacity") else {
        // `--fd-soft-limit`/`--cores` are shared with the CN058 portal
        // shape, so they only need *some* gate flag to hang off.
        if flag_value(args, "--portal-max-inflight").is_none() {
            for flag in ["--fd-soft-limit", "--cores"] {
                if flag_value(args, flag).is_some() {
                    return Err(format!("{flag} requires --peer-capacity"));
                }
            }
        }
        return Ok(None);
    };
    let parse_limit = |flag: &str| {
        flag_value(args, flag)
            .map(|v| v.parse::<u64>().map_err(|_| format!("bad value {v:?} for {flag}")))
            .transpose()
    };
    Ok(Some(analysis::DeploymentShape {
        peer_capacity: raw.parse().map_err(|_| format!("bad peer capacity {raw:?}"))?,
        reactor_shards: parsed_flag(args, "--reactor-shards", 0)?,
        fd_soft_limit: parse_limit("--fd-soft-limit")?,
        available_cores: parse_limit("--cores")?,
    }))
}

/// Parse the portal-deployment shape flags for the CN058 capacity check.
/// `--portal-max-inflight` is the gate; `--portal-body-limit` defaults to
/// the portal's built-in body cap, and `--fd-soft-limit` / `--cores` /
/// `--host-memory` replace the live host probes so a plan can be judged
/// against the machine it will actually run on.
fn portal_shape_from_args(args: &[&str]) -> Result<Option<analysis::PortalShape>, String> {
    let Some(raw) = flag_value(args, "--portal-max-inflight") else {
        for flag in ["--portal-body-limit", "--host-memory"] {
            if flag_value(args, flag).is_some() {
                return Err(format!("{flag} requires --portal-max-inflight"));
            }
        }
        return Ok(None);
    };
    let parse_limit = |flag: &str| {
        flag_value(args, flag)
            .map(|v| v.parse::<u64>().map_err(|_| format!("bad value {v:?} for {flag}")))
            .transpose()
    };
    Ok(Some(analysis::PortalShape {
        max_inflight: raw.parse().map_err(|_| format!("bad portal max-inflight {raw:?}"))?,
        reactor_shards: parsed_flag(args, "--reactor-shards", 0)?,
        max_body_bytes: parsed_flag(
            args,
            "--portal-body-limit",
            computational_neighborhood::portal::http::DEFAULT_MAX_BODY_BYTES as u64,
        )?,
        fd_soft_limit: parse_limit("--fd-soft-limit")?,
        available_cores: parse_limit("--cores")?,
        host_memory_mb: parse_limit("--host-memory")?,
    }))
}

/// Parse the scheduler-shape flags for the CN059 steal/fairness check.
/// `--steal-threshold` is the gate; `--steal-heartbeat-ms` defaults to the
/// runtime's default heartbeat, and `--fair-quantum` opts into the
/// deficit-round-robin quantum check.
fn scheduler_shape_from_args(args: &[&str]) -> Result<Option<analysis::SchedulerShape>, String> {
    let Some(raw) = flag_value(args, "--steal-threshold") else {
        for flag in ["--steal-heartbeat-ms", "--fair-quantum"] {
            if flag_value(args, flag).is_some() {
                return Err(format!("{flag} requires --steal-threshold"));
            }
        }
        return Ok(None);
    };
    Ok(Some(analysis::SchedulerShape {
        steal_threshold: raw.parse().map_err(|_| format!("bad steal threshold {raw:?}"))?,
        steal_heartbeat_ms: parsed_flag(args, "--steal-heartbeat-ms", 50)?,
        fair_quantum_mb: flag_value(args, "--fair-quantum")
            .map(|v| v.parse::<u64>().map_err(|_| format!("bad value {v:?} for --fair-quantum")))
            .transpose()?,
    }))
}

/// `lint --explain CN0xx`: print the documentation for one diagnostic
/// code — what it means and why it is worth fixing.
fn explain_code(code: &str) -> Result<(String, i32), String> {
    match analysis::explain(code) {
        Some(ex) => Ok(clean(ex.render())),
        None => Err(format!(
            "unknown diagnostic code {code:?} (codes run CN000..CN059; try `cnctl lint --explain CN001`)"
        )),
    }
}

/// `check`: explore the runtime's registered concurrency scenarios under
/// the controlled scheduler. Each scenario runs across a seed matrix
/// (default `1,7,42,1337`); hazards, lock-order cycles, and
/// condvar-while-holding findings come back as `CN05x` diagnostics with
/// the same text/JSON rendering and exit-code convention as `lint`
/// (0 clean, 1 errors, 2 warnings only). `--trace-dir DIR` writes each
/// counterexample's replay artifacts (schedule trace, cn-observe journal,
/// Chrome trace, summary) for CI to upload on failure.
fn check_cmd(args: &[&str]) -> Result<(String, i32), String> {
    if has_flag(args, "--list") {
        let mut out = String::new();
        for s in check::all() {
            let _ = writeln!(out, "{:<20} {}", s.name, s.about);
        }
        return Ok(clean(out));
    }
    let format = flag_value(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown format {format:?} (text|json)"));
    }
    let mut cfg = check::CheckConfig::default();
    if let Some(raw) = flag_value(args, "--seeds") {
        cfg.seeds = raw
            .split(',')
            .map(|s| s.trim().parse::<u64>().map_err(|_| format!("bad seed {s:?}")))
            .collect::<Result<Vec<u64>, String>>()?;
        if cfg.seeds.is_empty() {
            return Err("--seeds needs at least one value".to_string());
        }
    }
    if let Some(raw) = flag_value(args, "--schedules") {
        cfg.schedules = raw.parse().map_err(|_| format!("bad schedule count {raw:?}"))?;
    }
    if let Some(raw) = flag_value(args, "--max-steps") {
        cfg.max_steps = raw.parse().map_err(|_| format!("bad step budget {raw:?}"))?;
    }
    let only = flag_value(args, "--scenario");
    if let Some(name) = only {
        if check::find(name).is_none() {
            return Err(format!("unknown scenario {name:?} (see `cnctl check --list`)"));
        }
    }

    let reports = check::run_all(only, &cfg);
    let lint = check::lint_report(&reports);

    if let Some(dir) = flag_value(args, "--trace-dir") {
        write_trace_artifacts(dir, &reports)?;
    }

    let rendered = match format {
        "json" => check_json(&reports, &lint),
        _ => check_text(&reports, &lint),
    };
    let code = if lint.has_errors() {
        1
    } else if lint.has_warnings() {
        2
    } else {
        0
    };
    Ok((rendered, code))
}

/// Human rendering: one verdict line per scenario, replay coordinates for
/// any counterexample, then the diagnostic report.
fn check_text(reports: &[check::RunReport], lint: &analysis::LintReport) -> String {
    let mut out = String::new();
    for r in reports {
        let verdict = if r.failed() { "FAIL" } else { "ok" };
        let _ = writeln!(
            out,
            "{:<20} {verdict:<4} {} schedule(s), {} step(s), {} nested-lock edge(s)",
            r.scenario,
            r.schedules,
            r.steps,
            r.lock_graph.edges_named().len()
        );
        if let Some(cx) = &r.counterexample {
            let _ = writeln!(
                out,
                "  replay: cnctl check --scenario {} --seeds {}   # schedule {}",
                r.scenario,
                cx.seed,
                cx.schedule_string()
            );
        }
    }
    if !lint.is_empty() {
        out.push('\n');
        out.push_str(&lint.to_text());
    }
    out
}

/// Machine rendering: per-scenario exploration stats plus the diagnostic
/// report verbatim (same shape as `lint --format json`'s `diagnostics`).
fn check_json(reports: &[check::RunReport], lint: &analysis::LintReport) -> String {
    let mut out = String::from("{\"scenarios\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"failed\":{},\"schedules\":{},\"steps\":{},\"timeout_escapes\":{},\
             \"nested_lock_edges\":{},\"hazards\":{}",
            json_string(&r.scenario),
            r.failed(),
            r.schedules,
            r.steps,
            r.timeout_escapes,
            r.lock_graph.edges_named().len(),
            r.hazards.len()
        );
        if let Some(cx) = &r.counterexample {
            let _ = write!(
                out,
                ",\"replay\":{{\"seed\":{},\"schedule\":{}}}",
                cx.seed,
                json_string(&cx.schedule_string())
            );
        }
        out.push('}');
    }
    out.push_str("],\"report\":");
    out.push_str(&lint.to_json());
    out.push_str("}\n");
    out
}

/// Write every counterexample's replay artifacts under `dir`, one file
/// set per failing scenario (dots in scenario names become underscores).
fn write_trace_artifacts(dir: &str, reports: &[check::RunReport]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    for r in reports {
        let Some(cx) = &r.counterexample else { continue };
        let art = check::export_counterexample(&r.scenario, cx);
        let base = std::path::Path::new(dir).join(r.scenario.replace('.', "_"));
        let base = base.to_string_lossy();
        let files = [
            ("trace.jsonl", art.trace_jsonl.as_str()),
            ("journal.jsonl", art.journal.as_str()),
            ("chrome.json", art.chrome.as_str()),
            ("summary.txt", art.summary.as_str()),
        ];
        for (ext, body) in files {
            let path = format!("{base}.{ext}");
            std::fs::write(&path, body).map_err(|e| format!("{path}: {e}"))?;
        }
        let replay = format!("seed={}\nschedule={}\n", art.seed, art.schedule);
        let path = format!("{base}.replay.txt");
        std::fs::write(&path, replay).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// Minimal JSON string escaping for the handful of identifiers `check
/// --format json` embeds (scenario names, schedule strings).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sniff the input: XMI documents have an `<XMI>` root; anything else is
/// treated as CNX (including unparseable text, which CNX linting reports
/// as CN000).
fn looks_like_xmi(text: &str) -> bool {
    computational_neighborhood::xml::parse(text)
        .ok()
        .and_then(|doc| {
            let root = doc.root_element()?;
            Some(doc.name(root)?.local() == "XMI")
        })
        .unwrap_or(false)
}

/// `transform`: XMI text → CNX text via the XSLT path.
fn transform_xmi(text: &str, args: &[&str]) -> Result<String, String> {
    let settings = ClientSettings {
        class: flag_value(args, "--class").map(str::to_string),
        port: flag_value(args, "--port")
            .map(|p| p.parse().map_err(|_| format!("bad port {p:?}")))
            .transpose()?,
        log: flag_value(args, "--log").map(str::to_string),
    };
    let result = if has_flag(args, "--no-keys") {
        transform::xmi2cnx::xmi_to_cnx_xslt_nokeys(text, &settings)
    } else {
        transform::xmi_to_cnx_xslt(text, &settings)
    };
    result.map_err(|e| e.to_string())
}

/// `codegen`: CNX text → client program source.
fn codegen_cnx(text: &str, lang: &str) -> Result<String, String> {
    let doc = cnx::parse_cnx(text).map_err(|e| e.to_string())?;
    cnx::validate(&doc).map_err(|e| e.to_string())?;
    match lang {
        "rust" => Ok(codegen::generate_rust_client(&doc)),
        "java" => Ok(codegen::generate_java_client(&doc)),
        other => Err(format!("unknown language {other:?} (rust|java)")),
    }
}

/// `render`: CNX or XMI → activity diagram (DOT or ASCII).
fn render(text: &str, format: &str) -> Result<String, String> {
    // Sniff the input: XMI documents have an <XMI> root.
    let doc = computational_neighborhood::xml::parse(text).map_err(|e| e.to_string())?;
    let root_name = doc
        .root_element()
        .and_then(|r| doc.name(r))
        .map(|n| n.local().to_string())
        .unwrap_or_default();
    let graphs = if root_name == "XMI" {
        vec![model::import_xmi(&doc).map_err(|e| e.to_string())?]
    } else {
        let cnx_doc = cnx::parse_cnx_doc(&doc).map_err(|e| e.to_string())?;
        transform::cnx_to_models(&cnx_doc)
    };
    let mut out = String::new();
    for graph in &graphs {
        match format {
            "dot" => out.push_str(&model::render::to_dot(graph)),
            "ascii" => out.push_str(&model::render::to_ascii(graph)),
            other => return Err(format!("unknown format {other:?} (dot|ascii)")),
        }
    }
    Ok(out)
}

/// `demo`: build the Figure 2/3 model, run the whole pipeline on a small
/// random graph, and show every artifact.
fn demo(workers: usize) -> Result<String, String> {
    use computational_neighborhood::cluster::NodeSpec;
    use computational_neighborhood::core::{DynamicArgs, Neighborhood};
    use computational_neighborhood::tasks::{
        self, floyd_sequential, random_digraph, seed_input, Matrix,
    };

    if workers == 0 {
        return Err("need at least one worker".to_string());
    }
    let nb = Neighborhood::deploy(NodeSpec::fleet(3, 8192, 16));
    tasks::publish_all_archives(nb.registry());
    let input = random_digraph(16, 0.25, 1..9, 1);
    let worker_names: Vec<String> = (1..=workers).map(|i| format!("tctask{i}")).collect();
    let input2 = input.clone();
    let options = transform::PipelineOptions {
        settings: transform::figure2_settings(),
        dynamic: DynamicArgs::new(),
        timeout: std::time::Duration::from_secs(60),
        seed: Some(Box::new(move |job| {
            seed_input(job, "matrix.txt", &input2, &worker_names, "tctask999").expect("seed input");
        })),
    };
    let run = transform::Pipeline::new(&nb).run(&transform::figure2_model(workers), options)?;
    let result =
        Matrix::from_userdata(run.reports[0].result("tctask999").ok_or("no joiner result")?)
            .map_err(|e| e.to_string())?;
    let verified = result == floyd_sequential(&input);
    nb.shutdown();

    let mut out = String::new();
    let _ = writeln!(out, "== CNX descriptor ==\n{}", run.cnx_text);
    let _ = writeln!(out, "== stage timings ==");
    for t in &run.timings {
        let _ = writeln!(out, "  {:<16} {:?}", t.stage, t.elapsed);
    }
    let _ = writeln!(
        out,
        "== execution: {} task results, verified={verified} ==",
        run.reports[0].results.len()
    );
    if !verified {
        return Err("demo result did not match sequential Floyd".to_string());
    }
    Ok(out)
}

/// Run the Figure-6 pipeline on `src` (an XMI file path, or the literal
/// `examples` for the bundled Figure-3 transitive-closure model) with an
/// enabled recorder. Returns the recorder — even when execution failed, so
/// the trace of the stages that did run can still be exported — together
/// with the pipeline outcome.
fn run_traced(
    src: &str,
    args: &[&str],
) -> Result<(computational_neighborhood::observe::Recorder, Result<(), String>), String> {
    use computational_neighborhood::cluster::NodeSpec;
    use computational_neighborhood::core::{DynamicArgs, Neighborhood, NeighborhoodConfig};
    use computational_neighborhood::observe::Recorder;
    use computational_neighborhood::tasks::{self, random_digraph, seed_input};

    let workers: usize = flag_value(args, "--workers")
        .map(|w| w.parse().map_err(|_| format!("bad worker count {w:?}")))
        .transpose()?
        .unwrap_or(3);
    if workers == 0 {
        return Err("need at least one worker".to_string());
    }
    let graph = if src == "examples" {
        transform::figure2_model(workers)
    } else {
        let text = std::fs::read_to_string(src).map_err(|e| format!("{src}: {e}"))?;
        let doc = computational_neighborhood::xml::parse(&text).map_err(|e| e.to_string())?;
        model::import_xmi(&doc).map_err(|e| e.to_string())?
    };

    let rec = Recorder::new();
    let nb = Neighborhood::deploy_with(
        NodeSpec::fleet(3, 8192, 16),
        NeighborhoodConfig { recorder: rec.clone(), ..NeighborhoodConfig::default() },
    );
    tasks::publish_all_archives(nb.registry());
    let input = random_digraph(16, 0.25, 1..9, 1);
    let options = transform::PipelineOptions {
        settings: transform::figure2_settings(),
        dynamic: DynamicArgs::new(),
        timeout: std::time::Duration::from_secs(60),
        // Model-agnostic seeding: if the composition looks like the
        // transitive-closure example (a tctask0 splitter and a tctask999
        // joiner), deposit the input matrix; anything else runs unseeded.
        seed: Some(Box::new(move |job| {
            let names = job.task_names();
            if names.iter().any(|n| n == "tctask0") && names.iter().any(|n| n == "tctask999") {
                let worker_names: Vec<String> = names
                    .iter()
                    .filter(|n| *n != "tctask0" && *n != "tctask999")
                    .cloned()
                    .collect();
                seed_input(job, "matrix.txt", &input, &worker_names, "tctask999")
                    .expect("seed input");
            }
        })),
    };
    let outcome = transform::Pipeline::new(&nb).run(&graph, options).map(|_| ());
    nb.shutdown();
    Ok((rec, outcome))
}

/// Write `content` to `path` via a sibling temp file and an atomic rename,
/// so readers never observe a partially-written artifact.
fn write_atomic(path: &str, content: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, content).map_err(|e| format!("{tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("rename {tmp} -> {path}: {e}")
    })
}

/// `trace`: run the pipeline under an enabled recorder and export the
/// canonical Chrome `trace_event` timeline (plus, optionally, the JSONL
/// span journal). Exports happen even when execution fails, so partial
/// traces remain inspectable.
fn trace_cmd(args: &[&str]) -> Result<String, String> {
    use computational_neighborhood::observe::{chrome_trace, journal_jsonl};

    let src = positional(args, 0)
        .ok_or("usage: cnctl trace <file.xmi|examples> [--out trace.json] [--journal j.jsonl]")?;
    let out_path = flag_value(args, "--out").unwrap_or("trace.json");
    let (rec, outcome) = run_traced(src, args)?;
    write_atomic(out_path, &chrome_trace(&rec))?;
    let mut out = String::new();
    let _ = writeln!(out, "wrote {} span(s) to {out_path}", rec.spans().len());
    if let Some(journal_path) = flag_value(args, "--journal") {
        write_atomic(journal_path, &journal_jsonl(&rec))?;
        let _ = writeln!(out, "wrote span journal to {journal_path}");
    }
    outcome.map_err(|e| format!("{e}\n(partial trace written to {out_path})"))?;
    Ok(out)
}

/// `stats`: run the pipeline under an enabled recorder and print the text
/// summary (metrics table, span counts by category, flight-recorder tail).
fn stats_cmd(args: &[&str]) -> Result<String, String> {
    use computational_neighborhood::observe::summary_text;

    let src = positional(args, 0).ok_or("usage: cnctl stats <file.xmi|examples> [--workers N]")?;
    let (rec, outcome) = run_traced(src, args)?;
    let summary = summary_text(&rec);
    outcome.map_err(|e| format!("{e}\n{summary}"))?;
    Ok(summary)
}

/// Parse `--peers 4711,4712` into a port list (empty when absent).
fn peers_from_args(args: &[&str]) -> Result<Vec<u16>, String> {
    match flag_value(args, "--peers") {
        None => Ok(Vec::new()),
        Some(csv) => csv
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|p| p.parse().map_err(|_| format!("bad peer port {p:?}")))
            .collect(),
    }
}

/// Build the wire discovery mode from `--multicast` / `--peers`.
fn discovery_from_args(
    args: &[&str],
) -> Result<computational_neighborhood::wire::Discovery, String> {
    use computational_neighborhood::wire::{
        socket::{DEFAULT_MULTICAST_GROUP, DEFAULT_MULTICAST_PORT},
        Discovery,
    };
    if has_flag(args, "--multicast") {
        Ok(Discovery::Multicast { group: DEFAULT_MULTICAST_GROUP, port: DEFAULT_MULTICAST_PORT })
    } else {
        Ok(Discovery::Loopback { peers: peers_from_args(args)? })
    }
}

fn parsed_flag<T: std::str::FromStr>(args: &[&str], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value {v:?} for {flag}")),
    }
}

/// `serve`: host one CNServer (JobManager + TaskManager) on a real TCP
/// port — one OS process of a multi-process neighborhood. Prints a
/// readiness line (`serving <name> on 127.0.0.1:<port>`) once the fabric
/// is listening, then runs until killed (or for `--run-for` seconds).
fn serve_cmd(args: &[&str]) -> Result<String, String> {
    use computational_neighborhood::cluster::{NodeHandle, NodeSpec};
    use computational_neighborhood::core::spaces::SpaceRegistry;
    use computational_neighborhood::core::{ArchiveRegistry, CnServer, ServerConfig};
    use computational_neighborhood::observe::{chrome_trace, Recorder};
    use computational_neighborhood::tasks;
    use computational_neighborhood::wire::{FabricHandle, SocketFabric, WireConfig};
    use std::sync::Arc;

    let port: u16 = parsed_flag(args, "--port", 0)?;
    let memory: u64 = parsed_flag(args, "--memory", 8192)?;
    let slots: usize = parsed_flag(args, "--slots", 16)?;
    let policy = match flag_value(args, "--sched") {
        None => computational_neighborhood::core::Policy::default(),
        Some(name) => computational_neighborhood::core::Policy::parse(name).ok_or_else(|| {
            format!(
                "unknown scheduling policy {name:?} (first-responder|least-loaded|round-robin|load-aware)"
            )
        })?,
    };
    let run_for: Option<u64> = flag_value(args, "--run-for")
        .map(|v| v.parse().map_err(|_| format!("bad value {v:?} for --run-for")))
        .transpose()?;
    let cfg = WireConfig {
        port,
        discovery: discovery_from_args(args)?,
        batch: !has_flag(args, "--no-batch"),
        reactor_shards: parsed_flag(args, "--reactor-shards", 0)?,
        ..WireConfig::default()
    };

    let rec = Recorder::new();
    let fabric =
        SocketFabric::new(cfg, rec.clone()).map_err(|e| format!("bind port {port}: {e}"))?;
    let port = fabric.port();
    let name =
        flag_value(args, "--name").map(str::to_string).unwrap_or_else(|| format!("cn-{port}"));

    let registry = Arc::new(ArchiveRegistry::new());
    tasks::publish_all_archives(&registry);
    let spaces = Arc::new(SpaceRegistry::with_recorder(&rec));
    let node = NodeHandle::new(NodeSpec::new(&name, memory, slots));
    let server = CnServer::spawn(
        &name,
        node,
        FabricHandle::new(fabric),
        registry,
        spaces,
        ServerConfig { policy, ..ServerConfig::default() },
    );

    // Readiness marker: scripts (the CI wire job, the differential test)
    // wait for this line before submitting.
    println!("serving {name} on 127.0.0.1:{port}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    match run_for {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    server.shutdown();
    if let Some(path) = flag_value(args, "--trace") {
        write_atomic(path, &chrome_trace(&rec))?;
    }
    Ok(format!("{name} served for {}s\n", run_for.unwrap_or(0)))
}

/// `submit`: drive a CNX descriptor over the wire against `cnctl serve`
/// processes — the CN client as its own OS process. `examples` submits the
/// bundled Figure-3 transitive-closure job (seeded with the same matrix the
/// in-process tools use) and verifies the result against sequential Floyd.
/// `--journal` exports the canonical span journal with the wire-only
/// `"wire"` category removed, so it is byte-comparable with a simulated
/// run of the same descriptor.
fn submit_cmd(args: &[&str]) -> Result<String, String> {
    use computational_neighborhood::core::spaces::SpaceRegistry;
    use computational_neighborhood::core::{
        execute_with_api_seeded, ClientConfig, CnApi, DynamicArgs,
    };
    use computational_neighborhood::observe::{chrome_trace, journal_jsonl_filtered, Recorder};
    use computational_neighborhood::tasks::{floyd_sequential, random_digraph, seed_input, Matrix};
    use computational_neighborhood::wire::{FabricHandle, SocketFabric, WireConfig};
    use std::sync::Arc;

    let src = positional(args, 0)
        .ok_or("usage: cnctl submit <file.cnx|examples> [--peers P1,P2,P3] [...]")?;
    let workers: usize = parsed_flag(args, "--workers", 3)?;
    if workers == 0 {
        return Err("need at least one worker".to_string());
    }
    let timeout = std::time::Duration::from_secs(parsed_flag(args, "--timeout", 60)?);
    let doc = if src == "examples" {
        cnx::ast::figure2_descriptor(workers)
    } else {
        let text = std::fs::read_to_string(src).map_err(|e| format!("{src}: {e}"))?;
        cnx::parse_cnx(&text).map_err(|e| e.to_string())?
    };

    let cfg = WireConfig {
        discovery: discovery_from_args(args)?,
        batch: !has_flag(args, "--no-batch"),
        reactor_shards: parsed_flag(args, "--reactor-shards", 0)?,
        ..WireConfig::default()
    };
    let rec = Recorder::new();
    let fabric = SocketFabric::new(cfg, rec.clone()).map_err(|e| format!("bind: {e}"))?;
    let port = fabric.port();
    let api = CnApi::over(
        FabricHandle::new(fabric),
        Arc::new(SpaceRegistry::with_recorder(&rec)),
        ClientConfig::default(),
    );

    // Same deterministic input as `cnctl trace`/`demo`, so a wire run and a
    // simulated run are structurally comparable.
    let input = random_digraph(16, 0.25, 1..9, 1);
    let input_for_seed = input.clone();
    let seed = move |job: &mut computational_neighborhood::core::JobHandle| {
        let names = job.task_names();
        if names.iter().any(|n| n == "tctask0") && names.iter().any(|n| n == "tctask999") {
            let worker_names: Vec<String> =
                names.iter().filter(|n| *n != "tctask0" && *n != "tctask999").cloned().collect();
            seed_input(job, "matrix.txt", &input_for_seed, &worker_names, "tctask999")
                .expect("seed input");
        }
    };
    let outcome = execute_with_api_seeded(&api, &doc, &DynamicArgs::new(), timeout, seed);

    // Export observability artifacts even when the run failed: a partial
    // trace of a dead-worker run is exactly what you want to look at.
    let mut out = String::new();
    if let Some(path) = flag_value(args, "--journal") {
        write_atomic(path, &journal_jsonl_filtered(&rec, &["wire"]))?;
        let _ = writeln!(out, "wrote canonical journal to {path}");
    }
    if let Some(path) = flag_value(args, "--trace") {
        write_atomic(path, &chrome_trace(&rec))?;
        let _ = writeln!(out, "wrote trace to {path}");
    }
    let reports = outcome.map_err(|e| format!("{e}\n{out}"))?;
    let _ = writeln!(out, "client on 127.0.0.1:{port}: {} job(s) completed", reports.len());
    for (i, report) in reports.iter().enumerate() {
        let _ = writeln!(out, "  job {i}: {} task result(s)", report.results.len());
    }
    if src == "examples" {
        let result = reports
            .first()
            .and_then(|r| r.result("tctask999"))
            .ok_or("no joiner result in report")?;
        let verified =
            Matrix::from_userdata(result).map_err(|e| e.to_string())? == floyd_sequential(&input);
        let _ = writeln!(out, "verified={verified}");
        if !verified {
            return Err("wire result did not match sequential Floyd".to_string());
        }
    }
    Ok(out)
}

/// `portal`: host the paper's web portal — an HTTP/1.1 front end on the
/// sharded reactor. `POST /jobs` takes an XMI activity model (or a CNX
/// descriptor), compiles it, and runs it against `cnctl serve` workers
/// (`--peers`/`--multicast`) or an in-process simulated neighborhood
/// (`--sim NODES`). `GET /jobs/<id>/journal` streams the run's canonical
/// journal with chunked transfer encoding — byte-comparable with `cnctl
/// submit --journal` for the same descriptor. Prints a readiness line
/// (`portal <name> on 127.0.0.1:<port>`) once listening.
fn portal_cmd(args: &[&str]) -> Result<String, String> {
    use computational_neighborhood::observe::Recorder;
    use computational_neighborhood::portal::{
        http::DEFAULT_MAX_BODY_BYTES, JobRunner, PortalConfig, PortalServer, SimRunner, WireRunner,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let http_port: u16 = parsed_flag(args, "--http-port", 0)?;
    let cfg = PortalConfig {
        port: http_port,
        reactor_shards: parsed_flag(args, "--reactor-shards", 0)?,
        max_inflight: parsed_flag(args, "--max-inflight", 64)?,
        per_addr_inflight: parsed_flag(args, "--per-addr", 4)?,
        workers: parsed_flag(args, "--workers", 2)?,
        max_body_bytes: parsed_flag(args, "--body-limit", DEFAULT_MAX_BODY_BYTES)?,
        request_deadline: Duration::from_secs(parsed_flag(args, "--request-deadline", 10)?),
        journal_wait: Duration::from_secs(parsed_flag(args, "--journal-wait", 120)?),
        board_ttl: Duration::from_secs(parsed_flag(args, "--board-ttl", 300)?),
    };
    let timeout = Duration::from_secs(parsed_flag(args, "--timeout", 60)?);
    let digraph_seed: u64 = parsed_flag(args, "--seed", 1)?;
    let run_for: Option<u64> = flag_value(args, "--run-for")
        .map(|v| v.parse().map_err(|_| format!("bad value {v:?} for --run-for")))
        .transpose()?;

    let runner: Arc<dyn JobRunner> = match flag_value(args, "--sim") {
        Some(n) => {
            let nodes: usize = n.parse().map_err(|_| format!("bad node count {n:?} for --sim"))?;
            if nodes == 0 {
                return Err("need at least one simulated node".to_string());
            }
            Arc::new(SimRunner { nodes, timeout, digraph_seed })
        }
        None => Arc::new(WireRunner {
            discovery: discovery_from_args(args)?,
            batch: !has_flag(args, "--no-batch"),
            reactor_shards: parsed_flag(args, "--reactor-shards", 0)?,
            timeout,
            digraph_seed,
        }),
    };

    let rec = Recorder::new();
    let mut server = PortalServer::start(cfg, runner, rec)
        .map_err(|e| format!("bind http port {http_port}: {e}"))?;
    let port = server.port();
    let name =
        flag_value(args, "--name").map(str::to_string).unwrap_or_else(|| format!("portal-{port}"));

    // Readiness marker: scripts (the CI portal job, the e2e test) wait for
    // this line before POSTing.
    println!("portal {name} on 127.0.0.1:{port}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    match run_for {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    server.shutdown();
    Ok(format!("{name} served for {}s\n", run_for.unwrap_or(0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use computational_neighborhood::cnx::{ast::figure2_descriptor, write_cnx};
    use computational_neighborhood::transform::figure2_model;

    fn figure2_cnx_text() -> String {
        write_cnx(&figure2_descriptor(3))
    }

    fn figure2_xmi_text() -> String {
        computational_neighborhood::xml::write_document(
            &computational_neighborhood::model::export_xmi(&figure2_model(3)),
            &computational_neighborhood::xml::WriteOptions::xmi(),
        )
    }

    #[test]
    fn validate_reports_waves() {
        let (out, code) = validate_cnx(&figure2_cnx_text()).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("client \"TransClosure\": OK"));
        assert!(out.contains("5 tasks") || out.contains("critical path 3"), "{out}");
        assert!(out.contains("wave 1: tctask1, tctask2, tctask3"));
    }

    #[test]
    fn validate_rejects_cycles() {
        let bad = r#"<cn2><client class="C"><job>
            <task name="a" jar="j" class="K" depends="a"/>
        </job></client></cn2>"#;
        let (out, code) = validate_cnx(bad).unwrap();
        assert_eq!(code, 1);
        assert!(out.contains("cycle"), "{out}");
        assert!(out.contains("CN007"), "{out}");
        assert!(!out.contains(": OK"), "{out}");
    }

    #[test]
    fn validate_prints_all_diagnostics_in_span_order() {
        // Two distinct errors on two lines: both must show, in order.
        let bad = "<cn2><client class=\"C\"><job>\n\
                   <task name=\"a\" jar=\"\" class=\"K\"/>\n\
                   <task name=\"b\" jar=\"j\" class=\"K\" depends=\"ghost\"/>\n\
                   </job></client></cn2>";
        let (out, code) = validate_cnx(bad).unwrap();
        assert_eq!(code, 1);
        let empty_jar = out.find("CN003").expect("empty-field diagnostic");
        let unknown_dep = out.find("CN006").expect("unknown-dependency diagnostic");
        assert!(empty_jar < unknown_dep, "{out}");
    }

    #[test]
    fn validate_warnings_do_not_fail_the_exit_code() {
        // An isolated extra task is a warning (CN013), not an error.
        let mut doc = figure2_descriptor(3);
        doc.client.jobs[0]
            .tasks
            .push(computational_neighborhood::cnx::ast::Task::new("stray", "s.jar", "S"));
        let (out, code) = validate_cnx(&write_cnx(&doc)).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("CN013"), "{out}");
        assert!(out.contains(": OK"), "{out}");
    }

    #[test]
    fn lint_clean_input_exits_zero() {
        let (out, code) = lint_input(&figure2_cnx_text(), &[]).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("0 error(s), 0 warning(s), 0 info(s)"), "{out}");
    }

    #[test]
    fn lint_distinguishes_warnings_from_errors() {
        let mut doc = figure2_descriptor(3);
        doc.client.jobs[0]
            .tasks
            .push(computational_neighborhood::cnx::ast::Task::new("stray", "s.jar", "S"));
        let text = write_cnx(&doc);
        let (_, code) = lint_input(&text, &[]).unwrap();
        assert_eq!(code, 2);
        // --deny warnings promotes to a hard failure.
        let (out, code) = lint_input(&text, &["x", "--deny", "warnings"]).unwrap();
        assert_eq!(code, 1);
        assert!(out.contains("error[CN013]"), "{out}");
        // Errors always exit 1.
        let (_, code) = lint_input("<cn2><client class=\"C\"></client></cn2>", &[]).unwrap();
        assert_eq!(code, 1);
    }

    #[test]
    fn lint_json_format_is_machine_readable() {
        let (out, code) = lint_input("not xml at all", &["x", "--format", "json"]).unwrap();
        assert_eq!(code, 1);
        assert!(out.starts_with("{\"diagnostics\":["), "{out}");
        assert!(out.contains("\"code\":\"CN000\""), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
        assert!(lint_input("x", &["x", "--format", "yaml"]).is_err());
        assert!(lint_input("x", &["x", "--deny", "infos"]).is_err());
    }

    #[test]
    fn lint_accepts_xmi_input() {
        let (out, code) = lint_input(&figure2_xmi_text(), &[]).unwrap();
        assert_eq!(code, 0, "{out}");
        // A degenerate model: strip everything but one action.
        let (out, code) = lint_input(&figure2_xmi_text(), &["x", "--format", "json"]).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("\"errors\":0"), "{out}");
    }

    #[test]
    fn lint_capacity_flags_feed_the_memory_passes() {
        // Figure 2's five workers need 5000 MB in one wave; a 2-node,
        // 1000 MB cluster cannot hold that.
        let text = write_cnx(&figure2_descriptor(5));
        let (out, code) =
            lint_input(&text, &["x", "--nodes", "2", "--node-memory", "1000", "--node-slots", "4"])
                .unwrap();
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("CN016"), "{out}");
        // Flag validation.
        assert!(lint_input(&text, &["x", "--nodes", "2"]).is_err());
        assert!(lint_input(&text, &["x", "--node-slots", "4"]).is_err());
        assert!(lint_input(&text, &["x", "--nodes", "two", "--node-memory", "1"]).is_err());
    }

    #[test]
    fn transform_produces_cnx() {
        let args = vec!["x.xmi", "--class", "TransClosure", "--port", "5666"];
        let out = transform_xmi(&figure2_xmi_text(), &args).unwrap();
        assert!(out.contains("<cn2>"));
        assert!(out.contains(r#"port="5666""#));
        // The keyless path gives the same answer.
        let mut nk = args.clone();
        nk.push("--no-keys");
        assert_eq!(out, transform_xmi(&figure2_xmi_text(), &nk).unwrap());
    }

    #[test]
    fn codegen_both_languages() {
        let rust = codegen_cnx(&figure2_cnx_text(), "rust").unwrap();
        assert!(rust.contains("fn main"));
        let java = codegen_cnx(&figure2_cnx_text(), "java").unwrap();
        assert!(java.contains("public static void main"));
        assert!(codegen_cnx(&figure2_cnx_text(), "cobol").is_err());
    }

    #[test]
    fn render_handles_both_inputs_and_formats() {
        let from_cnx = render(&figure2_cnx_text(), "ascii").unwrap();
        assert!(from_cnx.contains("[tctask0]"));
        let from_xmi = render(&figure2_xmi_text(), "dot").unwrap();
        assert!(from_xmi.starts_with("digraph"));
        assert!(render(&figure2_cnx_text(), "png").is_err());
    }

    #[test]
    fn demo_runs_end_to_end() {
        let out = demo(2).unwrap();
        assert!(out.contains("verified=true"), "{out}");
    }

    #[test]
    fn example_xmi_feeds_transform() {
        let (xmi, _) = run(&["example-xmi".to_string(), "2".to_string()]).unwrap();
        assert!(xmi.contains("UML:ActionState"));
        let cnx = transform_xmi(&xmi, &["x", "--class", "TC"]).unwrap();
        assert!(cnx.contains("tctask999"));
        assert!(run(&["example-xmi".to_string(), "0".to_string()]).is_err());
    }

    #[test]
    fn trace_writes_chrome_trace_and_journal() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/test-artifacts");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("cnctl-trace.json");
        let journal = dir.join("cnctl-trace.jsonl");
        let args = vec![
            "examples",
            "--workers",
            "2",
            "--out",
            out.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ];
        let msg = trace_cmd(&args).unwrap();
        assert!(msg.contains("span(s)"), "{msg}");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["), "{text}");
        assert!(text.contains("\"ph\":\"X\""), "{text}");
        let j = std::fs::read_to_string(&journal).unwrap();
        assert!(j.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "{j}");
        // One span per pipeline stage and per task.
        for name in ["validate-model", "xmi2cnx-xslt", "execute", "tctask0", "tctask1", "tctask999"]
        {
            assert!(j.contains(&format!("\"name\":\"{name}\"")), "missing {name} in {j}");
        }
        std::fs::remove_file(out).ok();
        std::fs::remove_file(journal).ok();
    }

    #[test]
    fn stats_reports_metrics_and_spans() {
        let out = stats_cmd(&["examples", "--workers", "2"]).unwrap();
        assert!(out.contains("== metrics =="), "{out}");
        assert!(out.contains("api.jobs_created"), "{out}");
        assert!(out.contains("server.tasks_completed"), "{out}");
        assert!(out.contains("== spans =="), "{out}");
        assert!(stats_cmd(&[]).is_err());
    }

    #[test]
    fn arg_helpers() {
        let args = vec!["file.cnx", "--lang", "java", "--no-keys"];
        assert_eq!(positional(&args, 0), Some("file.cnx"));
        assert_eq!(flag_value(&args, "--lang"), Some("java"));
        assert!(has_flag(&args, "--no-keys"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("usage:"));
        assert!(run(&[]).unwrap().0.contains("usage:"));
    }

    #[test]
    fn lint_explain_documents_codes() {
        let (out, code) =
            run(&["lint".to_string(), "--explain".to_string(), "CN050".to_string()]).unwrap();
        assert_eq!(code, 0);
        assert!(out.starts_with("CN050: "), "{out}");
        assert!(out.lines().count() >= 3, "want headline + rationale: {out}");
        // Case-insensitive, like the library lookup.
        let (lower, _) =
            run(&["lint".to_string(), "--explain".to_string(), "cn050".to_string()]).unwrap();
        assert_eq!(out, lower);
        let err =
            run(&["lint".to_string(), "--explain".to_string(), "CN999".to_string()]).unwrap_err();
        assert!(err.contains("unknown diagnostic code"), "{err}");
    }

    #[test]
    fn check_list_names_every_scenario() {
        let (out, code) = check_cmd(&["--list"]).unwrap();
        assert_eq!(code, 0);
        for s in check::all() {
            assert!(out.contains(s.name), "missing {} in {out}", s.name);
        }
    }

    #[test]
    fn check_rejects_bad_arguments() {
        assert!(check_cmd(&["--format", "yaml"]).is_err());
        assert!(check_cmd(&["--seeds", "1,potato"]).is_err());
        assert!(check_cmd(&["--schedules", "-3"]).is_err());
        assert!(check_cmd(&["--scenario", "no.such.scenario"]).is_err());
    }

    #[test]
    fn check_runs_one_scenario_clean() {
        // A deliberately tiny budget: determinism means shrinking the
        // matrix only shrinks coverage, and the golden CLI tests pin the
        // full rendering.
        let (out, code) = check_cmd(&[
            "--scenario",
            "core.tuplespace",
            "--seeds",
            "1",
            "--schedules",
            "4",
            "--format",
            "json",
        ])
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"name\":\"core.tuplespace\""), "{out}");
        assert!(out.contains("\"failed\":false"), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
