//! The full model-driven pipeline of paper Figure 6:
//!
//! 1. build the UML activity diagram for the transitive-closure job,
//! 2. export it as XMI,
//! 3. transform XMI → CNX with the XMI2CNX **XSLT** stylesheet,
//! 4. transform CNX → client programs (Rust + the paper's Java),
//! 5. deploy archives to the CN servers,
//! 6. execute and print results.
//!
//! ```sh
//! cargo run --example model_pipeline
//! ```

use std::time::Duration;

use computational_neighborhood::cluster::NodeSpec;
use computational_neighborhood::core::{DynamicArgs, Neighborhood};
use computational_neighborhood::model::render::to_ascii;
use computational_neighborhood::tasks::{
    self, floyd_sequential, random_digraph, seed_input, Matrix,
};
use computational_neighborhood::transform::{
    figure2_model, figure2_settings, Pipeline, PipelineOptions,
};

fn main() {
    let workers = 4;
    let neighborhood = Neighborhood::deploy(NodeSpec::fleet(3, 8192, 16));
    tasks::publish_all_archives(neighborhood.registry());

    // Step 1: the model (Figure 3 shape, CNX task names).
    let model = figure2_model(workers);
    println!("== activity diagram ==\n{}", to_ascii(&model));

    let input = random_digraph(24, 0.2, 1..9, 7);
    let worker_names: Vec<String> = (1..=workers).map(|i| format!("tctask{i}")).collect();
    let input_for_seed = input.clone();
    let options = PipelineOptions {
        settings: figure2_settings(),
        dynamic: DynamicArgs::new(),
        timeout: Duration::from_secs(60),
        seed: Some(Box::new(move |job| {
            seed_input(job, "matrix.txt", &input_for_seed, &worker_names, "tctask999")
                .expect("seed input");
        })),
    };

    let run = Pipeline::new(&neighborhood).run(&model, options).expect("pipeline");

    println!("== stage timings ==");
    for t in &run.timings {
        println!("  {:<16} {:?}", t.stage, t.elapsed);
    }
    println!("\n== CNX client descriptor (Figure 2 artifact) ==\n{}", run.cnx_text);
    println!("== generated Java client (first 12 lines) ==");
    for line in run.java_source.lines().take(12) {
        println!("  {line}");
    }
    println!("\n== generated Rust client (first 12 lines) ==");
    for line in run.rust_source.lines().take(12) {
        println!("  {line}");
    }

    let result = Matrix::from_userdata(run.reports[0].result("tctask999").unwrap()).unwrap();
    assert_eq!(result, floyd_sequential(&input));
    println!(
        "\nexecution verified against sequential Floyd ({} tasks)",
        run.descriptor.task_count()
    );
    neighborhood.shutdown();
}
