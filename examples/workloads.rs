//! The other domain workloads from the task library: Monte-Carlo π
//! estimation, distributed word count, and row-block matrix multiply —
//! the "scientific and other applications that lend themselves to parallel
//! computing" of the paper's introduction.
//!
//! ```sh
//! cargo run --example workloads
//! ```

use computational_neighborhood::cluster::NodeSpec;
use computational_neighborhood::core::Neighborhood;
use computational_neighborhood::tasks::{matmul, montecarlo, wordcount};

fn main() {
    let neighborhood = Neighborhood::deploy(NodeSpec::fleet(4, 8192, 16));

    // Monte-Carlo π.
    let pi = montecarlo::run_pi(&neighborhood, 8, 100_000, 424242).expect("pi job");
    println!("π estimate from 8×100k samples: {pi:.5} (true: {:.5})", std::f64::consts::PI);

    // Word count.
    let shards = [
        "clustering is the use of multiple computers to form what appears \
         to users as a single computing resource",
        "the guiding principle for cn is simplicity for the programmer and the end user",
        "each job is represented as an activity and each task as an action state",
    ];
    let counts = wordcount::run_wordcount(&neighborhood, &shards).expect("wordcount job");
    let mut top: Vec<(&String, &u64)> = counts.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("top words: {:?}", &top[..top.len().min(5)]);

    // Matrix multiply.
    let n = 16;
    let a: Vec<i64> = (0..n * n).map(|i| (i % 7) as i64 - 3).collect();
    let b: Vec<i64> = (0..n * n).map(|i| (i % 5) as i64 - 2).collect();
    let c = matmul::run_matmul(&neighborhood, n, &a, &b, 4).expect("matmul job");
    assert_eq!(c, matmul::matmul_sequential(n, &a, &b));
    println!("16×16 distributed matmul verified against the sequential kernel");

    let m = neighborhood.metrics();
    println!("total fabric traffic: {} messages", m.sent);
    neighborhood.shutdown();
}
