//! Quickstart: deploy a simulated neighborhood, publish a task archive,
//! run a two-task job through the CN API, and read the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use computational_neighborhood::cluster::NodeSpec;
use computational_neighborhood::core::{
    CnApi, JobRequirements, Neighborhood, TaskArchive, TaskContext, TaskSpec, UserData,
};

fn main() {
    // 1. Deploy CN servers on four simulated nodes (the paper's "install CN
    //    servers on all the machines of a subnet").
    let neighborhood = Neighborhood::deploy(NodeSpec::fleet(4, 4096, 8));

    // 2. Package tasks as archives — the JAR analogue. A task is anything
    //    implementing the Task interface; closures work for simple cases.
    neighborhood.registry().publish(
        TaskArchive::new("greet.jar")
            .class("demo.Greeter", || {
                Box::new(|ctx: &mut TaskContext| {
                    let who = ctx.param_str(0).unwrap_or("world").to_string();
                    ctx.send("shout", "greeting", UserData::Text(format!("hello, {who}")))?;
                    Ok(UserData::Empty)
                })
            })
            .class("demo.Shouter", || {
                Box::new(|ctx: &mut TaskContext| {
                    let (from, data) =
                        ctx.recv_tagged("greeting", Duration::from_secs(10)).map_err(|e| {
                            computational_neighborhood::core::TaskError::new(e.to_string())
                        })?;
                    let text = data.as_text().unwrap_or("").to_uppercase();
                    Ok(UserData::Text(format!("{text}! (via {from})")))
                })
            }),
    );

    // 3. The CN API factory sequence (paper Section 3).
    let api = CnApi::initialize(&neighborhood);
    let mut job = api.create_job(&JobRequirements::default()).expect("create job");
    println!("job created on JobManager {:?}", job.manager());

    let mut greeter = TaskSpec::new("greet", "greet.jar", "demo.Greeter");
    greeter.params.push(computational_neighborhood::cnx::Param::string("cluster"));
    greeter.memory_mb = 256;
    job.add_task(greeter).expect("place greeter");

    let mut shouter = TaskSpec::new("shout", "greet.jar", "demo.Shouter");
    shouter.memory_mb = 256;
    job.add_task(shouter).expect("place shouter");

    job.start().expect("start tasks");
    let report = job.wait(Duration::from_secs(30)).expect("job completion");

    // 4. Results.
    for (task, result) in &report.results {
        println!("{task}: {result:?}");
    }
    assert_eq!(
        report.result("shout"),
        Some(&UserData::Text("HELLO, CLUSTER! (via greet)".to_string()))
    );
    println!("quickstart OK in {:?}", report.elapsed);
    neighborhood.shutdown();
}
