//! The paper's guiding example end-to-end: parallel Floyd transitive
//! closure (all-pairs shortest path) with `TaskSplit`, `TCTask` workers and
//! `TCJoin`, validated against the sequential baseline and timed across
//! worker counts.
//!
//! ```sh
//! cargo run --release --example transitive_closure [n] [max_workers]
//! ```

use std::time::Instant;

use computational_neighborhood::cluster::NodeSpec;
use computational_neighborhood::core::Neighborhood;
use computational_neighborhood::tasks::{
    floyd_sequential, random_digraph, run_transitive_closure, TcOptions,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(96);
    let max_workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let neighborhood = Neighborhood::deploy(NodeSpec::fleet(4, 16_384, 32));
    let graph = random_digraph(n, 0.1, 1..100, 2026);

    println!("transitive closure of a {n}-node random digraph (density 0.1)");
    let t0 = Instant::now();
    let reference = floyd_sequential(&graph);
    let seq_time = t0.elapsed();
    println!("  sequential Floyd:        {seq_time:?}");

    let mut workers = 1;
    while workers <= max_workers {
        let t = Instant::now();
        let result = run_transitive_closure(&neighborhood, &graph, &TcOptions::new(workers))
            .expect("CN job");
        let elapsed = t.elapsed();
        assert_eq!(result, reference, "CN result must match sequential Floyd");
        println!(
            "  CN with {workers:2} worker(s):   {elapsed:?}  (speedup vs seq: {:.2}x)",
            seq_time.as_secs_f64() / elapsed.as_secs_f64()
        );
        workers *= 2;
    }

    // The tuple-space coordination variant (paper: "CN also supports
    // communication via tuple spaces").
    let mut opts = TcOptions::new(4);
    opts.tuplespace_workers = true;
    let t = Instant::now();
    let result = run_transitive_closure(&neighborhood, &graph, &opts).expect("CN job (ts)");
    assert_eq!(result, reference);
    println!("  tuple-space workers (4): {:?}", t.elapsed());

    let m = neighborhood.metrics();
    println!(
        "network: {} messages sent, {} delivered, {} multicasts",
        m.sent, m.delivered, m.multicasts
    );
    neighborhood.shutdown();
}
