//! The web-portal prototype (paper Figure 1): submit an XMI document, get
//! back the CNX descriptor, generated client programs, and execution
//! results — "so that the user does not need to log on to the subnet".
//!
//! ```sh
//! cargo run --example portal_submit
//! ```

use computational_neighborhood::core::DynamicArgs;
use computational_neighborhood::tasks::{self, floyd_sequential, ring_graph, seed_input, Matrix};
use computational_neighborhood::transform::{figure2_model, figure2_settings, Portal};

fn main() {
    let portal = Portal::new(3);
    tasks::publish_all_archives(portal.neighborhood().registry());

    // A "user" exports their activity diagram from a modeling tool...
    let workers = 3;
    let xmi_text = computational_neighborhood::xml::write_document(
        &computational_neighborhood::model::export_xmi(&figure2_model(workers)),
        &computational_neighborhood::xml::WriteOptions::xmi(),
    );
    println!("submitting {} bytes of XMI to the portal...", xmi_text.len());

    // ...and submits it with their input data.
    let input = ring_graph(12, 3);
    let worker_names: Vec<String> = (1..=workers).map(|i| format!("tctask{i}")).collect();
    let input_for_seed = input.clone();
    let response = portal
        .submit(&xmi_text, &figure2_settings(), &DynamicArgs::new(), move |job| {
            seed_input(job, "matrix.txt", &input_for_seed, &worker_names, "tctask999")
                .expect("seed input");
        })
        .expect("portal submission");

    println!("downloadable artifacts:");
    println!("  - CNX descriptor ({} bytes)", response.cnx_text.len());
    println!("  - Rust client    ({} bytes)", response.rust_source.len());
    println!("  - Java client    ({} bytes)", response.java_source.len());

    let result = Matrix::from_userdata(response.reports[0].result("tctask999").unwrap()).unwrap();
    assert_eq!(result, floyd_sequential(&input));
    println!("results verified; job took {:?}", response.reports[0].elapsed);
    portal.shutdown();
}
