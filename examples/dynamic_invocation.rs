//! Dynamic invocation (paper Figure 5): "it is sometimes desirable to
//! leave the number of concurrent invocations of a task open until run
//! time". The model carries a single `TCTask` action state with
//! multiplicity `*`; the run-time argument expression — "a set of actual
//! argument lists, one for each invocation" — is supplied at execution.
//!
//! ```sh
//! cargo run --example dynamic_invocation
//! ```

use std::time::Duration;

use computational_neighborhood::cluster::NodeSpec;
use computational_neighborhood::cnx::Param;
use computational_neighborhood::core::{
    execute_descriptor, DynamicArgs, Neighborhood, TaskArchive, TaskContext, UserData,
};
use computational_neighborhood::model::render::to_ascii;
use computational_neighborhood::model::transitive_closure_dynamic_model;
use computational_neighborhood::transform::xmi2cnx::{xmi_to_cnx_xslt, ClientSettings};

fn main() {
    let neighborhood = Neighborhood::deploy(NodeSpec::fleet(2, 8192, 32));
    // A simple "square my argument" worker so the per-invocation argument
    // lists are visible in the results.
    neighborhood.registry().publish(TaskArchive::new("square.jar").class("demo.Square", || {
        Box::new(|ctx: &mut TaskContext| {
            let x = ctx.param_i64(0).unwrap_or(0);
            Ok(UserData::I64s(vec![x * x]))
        })
    }));

    // The Figure 5 model: TaskSplit -> TCTask [*] -> TCJoin.
    let model = transitive_closure_dynamic_model();
    println!("== dynamic-invocation activity diagram (Figure 5) ==\n{}", to_ascii(&model));

    // Export + XSLT transform: the multiplicity annotation survives into CNX.
    let xmi = computational_neighborhood::xml::write_document(
        &computational_neighborhood::model::export_xmi(&model),
        &computational_neighborhood::xml::WriteOptions::xmi(),
    );
    let cnx_text = xmi_to_cnx_xslt(
        &xmi,
        &ClientSettings { class: Some("DynamicDemo".into()), ..Default::default() },
    )
    .expect("XMI2CNX");
    println!("== generated CNX (note multiplicity=\"*\") ==\n{cnx_text}");

    // Execute the *dynamic worker only* at three different run-time
    // multiplicities. (We strip split/join here and reuse the worker slot
    // with the demo task to focus on expansion.)
    let mut descriptor = computational_neighborhood::cnx::parse_cnx(&cnx_text).unwrap();
    let job = &mut descriptor.client.jobs[0];
    job.tasks.retain(|t| t.name == "TCTask");
    job.tasks[0].jar = "square.jar".to_string();
    job.tasks[0].class = "demo.Square".to_string();
    job.tasks[0].depends.clear();
    job.tasks[0].req.memory_mb = 64;

    for multiplicity in [2usize, 5, 9] {
        let dynamic = DynamicArgs::new()
            .set("TCTask", (1..=multiplicity as i64).map(|i| vec![Param::integer(i)]).collect());
        let reports =
            execute_descriptor(&neighborhood, &descriptor, &dynamic, Duration::from_secs(30))
                .expect("dynamic execution");
        let squares: Vec<i64> = (1..=multiplicity as i64)
            .map(|i| {
                reports[0]
                    .result(&format!("TCTask_{i}"))
                    .and_then(|d| d.as_i64s())
                    .map(|v| v[0])
                    .expect("instance result")
            })
            .collect();
        println!("multiplicity {multiplicity}: instance results {squares:?}");
        assert_eq!(squares, (1..=multiplicity as i64).map(|i| i * i).collect::<Vec<_>>());
    }
    println!("dynamic invocation OK");
    neighborhood.shutdown();
}
