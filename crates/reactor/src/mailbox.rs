//! Cross-thread command mailbox with pluggable wakeup.
//!
//! Producers (fabric send paths, registration calls) push commands; the
//! owning shard drains them from its event loop. The shard normally
//! sleeps in `epoll_wait`, so the mailbox cannot wake it with a condvar
//! alone — pushes also ring a [`Waker`] (the shard's eventfd). The wake
//! is elided unless the push made the mailbox non-empty: a consumer that
//! saw the previous item is already awake, which is the same
//! "batching via backpressure" dedup the peer queues use.
//!
//! The condvar path exists so `cn-check` can drive the identical
//! push/drain/stop protocol under the model checker with a no-op waker —
//! no epoll, every wakeup owned by the scheduler.

use std::collections::VecDeque;
use std::time::Duration;

use cn_sync::{Condvar, Mutex};

/// How a push wakes the consumer when it may be asleep. The production
/// waker rings the shard's eventfd; tests and checked scenarios use
/// [`NoopWaker`] and rely on the built-in condvar.
pub trait Waker: Send + Sync {
    fn wake(&self);
}

/// No out-of-band wakeup; consumers block on the mailbox condvar.
pub struct NoopWaker;

impl Waker for NoopWaker {
    fn wake(&self) {}
}

struct MailboxState<T> {
    items: VecDeque<T>,
    stopped: bool,
}

/// An unbounded MPSC command queue; see the module docs.
pub struct Mailbox<T> {
    state: Mutex<MailboxState<T>>,
    cv: Condvar,
    waker: Box<dyn Waker>,
}

impl<T> Mailbox<T> {
    pub fn new(waker: Box<dyn Waker>) -> Mailbox<T> {
        Mailbox {
            state: Mutex::named(
                "reactor.mailbox",
                MailboxState { items: VecDeque::new(), stopped: false },
            ),
            cv: Condvar::named("reactor.mailbox_cv"),
            waker,
        }
    }

    /// Enqueue a command; false if the mailbox is stopped (the command is
    /// dropped — the consumer is gone or going).
    pub fn push(&self, item: T) -> bool {
        let mut st = self.state.lock();
        if st.stopped {
            return false;
        }
        let was_empty = st.items.is_empty();
        st.items.push_back(item);
        drop(st);
        #[cfg(not(feature = "mutations"))]
        if was_empty {
            self.cv.notify_one();
            self.waker.wake();
        }
        // Injected ordering bug for cn-check: the empty->non-empty edge is
        // exactly when the consumer may be parked, and exactly the wake
        // this skips.
        #[cfg(feature = "mutations")]
        if !was_empty {
            self.cv.notify_one();
            self.waker.wake();
        }
        true
    }

    /// Stop the mailbox and wake the consumer so it can exit. Items
    /// already queued remain drainable.
    pub fn stop(&self) {
        self.state.lock().stopped = true;
        self.cv.notify_all();
        self.waker.wake();
    }

    pub fn is_stopped(&self) -> bool {
        self.state.lock().stopped
    }

    /// Nonblocking drain of everything queued into `out`. Returns the
    /// number of items taken. The shard calls this after every wakeup.
    pub fn try_drain(&self, out: &mut Vec<T>) -> usize {
        let mut st = self.state.lock();
        let n = st.items.len();
        out.extend(st.items.drain(..));
        n
    }

    /// Blocking drain for condvar-driven consumers (scenarios, tests):
    /// waits until at least one item or stop, then drains. Returns the
    /// number of items taken; 0 means stopped with nothing left. `poll`
    /// bounds each wait so a lost wakeup surfaces as a timeout escape
    /// under the checker instead of a hang.
    pub fn recv_batch(&self, out: &mut Vec<T>, poll: Duration) -> usize {
        let mut st = self.state.lock();
        loop {
            if !st.items.is_empty() {
                let n = st.items.len();
                out.extend(st.items.drain(..));
                return n;
            }
            if st.stopped {
                return 0;
            }
            self.cv.wait_for(&mut st, poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_drain_roundtrip() {
        let mb: Mailbox<u32> = Mailbox::new(Box::new(NoopWaker));
        assert!(mb.push(1));
        assert!(mb.push(2));
        let mut out = Vec::new();
        assert_eq!(mb.try_drain(&mut out), 2);
        assert_eq!(out, vec![1, 2]);
        mb.stop();
        assert!(!mb.push(3), "push after stop");
        assert_eq!(mb.recv_batch(&mut out, Duration::from_millis(1)), 0);
    }

    #[test]
    fn blocking_consumer_sees_pushes_and_stop() {
        let mb: Arc<Mailbox<u32>> = Arc::new(Mailbox::new(Box::new(NoopWaker)));
        let consumer = {
            let mb = Arc::clone(&mb);
            cn_sync::thread::spawn(move || {
                let mut out = Vec::new();
                let mut total = 0;
                loop {
                    let n = mb.recv_batch(&mut out, Duration::from_millis(20));
                    if n == 0 {
                        return total;
                    }
                    total += n;
                }
            })
        };
        for i in 0..10 {
            assert!(mb.push(i));
        }
        mb.stop();
        assert_eq!(consumer.join().unwrap(), 10);
    }
}
