//! Hashed timer wheel: O(1) insert/cancel, slot-bucketed expiry.
//!
//! Deadlines are abstract ticks (the shard maps one tick to a fixed wall
//! duration), which keeps the wheel clock-free — the proptest model and
//! the `cn-check` scenario drive it with a virtual clock. Entries whose
//! deadline lies beyond one wheel revolution stay in their slot and ride
//! additional `rounds`; cancellation is lazy (a tombstone set consulted
//! at expiry), so `cancel` never searches a slot.

use std::collections::HashSet;

/// Handle for cancelling one armed timer. Ids are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug, Clone)]
struct Entry {
    id: u64,
    deadline: u64,
    /// Caller context carried back on expiry (the reactor stores the
    /// handler token here).
    token: u64,
    /// Caller-defined discriminator so one handler can arm several kinds
    /// of timer (connect deadline vs. backoff vs. read deadline).
    tag: u64,
}

/// One expired timer, in firing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired {
    pub id: TimerId,
    pub token: u64,
    pub tag: u64,
    pub deadline: u64,
}

pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// The tick up to which the wheel has fully expired (everything with
    /// `deadline <= now` has fired or been cancelled).
    now: u64,
    next_id: u64,
    cancelled: HashSet<u64>,
    /// Live (armed, not cancelled) entry count.
    live: usize,
}

impl TimerWheel {
    /// `slots` buckets one revolution; more slots means fewer stale-round
    /// entries touched per tick. Must be a power of two.
    pub fn new(slots: usize) -> TimerWheel {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            now: 0,
            next_id: 1,
            cancelled: HashSet::new(),
            live: 0,
        }
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Arm a timer `delay` ticks from now (a zero delay fires on the next
    /// `advance`). Returns the handle for [`cancel`](Self::cancel).
    pub fn insert(&mut self, delay: u64, token: u64, tag: u64) -> TimerId {
        let deadline = self.now.saturating_add(delay.max(1));
        let id = self.next_id;
        self.next_id += 1;
        let slot = (deadline as usize) & (self.slots.len() - 1);
        self.slots[slot].push(Entry { id, deadline, token, tag });
        self.live += 1;
        TimerId(id)
    }

    /// Cancel an armed timer. False if it already fired or was cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        // The tombstone only sticks if the id is still somewhere in a
        // slot; ids of fired timers are gone and must not leak memory.
        let armed = self.slots.iter().any(|s| s.iter().any(|e| e.id == id.0))
            && !self.cancelled.contains(&id.0);
        if armed {
            self.cancelled.insert(id.0);
            self.live -= 1;
        }
        armed
    }

    /// Advance the clock to `now`, appending everything that expired (in
    /// deadline order, insertion order within a tick) to `fired`.
    pub fn advance(&mut self, now: u64, fired: &mut Vec<Expired>) {
        if now <= self.now {
            return;
        }
        let mask = self.slots.len() - 1;
        let span = (now - self.now).min(self.slots.len() as u64);
        let start = fired.len();
        if span == self.slots.len() as u64 {
            // A full revolution (or more): every slot is due for a scan.
            for slot in 0..self.slots.len() {
                self.expire_slot(slot, now, fired);
            }
        } else {
            for tick in self.now + 1..=now {
                self.expire_slot((tick as usize) & mask, now, fired);
            }
        }
        self.now = now;
        fired[start..].sort_by_key(|e| (e.deadline, e.id.0));
    }

    fn expire_slot(&mut self, slot: usize, now: u64, fired: &mut Vec<Expired>) {
        let entries = &mut self.slots[slot];
        let mut i = 0;
        while i < entries.len() {
            if entries[i].deadline <= now {
                let e = entries.swap_remove(i);
                if self.cancelled.remove(&e.id) {
                    continue;
                }
                self.live -= 1;
                fired.push(Expired {
                    id: TimerId(e.id),
                    token: e.token,
                    tag: e.tag,
                    deadline: e.deadline,
                });
            } else {
                // Not this revolution; stays for a later pass.
                i += 1;
            }
        }
    }

    /// The earliest live deadline, if any — what bounds the shard's
    /// `epoll_wait` timeout.
    pub fn next_deadline(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for slot in &self.slots {
            for e in slot {
                if self.cancelled.contains(&e.id) {
                    continue;
                }
                best = Some(best.map_or(e.deadline, |b: u64| b.min(e.deadline)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new(8);
        let _a = w.insert(3, 10, 0);
        let _b = w.insert(1, 20, 0);
        let _c = w.insert(2, 30, 0);
        let mut fired = Vec::new();
        w.advance(5, &mut fired);
        let tokens: Vec<u64> = fired.iter().map(|e| e.token).collect();
        assert_eq!(tokens, vec![20, 30, 10]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_suppresses_expiry_exactly_once() {
        let mut w = TimerWheel::new(8);
        let a = w.insert(2, 1, 0);
        let b = w.insert(2, 2, 0);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel");
        let mut fired = Vec::new();
        w.advance(10, &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].token, 2);
        assert!(!w.cancel(b), "cancel after fire");
    }

    #[test]
    fn long_delays_survive_wheel_revolutions() {
        let mut w = TimerWheel::new(4);
        let _ = w.insert(11, 7, 9);
        let mut fired = Vec::new();
        w.advance(10, &mut fired);
        assert!(fired.is_empty(), "{fired:?}");
        assert_eq!(w.next_deadline(), Some(11));
        w.advance(11, &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!((fired[0].token, fired[0].tag), (7, 9));
    }

    #[test]
    fn advance_far_past_everything_fires_everything() {
        let mut w = TimerWheel::new(8);
        for i in 0..20 {
            w.insert(i + 1, i, 0);
        }
        let mut fired = Vec::new();
        w.advance(1_000_000, &mut fired);
        assert_eq!(fired.len(), 20);
        let tokens: Vec<u64> = fired.iter().map(|e| e.token).collect();
        assert_eq!(tokens, (0..20).collect::<Vec<u64>>());
    }
}
