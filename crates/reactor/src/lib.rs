//! # cn-reactor — sharded readiness-driven event loop
//!
//! The transport layer's answer to thread-per-peer: N event-loop threads
//! (one per core by default), each owning an epoll instance, a hashed
//! timer wheel, and a command mailbox whose waker is an eventfd. Peers
//! hash to a shard and stay there, so per-connection state machines run
//! single-threaded while senders on any thread hand work over with one
//! queue push (and an eventfd ring only on the empty→non-empty edge).
//!
//! Everything beneath is hand-rolled: the build environment has no
//! crates.io access, so [`sys`] declares the `epoll`/`eventfd` subset of
//! libc by hand, the same way `cn-wire` binds `SO_REUSEADDR`. All
//! blocking-adjacent pieces (mailbox, threads) go through the `cn-sync`
//! facade, so `cn-check` can model-check the wakeup/shutdown protocol
//! with a no-op waker and a virtual clock.

pub mod mailbox;
mod reactor;
pub mod sys;
pub mod wheel;

pub use mailbox::{Mailbox, NoopWaker, Waker};
pub use reactor::{Action, EventHandler, Reactor, ShardCtx, Token};
pub use wheel::{Expired, TimerId, TimerWheel};

/// Default shard count: one per available core, capped so a large host
/// does not burn threads the transport cannot use.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}
