//! The sharded event loop.
//!
//! A [`Reactor`] owns N shard threads, each running one epoll instance,
//! one timer wheel, and one command [`Mailbox`] whose waker is the
//! shard's eventfd. Callers register [`EventHandler`]s (each owning at
//! most one fd); handlers are pinned to a shard for life, so everything a
//! handler touches is single-threaded — no locks inside handlers, per-fd
//! ordering for free. Cross-thread interaction is exactly two commands:
//! `Notify` (data was queued for you, flush when ready) and `Close`.
//!
//! The wakeup protocol: a producer pushes a command, and iff the mailbox
//! was empty it rings the shard's eventfd; `epoll_wait` returns, the
//! shard drains the eventfd, then the mailbox, then expired timers. A
//! non-empty mailbox already has a ring in flight, so steady-state
//! producers pay one queue push and no syscall.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_sync::{thread, Mutex};

use crate::mailbox::{Mailbox, Waker};
use crate::sys::{self, Epoll, EpollEvent, EventFd};
use crate::wheel::{Expired, TimerId, TimerWheel};

/// Identifies one registered handler; the owning shard lives in the high
/// bits so any thread can route a command from the token alone.
pub type Token = u64;

const SHARD_SHIFT: u32 = 48;
/// Reserved epoll token for the shard's own wakeup eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

fn shard_of(token: Token) -> usize {
    (token >> SHARD_SHIFT) as usize
}

/// Milliseconds per timer-wheel tick.
const TICK_MS: u64 = 5;
/// Wheel slots per shard (horizon = slots * TICK_MS per revolution).
const WHEEL_SLOTS: usize = 512;
/// Longest `epoll_wait` nap even with no timers armed, so a shard always
/// notices shutdown promptly even if a wakeup is somehow lost.
const MAX_WAIT_MS: i32 = 500;
/// Events drained per `epoll_wait` call.
const EVENT_BATCH: usize = 256;
/// Shared per-shard read scratch handed to handlers.
const SCRATCH_BYTES: usize = 64 * 1024;

/// What a handler callback tells the shard to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the handler installed.
    Continue,
    /// Tear the handler down: deregister its fd, call `on_close`, drop it.
    Close,
}

/// A per-connection (or per-listener, per-socket) state machine living on
/// one shard. Handlers own their fd; the shard only manages epoll
/// membership and timers for it.
pub trait EventHandler: Send {
    /// Called once, on the owning shard, when the handler is installed.
    /// Register the fd / start the connect / arm timers here.
    fn on_register(&mut self, ctx: &mut ShardCtx<'_>) -> Action;

    /// The registered fd reported readiness.
    fn on_ready(&mut self, ctx: &mut ShardCtx<'_>, readable: bool, writable: bool) -> Action;

    /// A timer armed via [`ShardCtx::arm_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut ShardCtx<'_>, _tag: u64) -> Action {
        Action::Continue
    }

    /// A cross-thread [`Reactor::notify`] arrived for this handler.
    fn on_notify(&mut self, _ctx: &mut ShardCtx<'_>) -> Action {
        Action::Continue
    }

    /// The handler is being removed (explicit close, `Action::Close`, or
    /// reactor shutdown). The fd is already out of the epoll set.
    fn on_close(&mut self) {}
}

/// Shard-side services exposed to handler callbacks.
pub struct ShardCtx<'a> {
    token: Token,
    epoll: &'a Epoll,
    wheel: &'a mut TimerWheel,
    fd: &'a mut Option<RawFd>,
    interest: &'a mut u32,
    scratch: &'a mut Vec<u8>,
}

impl ShardCtx<'_> {
    /// This handler's token (for storing where other threads can see it).
    pub fn token(&self) -> Token {
        self.token
    }

    fn events_mask(readable: bool, writable: bool) -> u32 {
        let mut ev = 0;
        if readable {
            ev |= sys::EPOLLIN;
        }
        if writable {
            ev |= sys::EPOLLOUT;
        }
        ev
    }

    /// Put `fd` (the handler's one fd) into the shard's epoll set.
    pub fn register_fd(&mut self, fd: RawFd, readable: bool, writable: bool) -> io::Result<()> {
        let ev = Self::events_mask(readable, writable);
        self.epoll.add(fd, ev, self.token)?;
        *self.fd = Some(fd);
        *self.interest = ev;
        Ok(())
    }

    /// Change readiness interest for the registered fd.
    pub fn set_interest(&mut self, readable: bool, writable: bool) -> io::Result<()> {
        let Some(fd) = *self.fd else { return Ok(()) };
        let ev = Self::events_mask(readable, writable);
        if ev == *self.interest {
            return Ok(());
        }
        self.epoll.modify(fd, ev, self.token)?;
        *self.interest = ev;
        Ok(())
    }

    /// Remove the registered fd from the epoll set (does not close it —
    /// the handler owns the fd).
    pub fn deregister_fd(&mut self) {
        if let Some(fd) = self.fd.take() {
            let _ = self.epoll.delete(fd);
        }
        *self.interest = 0;
    }

    /// Arm a one-shot timer; `tag` comes back in `on_timer`.
    pub fn arm_timer(&mut self, delay: Duration, tag: u64) -> TimerId {
        let ticks = (delay.as_millis() as u64).div_ceil(TICK_MS).max(1);
        self.wheel.insert(ticks, self.token, tag)
    }

    /// Cancel an armed timer; false if it already fired.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        self.wheel.cancel(id)
    }

    /// Borrow the shard's shared read scratch (return it when done so the
    /// next handler on this shard reuses the allocation).
    pub fn take_scratch(&mut self) -> Vec<u8> {
        let mut buf = std::mem::take(self.scratch);
        if buf.len() < SCRATCH_BYTES {
            buf.resize(SCRATCH_BYTES, 0);
        }
        buf
    }

    pub fn put_scratch(&mut self, buf: Vec<u8>) {
        *self.scratch = buf;
    }
}

enum Command {
    Add { token: Token, handler: Box<dyn EventHandler> },
    Notify { token: Token },
    Close { token: Token },
    Shutdown,
}

struct Slot {
    handler: Box<dyn EventHandler>,
    fd: Option<RawFd>,
    interest: u32,
}

struct EventFdWaker(Arc<EventFd>);

impl Waker for EventFdWaker {
    fn wake(&self) {
        self.0.ring();
    }
}

struct ShardHandle {
    mailbox: Arc<Mailbox<Command>>,
    wakeup: Arc<EventFd>,
}

struct Shared {
    shards: Vec<ShardHandle>,
    next_token: AtomicU64,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
    stopped: AtomicBool,
}

/// Handle to the sharded event loop; cheap to clone, shuts down when
/// [`Reactor::shutdown`] is called (or the last handle drops).
pub struct Reactor {
    shared: Arc<Shared>,
}

impl Reactor {
    /// Spawn `shards` event-loop threads named `cn-reactor-<name>-<i>`.
    pub fn new(name: &str, shards: usize) -> io::Result<Reactor> {
        let shards = shards.max(1);
        let mut handles = Vec::with_capacity(shards);
        let mut runners = Vec::with_capacity(shards);
        for idx in 0..shards {
            let wakeup = Arc::new(EventFd::new()?);
            let epoll = Epoll::new()?;
            epoll.add(wakeup.as_raw_fd(), sys::EPOLLIN, WAKE_TOKEN)?;
            let mailbox = Arc::new(Mailbox::new(Box::new(EventFdWaker(Arc::clone(&wakeup)))));
            handles
                .push(ShardHandle { mailbox: Arc::clone(&mailbox), wakeup: Arc::clone(&wakeup) });
            runners.push(Shard {
                epoll,
                wakeup,
                mailbox,
                slots: HashMap::new(),
                wheel: TimerWheel::new(WHEEL_SLOTS),
                start: Instant::now(),
                scratch: vec![0; SCRATCH_BYTES],
                shutting_down: false,
            });
            let _ = idx;
        }
        let shared = Arc::new(Shared {
            shards: handles,
            next_token: AtomicU64::new(1),
            threads: Mutex::named("reactor.threads", Vec::new()),
            stopped: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(shards);
        for (idx, shard) in runners.into_iter().enumerate() {
            let t = thread::Builder::new()
                .name(format!("cn-reactor-{name}-{idx}"))
                .spawn(move || shard.run())
                .map_err(|e| io::Error::other(format!("spawn reactor shard: {e}")))?;
            threads.push(t);
        }
        *shared.threads.lock() = threads;
        Ok(Reactor { shared })
    }

    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Install a handler on the shard `key` hashes to and return its
    /// token. The handler's `on_register` runs asynchronously on that
    /// shard; if the reactor is already shut down the handler is simply
    /// dropped (its `Drop` releases the fd).
    pub fn register_hashed(&self, key: u64, handler: Box<dyn EventHandler>) -> Token {
        self.register_on((key % self.shared.shards.len() as u64) as usize, handler)
    }

    /// Install a handler on a specific shard.
    pub fn register_on(&self, shard: usize, handler: Box<dyn EventHandler>) -> Token {
        let shard = shard % self.shared.shards.len();
        let seq = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        let token = ((shard as u64) << SHARD_SHIFT) | (seq & ((1 << SHARD_SHIFT) - 1));
        self.shared.shards[shard].mailbox.push(Command::Add { token, handler });
        token
    }

    /// Tell `token`'s handler that cross-thread work was queued for it.
    pub fn notify(&self, token: Token) {
        let shard = shard_of(token) % self.shared.shards.len();
        self.shared.shards[shard].mailbox.push(Command::Notify { token });
    }

    /// Tear down `token`'s handler asynchronously.
    pub fn close(&self, token: Token) {
        let shard = shard_of(token) % self.shared.shards.len();
        self.shared.shards[shard].mailbox.push(Command::Close { token });
    }

    /// Stop every shard and join the threads. Idempotent. Must not be
    /// called from inside a handler callback (it joins the very thread
    /// the callback runs on).
    pub fn shutdown(&self) {
        if self.shared.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shared.shards {
            shard.mailbox.push(Command::Shutdown);
            shard.mailbox.stop();
            shard.wakeup.ring();
        }
        let threads = std::mem::take(&mut *self.shared.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Clone for Reactor {
    fn clone(&self) -> Reactor {
        Reactor { shared: Arc::clone(&self.shared) }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        if Arc::strong_count(&self.shared) == 1 {
            self.shutdown();
        }
    }
}

struct Shard {
    epoll: Epoll,
    wakeup: Arc<EventFd>,
    mailbox: Arc<Mailbox<Command>>,
    slots: HashMap<Token, Slot>,
    wheel: TimerWheel,
    start: Instant,
    scratch: Vec<u8>,
    shutting_down: bool,
}

impl Shard {
    fn now_tick(&self) -> u64 {
        (self.start.elapsed().as_millis() as u64) / TICK_MS
    }

    fn wait_timeout_ms(&self) -> i32 {
        match self.wheel.next_deadline() {
            Some(deadline) => {
                let due_ms = deadline * TICK_MS;
                let elapsed = self.start.elapsed().as_millis() as u64;
                ((due_ms.saturating_sub(elapsed)) as i32).clamp(0, MAX_WAIT_MS)
            }
            None => MAX_WAIT_MS,
        }
    }

    fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); EVENT_BATCH];
        let mut commands: Vec<Command> = Vec::new();
        let mut fired: Vec<Expired> = Vec::new();
        loop {
            let timeout = self.wait_timeout_ms();
            let n = self.epoll.wait(&mut events, timeout).unwrap_or_default();
            for ev in &events[..n] {
                if ev.token() == WAKE_TOKEN {
                    self.wakeup.drain();
                } else {
                    let (r, w) = (ev.readable(), ev.writable());
                    self.invoke(ev.token(), |h, ctx| h.on_ready(ctx, r, w));
                }
            }

            commands.clear();
            self.mailbox.try_drain(&mut commands);
            for cmd in commands.drain(..) {
                match cmd {
                    Command::Add { token, handler } => {
                        self.slots.insert(token, Slot { handler, fd: None, interest: 0 });
                        self.invoke(token, |h, ctx| h.on_register(ctx));
                    }
                    Command::Notify { token } => {
                        self.invoke(token, |h, ctx| h.on_notify(ctx));
                    }
                    Command::Close { token } => {
                        if let Some(slot) = self.slots.remove(&token) {
                            self.teardown(slot);
                        }
                    }
                    Command::Shutdown => self.shutting_down = true,
                }
            }

            fired.clear();
            self.wheel.advance(self.now_tick(), &mut fired);
            for exp in fired.drain(..) {
                let tag = exp.tag;
                self.invoke(exp.token, |h, ctx| h.on_timer(ctx, tag));
            }

            if self.shutting_down {
                for (_, slot) in self.slots.drain() {
                    if let Some(fd) = slot.fd {
                        let _ = self.epoll.delete(fd);
                    }
                    let mut slot = slot;
                    slot.handler.on_close();
                }
                return;
            }
        }
    }

    /// Run one handler callback with the slot temporarily removed, so the
    /// callback gets `&mut` to both the handler and the shard services.
    fn invoke(
        &mut self,
        token: Token,
        f: impl FnOnce(&mut dyn EventHandler, &mut ShardCtx<'_>) -> Action,
    ) {
        let Some(mut slot) = self.slots.remove(&token) else { return };
        let mut ctx = ShardCtx {
            token,
            epoll: &self.epoll,
            wheel: &mut self.wheel,
            fd: &mut slot.fd,
            interest: &mut slot.interest,
            scratch: &mut self.scratch,
        };
        match f(slot.handler.as_mut(), &mut ctx) {
            Action::Continue => {
                self.slots.insert(token, slot);
            }
            Action::Close => self.teardown(slot),
        }
    }

    fn teardown(&mut self, mut slot: Slot) {
        if let Some(fd) = slot.fd.take() {
            let _ = self.epoll.delete(fd);
        }
        slot.handler.on_close();
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use cn_sync::channel::unbounded_named;

    struct TimerProbe {
        tx: cn_sync::channel::Sender<&'static str>,
    }

    impl EventHandler for TimerProbe {
        fn on_register(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
            let a = ctx.arm_timer(Duration::from_millis(10), 1);
            ctx.arm_timer(Duration::from_millis(30), 2);
            let cancelled = ctx.arm_timer(Duration::from_millis(20), 3);
            assert!(ctx.cancel_timer(cancelled));
            let _ = a;
            self.tx.send("registered").unwrap();
            Action::Continue
        }

        fn on_ready(&mut self, _ctx: &mut ShardCtx<'_>, _r: bool, _w: bool) -> Action {
            Action::Continue
        }

        fn on_timer(&mut self, _ctx: &mut ShardCtx<'_>, tag: u64) -> Action {
            match tag {
                1 => {
                    self.tx.send("t1").unwrap();
                    Action::Continue
                }
                2 => {
                    self.tx.send("t2").unwrap();
                    Action::Close
                }
                _ => panic!("cancelled timer fired"),
            }
        }

        fn on_notify(&mut self, _ctx: &mut ShardCtx<'_>) -> Action {
            self.tx.send("notified").unwrap();
            Action::Continue
        }

        fn on_close(&mut self) {
            self.tx.send("closed").unwrap();
        }
    }

    #[test]
    fn timers_notifies_and_shutdown_reach_the_handler() {
        let reactor = Reactor::new("test", 2).unwrap();
        assert_eq!(reactor.shards(), 2);
        let (tx, rx) = unbounded_named("reactor.test");
        let token = reactor.register_hashed(7, Box::new(TimerProbe { tx }));
        let within = Duration::from_secs(2);
        assert_eq!(rx.recv_timeout(within).unwrap(), "registered");
        reactor.notify(token);
        assert_eq!(rx.recv_timeout(within).unwrap(), "notified");
        assert_eq!(rx.recv_timeout(within).unwrap(), "t1");
        assert_eq!(rx.recv_timeout(within).unwrap(), "t2");
        // tag 2 returned Close: teardown follows, cancelled tag 3 never fires.
        assert_eq!(rx.recv_timeout(within).unwrap(), "closed");
        reactor.shutdown();
        assert!(rx.try_recv().is_err());
    }

    struct Idle {
        tx: cn_sync::channel::Sender<&'static str>,
    }

    impl EventHandler for Idle {
        fn on_register(&mut self, _ctx: &mut ShardCtx<'_>) -> Action {
            Action::Continue
        }
        fn on_ready(&mut self, _ctx: &mut ShardCtx<'_>, _r: bool, _w: bool) -> Action {
            Action::Continue
        }
        fn on_close(&mut self) {
            self.tx.send("closed").unwrap();
        }
    }

    #[test]
    fn shutdown_closes_every_live_handler() {
        let reactor = Reactor::new("drain", 1).unwrap();
        let (tx, rx) = unbounded_named("reactor.drain");
        for _ in 0..3 {
            reactor.register_on(0, Box::new(Idle { tx: tx.clone() }));
        }
        reactor.shutdown();
        for _ in 0..3 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), "closed");
        }
    }
}
