//! Hand-rolled syscall shims for the reactor.
//!
//! The build environment has no crates.io access, so — like the
//! `SO_REUSEADDR` bind in `cn-wire` — everything here goes through the
//! libc already linked into every Rust binary, declared by hand with
//! `extern "C"`. Only the subset the reactor needs is wrapped: `epoll`
//! for readiness, `eventfd` for cross-thread wakeups, nonblocking TCP
//! connect (`EINPROGRESS` + `SO_ERROR`), and `RLIMIT_NOFILE` queries for
//! the CN057 capacity lint and the connection-scale bench.

#![allow(clippy::missing_safety_doc)]

use std::io;

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::net::{SocketAddrV4, TcpStream};
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};

    // The kernel packs epoll_event on x86_64 (and only there); getting
    // this wrong silently corrupts the user-data token.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    impl EpollEvent {
        pub const fn zeroed() -> EpollEvent {
            EpollEvent { events: 0, data: 0 }
        }

        pub fn token(&self) -> u64 {
            self.data
        }

        pub fn readable(&self) -> bool {
            self.events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
        }

        pub fn writable(&self) -> bool {
            self.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
        }
    }

    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn connect(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn getsockopt(fd: i32, level: i32, name: i32, value: *mut u8, len: *mut u32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0o4000;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_ERROR: i32 = 4;
    const EINPROGRESS: i32 = 115;
    const EINTR: i32 = 4;
    const RLIMIT_NOFILE: i32 = 7;

    /// A level-triggered epoll instance. Tokens are caller-chosen u64s
    /// carried back verbatim in each event's user data.
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data: token };
            if unsafe { epoll_ctl(self.fd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait for readiness; `timeout_ms < 0` blocks indefinitely.
        /// `EINTR` retries internally so callers never see it.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                let n = unsafe {
                    epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
                };
                if n >= 0 {
                    return Ok(n as usize);
                }
                let err = io::Error::last_os_error();
                if err.raw_os_error() != Some(EINTR) {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// A nonblocking eventfd: the reactor's cross-thread wakeup doorbell.
    /// Any thread may `ring` it; the owning shard registers it in its
    /// epoll set and `drain`s it on wake.
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        pub fn new() -> io::Result<EventFd> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EventFd { fd })
        }

        pub fn as_raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Add 1 to the counter, waking any epoll_wait watching the fd.
        /// A full counter (EAGAIN) already guarantees a pending wakeup.
        pub fn ring(&self) {
            let one: u64 = 1;
            unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
        }

        /// Reset the counter so the next `ring` edge-triggers a fresh
        /// readiness event (the fd is level-triggered until drained).
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// Begin a nonblocking TCP connect. Returns the socket (already
    /// `SOCK_NONBLOCK`) and whether the connect completed immediately
    /// (loopback often does); otherwise the caller waits for `EPOLLOUT`
    /// and checks [`take_socket_error`].
    pub fn connect_nonblocking(addr: SocketAddrV4) -> io::Result<(TcpStream, bool)> {
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let sa = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from_ne_bytes(addr.ip().octets()),
                sin_zero: [0; 8],
            };
            let rc = connect(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32);
            if rc == 0 {
                return Ok((TcpStream::from_raw_fd(fd), true));
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINPROGRESS) {
                return Ok((TcpStream::from_raw_fd(fd), false));
            }
            close(fd);
            Err(err)
        }
    }

    /// Fetch-and-clear `SO_ERROR`: the verdict of a nonblocking connect
    /// once the socket reports writable.
    pub fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
        let mut err: i32 = 0;
        let mut len: u32 = 4;
        let rc = unsafe {
            getsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                SO_ERROR,
                &mut err as *mut i32 as *mut u8,
                &mut len,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        if err != 0 {
            return Err(io::Error::from_raw_os_error(err));
        }
        Ok(())
    }

    /// The process's `RLIMIT_NOFILE` as `(soft, hard)`.
    pub fn fd_limits() -> io::Result<(u64, u64)> {
        let mut rl = Rlimit { rlim_cur: 0, rlim_max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut rl) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((rl.rlim_cur, rl.rlim_max))
    }

    /// Best-effort raise of the fd soft limit to `target` (also the hard
    /// limit when the process may — root in a container may). Returns the
    /// soft limit actually in effect afterwards.
    pub fn raise_fd_limit(target: u64) -> io::Result<u64> {
        let (soft, hard) = fd_limits()?;
        if soft >= target {
            return Ok(soft);
        }
        let want_hard = hard.max(target);
        let rl = Rlimit { rlim_cur: target.min(want_hard), rlim_max: want_hard };
        if unsafe { setrlimit(RLIMIT_NOFILE, &rl) } < 0 {
            // Retry within the existing hard limit before giving up.
            let rl = Rlimit { rlim_cur: target.min(hard), rlim_max: hard };
            if unsafe { setrlimit(RLIMIT_NOFILE, &rl) } < 0 {
                return Ok(soft);
            }
        }
        Ok(fd_limits()?.0)
    }
}

// Non-Linux hosts compile but cannot run a reactor: every entry point
// reports `Unsupported`, mirroring how the socket fabric is Linux-first.
#[cfg(not(target_os = "linux"))]
pub use fallback::*;

#[cfg(not(target_os = "linux"))]
mod fallback {
    use std::io;
    use std::net::{SocketAddrV4, TcpStream};

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "cn-reactor requires Linux epoll"))
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;

    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    impl EpollEvent {
        pub const fn zeroed() -> EpollEvent {
            EpollEvent { events: 0, data: 0 }
        }
        pub fn token(&self) -> u64 {
            self.data
        }
        pub fn readable(&self) -> bool {
            false
        }
        pub fn writable(&self) -> bool {
            false
        }
    }

    pub struct Epoll;

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            unsupported()
        }
        pub fn add(&self, _fd: i32, _events: u32, _token: u64) -> io::Result<()> {
            unsupported()
        }
        pub fn modify(&self, _fd: i32, _events: u32, _token: u64) -> io::Result<()> {
            unsupported()
        }
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }
        pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> io::Result<usize> {
            unsupported()
        }
    }

    pub struct EventFd;

    impl EventFd {
        pub fn new() -> io::Result<EventFd> {
            unsupported()
        }
        pub fn as_raw_fd(&self) -> i32 {
            -1
        }
        pub fn ring(&self) {}
        pub fn drain(&self) {}
    }

    pub fn connect_nonblocking(_addr: SocketAddrV4) -> io::Result<(TcpStream, bool)> {
        unsupported()
    }

    pub fn take_socket_error(_stream: &TcpStream) -> io::Result<()> {
        Ok(())
    }

    pub fn fd_limits() -> io::Result<(u64, u64)> {
        unsupported()
    }

    pub fn raise_fd_limit(_target: u64) -> io::Result<u64> {
        unsupported()
    }
}

/// Whether an I/O error is the nonblocking "try again later" class.
pub fn is_would_block(err: &io::Error) -> bool {
    matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted)
}
