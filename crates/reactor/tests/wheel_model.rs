//! Property test: the hashed timer wheel is behaviorally identical to a
//! naive sorted-list timer model over arbitrary insert/cancel/advance
//! sequences — same firing order, same cancel results, same emptiness,
//! same next deadline. The wheel's slot hashing, multi-revolution rounds,
//! and lazy tombstones are all invisible at this interface, and this test
//! is what pins that.

use cn_reactor::{TimerId, TimerWheel};
use proptest::prelude::*;

/// The reference implementation: every armed timer in one flat list.
#[derive(Debug, Default)]
struct NaiveTimers {
    /// (seq, deadline, token, tag) — seq doubles as insertion order, which
    /// breaks deadline ties exactly like the wheel's monotonic ids do.
    live: Vec<(u64, u64, u64, u64)>,
    now: u64,
    next_seq: u64,
}

impl NaiveTimers {
    fn insert(&mut self, delay: u64, token: u64, tag: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.push((seq, self.now.saturating_add(delay.max(1)), token, tag));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        let before = self.live.len();
        self.live.retain(|e| e.0 != seq);
        self.live.len() != before
    }

    /// Everything due by `now`, in (deadline, insertion) order.
    fn advance(&mut self, now: u64) -> Vec<(u64, u64, u64)> {
        if now <= self.now {
            return Vec::new();
        }
        self.now = now;
        let mut due: Vec<_> = self.live.iter().copied().filter(|e| e.1 <= now).collect();
        self.live.retain(|e| e.1 > now);
        due.sort_by_key(|e| (e.1, e.0));
        due.into_iter().map(|(_, deadline, token, tag)| (deadline, token, tag)).collect()
    }

    fn next_deadline(&self) -> Option<u64> {
        self.live.iter().map(|e| e.1).min()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert { delay: u64, token: u64, tag: u64 },
    Cancel { pick: usize },
    Advance { dt: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest's `prop_oneof!` is uniform; repeating the
    // insert arm weights the mix toward armed timers.
    let insert = || {
        (0u64..40, 0u64..8, 0u64..4).prop_map(|(delay, token, tag)| Op::Insert {
            delay,
            token,
            tag,
        })
    };
    let advance = || (0u64..24).prop_map(|dt| Op::Advance { dt });
    prop_oneof![
        insert(),
        insert(),
        insert(),
        (0usize..64).prop_map(|pick| Op::Cancel { pick }),
        advance(),
        advance(),
    ]
}

proptest! {
    #[test]
    fn wheel_matches_sorted_list_model(
        slots_pow in 2u32..7, // 4..=64 slots, so delays span multiple revolutions
        ops in proptest::collection::vec(op_strategy(), 0..64),
    ) {
        let mut wheel = TimerWheel::new(1 << slots_pow);
        let mut model = NaiveTimers::default();
        // Every id either implementation ever issued, in issue order, so a
        // Cancel op can name fired/cancelled timers too (must agree: false).
        let mut issued: Vec<(TimerId, u64)> = Vec::new();
        let mut fired = Vec::new();

        for op in ops {
            match op {
                Op::Insert { delay, token, tag } => {
                    issued.push((wheel.insert(delay, token, tag), model.insert(delay, token, tag)));
                }
                Op::Cancel { pick } => {
                    if issued.is_empty() {
                        continue;
                    }
                    let (id, seq) = issued[pick % issued.len()];
                    prop_assert_eq!(wheel.cancel(id), model.cancel(seq));
                }
                Op::Advance { dt } => {
                    let to = wheel.now() + dt;
                    let expect = model.advance(to);
                    fired.clear();
                    wheel.advance(to, &mut fired);
                    let got: Vec<_> =
                        fired.iter().map(|e| (e.deadline, e.token, e.tag)).collect();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(wheel.is_empty(), model.live.is_empty());
            prop_assert_eq!(wheel.next_deadline(), model.next_deadline());
        }

        // Drain both past every possible deadline: nothing may linger.
        let horizon = wheel.now() + 128;
        let expect = model.advance(horizon);
        fired.clear();
        wheel.advance(horizon, &mut fired);
        let got: Vec<_> = fired.iter().map(|e| (e.deadline, e.token, e.tag)).collect();
        prop_assert_eq!(got, expect);
        prop_assert!(wheel.is_empty());
        prop_assert_eq!(wheel.next_deadline(), None);
    }
}
