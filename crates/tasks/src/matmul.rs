//! Row-block parallel matrix multiplication — a dense-kernel workload with
//! a different communication shape than Floyd (one-shot scatter, no
//! per-iteration exchange).

use std::time::Duration;

use cn_core::{Field, TaskContext, TaskError, UserData};

use crate::matrix::row_blocks;
use crate::transclosure::{decode_i64s, encode_i64s};

pub const MM_JAR: &str = "matmul.jar";
pub const WORKER_CLASS: &str = "org.jhpc.cn2.matmul.RowWorker";
pub const JOIN_CLASS: &str = "org.jhpc.cn2.matmul.Collector";

/// Sequential dense multiply of flat row-major `n×n` matrices.
pub fn matmul_sequential(n: usize, a: &[i64], b: &[i64]) -> Vec<i64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Worker: params `[index, workers, n]`; reads A's row block and all of B
/// from the tuple space, multiplies, sends its C block to `collect`.
pub struct RowWorker;

impl cn_core::Task for RowWorker {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let index = ctx.param_i64(0).ok_or_else(|| TaskError::new("need index"))? as usize;
        let workers = ctx.param_i64(1).ok_or_else(|| TaskError::new("need workers"))? as usize;
        let n = ctx.param_i64(2).ok_or_else(|| TaskError::new("need n"))? as usize;
        let range = row_blocks(n, workers)
            .get(index)
            .cloned()
            .ok_or_else(|| TaskError::new("worker index out of range"))?;
        let a_block = take_bytes(ctx, "A", index as i64)?;
        let b = rd_bytes(ctx, "B", -1)?;
        if b.len() != n * n || a_block.len() != range.len() * n {
            return Err(TaskError::new("input shard size mismatch"));
        }
        let mut c_block = vec![0i64; range.len() * n];
        for (local_i, _) in range.clone().enumerate() {
            for k in 0..n {
                let aik = a_block[local_i * n + k];
                if aik == 0 {
                    continue;
                }
                for j in 0..n {
                    c_block[local_i * n + j] += aik * b[k * n + j];
                }
            }
        }
        let mut payload = vec![range.start as i64, range.end as i64];
        payload.extend_from_slice(&c_block);
        ctx.send("collect", "cblock", UserData::I64s(payload))?;
        Ok(UserData::I64s(vec![range.len() as i64]))
    }
}

fn take_bytes(ctx: &TaskContext, name: &str, key: i64) -> Result<Vec<i64>, TaskError> {
    let tuple = ctx
        .tuplespace()
        .take(
            &vec![Some(Field::S(name.into())), Some(Field::I(key)), None],
            Duration::from_secs(30),
        )
        .ok_or_else(|| TaskError::new(format!("shard {name}/{key} not found")))?;
    match &tuple[2] {
        Field::B(bytes) => decode_i64s(bytes),
        _ => Err(TaskError::new("malformed shard tuple")),
    }
}

fn rd_bytes(ctx: &TaskContext, name: &str, key: i64) -> Result<Vec<i64>, TaskError> {
    let tuple = ctx
        .tuplespace()
        .rd(&vec![Some(Field::S(name.into())), Some(Field::I(key)), None], Duration::from_secs(30))
        .ok_or_else(|| TaskError::new(format!("shared input {name} not found")))?;
    match &tuple[2] {
        Field::B(bytes) => decode_i64s(bytes),
        _ => Err(TaskError::new("malformed shared tuple")),
    }
}

/// Collector: params `[workers, n]`; assembles C from the workers' blocks.
pub struct Collector;

impl cn_core::Task for Collector {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let workers = ctx.param_i64(0).ok_or_else(|| TaskError::new("need workers"))? as usize;
        let n = ctx.param_i64(1).ok_or_else(|| TaskError::new("need n"))? as usize;
        let mut c = vec![0i64; n * n];
        for _ in 0..workers {
            let (_, data) = ctx
                .recv_tagged("cblock", Duration::from_secs(30))
                .map_err(|e| TaskError::new(e.to_string()))?;
            let payload = data.as_i64s().ok_or_else(|| TaskError::new("cblock must be I64s"))?;
            let start = payload[0] as usize;
            let block = &payload[2..];
            c[start * n..start * n + block.len()].copy_from_slice(block);
        }
        let mut out = vec![n as i64];
        out.extend_from_slice(&c);
        Ok(UserData::I64s(out))
    }
}

/// Publish the matmul archive.
pub fn publish_mm_archive(registry: &cn_core::ArchiveRegistry) {
    registry.publish(
        cn_core::TaskArchive::new(MM_JAR)
            .class(WORKER_CLASS, || Box::new(RowWorker))
            .class(JOIN_CLASS, || Box::new(Collector)),
    );
}

/// Run a distributed multiply of flat row-major `n×n` matrices.
pub fn run_matmul(
    neighborhood: &cn_core::Neighborhood,
    n: usize,
    a: &[i64],
    b: &[i64],
    workers: usize,
) -> Result<Vec<i64>, TaskError> {
    assert!(workers > 0);
    publish_mm_archive(neighborhood.registry());
    let api = cn_core::CnApi::initialize(neighborhood);
    let mut job = api
        .create_job(&cn_core::JobRequirements::default())
        .map_err(|e| TaskError::new(e.to_string()))?;
    let mut collect = cn_core::TaskSpec::new("collect", MM_JAR, JOIN_CLASS);
    collect.params.push(cn_cnx::Param::integer(workers as i64));
    collect.params.push(cn_cnx::Param::integer(n as i64));
    collect.memory_mb = 50;
    job.add_task(collect).map_err(|e| TaskError::new(e.to_string()))?;
    for i in 0..workers {
        let mut w = cn_core::TaskSpec::new(format!("mm{i}"), MM_JAR, WORKER_CLASS);
        w.params.push(cn_cnx::Param::integer(i as i64));
        w.params.push(cn_cnx::Param::integer(workers as i64));
        w.params.push(cn_cnx::Param::integer(n as i64));
        w.memory_mb = 50;
        job.add_task(w).map_err(|e| TaskError::new(e.to_string()))?;
    }
    // Scatter A row blocks, share B.
    let blocks = row_blocks(n, workers);
    for (i, range) in blocks.iter().enumerate() {
        let block = &a[range.start * n..range.end * n];
        job.tuplespace().out(vec![
            Field::S("A".into()),
            Field::I(i as i64),
            Field::B(encode_i64s(block)),
        ]);
    }
    job.tuplespace().out(vec![Field::S("B".into()), Field::I(-1), Field::B(encode_i64s(b))]);
    job.start().map_err(|e| TaskError::new(e.to_string()))?;
    let report = job.wait(Duration::from_secs(60)).map_err(|e| TaskError::new(e.to_string()))?;
    let result = report
        .result("collect")
        .and_then(|d| d.as_i64s())
        .ok_or_else(|| TaskError::new("no collector output"))?;
    Ok(result[1..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cluster::NodeSpec;
    use cn_core::Neighborhood;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sequential_identity() {
        let n = 3;
        let mut ident = vec![0i64; 9];
        for i in 0..3 {
            ident[i * 3 + i] = 1;
        }
        let a: Vec<i64> = (1..=9).collect();
        assert_eq!(matmul_sequential(n, &a, &ident), a);
        assert_eq!(matmul_sequential(n, &ident, &a), a);
    }

    #[test]
    fn sequential_known_product() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let c = matmul_sequential(2, &[1, 2, 3, 4], &[5, 6, 7, 8]);
        assert_eq!(c, vec![19, 22, 43, 50]);
    }

    #[test]
    fn distributed_matches_sequential() {
        let nb = Neighborhood::deploy(NodeSpec::fleet(2, 4000, 8));
        let n = 12;
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<i64> = (0..n * n).map(|_| rng.gen_range(-5..5)).collect();
        let b: Vec<i64> = (0..n * n).map(|_| rng.gen_range(-5..5)).collect();
        for workers in [1, 3, 5] {
            let c = run_matmul(&nb, n, &a, &b, workers).unwrap();
            assert_eq!(c, matmul_sequential(n, &a, &b), "workers={workers}");
        }
        nb.shutdown();
    }
}
