//! Distributed word count — a map/reduce-shaped workload exercising text
//! payloads and client-seeded tuple-space input shards.

use std::collections::BTreeMap;
use std::time::Duration;

use cn_core::{Field, TaskContext, TaskError, UserData};

pub const WC_JAR: &str = "wordcount.jar";
pub const MAPPER_CLASS: &str = "org.jhpc.cn2.wordcount.Mapper";
pub const REDUCER_CLASS: &str = "org.jhpc.cn2.wordcount.Reducer";

/// Count words in a text (lowercased, split on non-alphanumerics).
pub fn count_words(text: &str) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for word in text.split(|c: char| !c.is_alphanumeric()) {
        if word.is_empty() {
            continue;
        }
        *counts.entry(word.to_lowercase()).or_insert(0) += 1;
    }
    counts
}

/// Serialize counts as `word=count` lines (wire format between tasks).
pub fn encode_counts(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (w, c) in counts {
        out.push_str(w);
        out.push('=');
        out.push_str(&c.to_string());
        out.push('\n');
    }
    out
}

/// Parse the `word=count` wire format.
pub fn decode_counts(text: &str) -> Result<BTreeMap<String, u64>, TaskError> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let (w, c) =
            line.split_once('=').ok_or_else(|| TaskError::new(format!("bad line {line:?}")))?;
        let c: u64 = c.parse().map_err(|_| TaskError::new(format!("bad count in {line:?}")))?;
        *out.entry(w.to_string()).or_insert(0) += c;
    }
    Ok(out)
}

/// Mapper: param 0 is its shard id; reads `("shard", id, text)` from the
/// tuple space, counts, sends partial counts to `reduce`.
pub struct Mapper;

impl cn_core::Task for Mapper {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let shard =
            ctx.param_i64(0).ok_or_else(|| TaskError::new("Mapper needs a shard id as param 0"))?;
        let tuple = ctx
            .tuplespace()
            .take(
                &vec![Some(Field::S("shard".into())), Some(Field::I(shard)), None],
                Duration::from_secs(30),
            )
            .ok_or_else(|| TaskError::new(format!("shard {shard} not found")))?;
        let Field::S(text) = &tuple[2] else {
            return Err(TaskError::new("malformed shard tuple"));
        };
        let counts = count_words(text);
        ctx.send("reduce", "partial", UserData::Text(encode_counts(&counts)))?;
        Ok(UserData::I64s(vec![counts.values().sum::<u64>() as i64]))
    }
}

/// Reducer: param 0 is the number of partials; merges and returns the
/// `word=count` text.
pub struct Reducer;

impl cn_core::Task for Reducer {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let expect = ctx
            .param_i64(0)
            .ok_or_else(|| TaskError::new("Reducer needs the partial count as param 0"))?
            as usize;
        let mut total: BTreeMap<String, u64> = BTreeMap::new();
        for _ in 0..expect {
            let (_, data) = ctx
                .recv_tagged("partial", Duration::from_secs(30))
                .map_err(|e| TaskError::new(e.to_string()))?;
            let text = data.as_text().ok_or_else(|| TaskError::new("partial must be text"))?;
            for (w, c) in decode_counts(text)? {
                *total.entry(w).or_insert(0) += c;
            }
        }
        Ok(UserData::Text(encode_counts(&total)))
    }
}

/// Publish the word-count archive.
pub fn publish_wc_archive(registry: &cn_core::ArchiveRegistry) {
    registry.publish(
        cn_core::TaskArchive::new(WC_JAR)
            .class(MAPPER_CLASS, || Box::new(Mapper))
            .class(REDUCER_CLASS, || Box::new(Reducer)),
    );
}

/// Run a word count over `shards` text shards.
pub fn run_wordcount(
    neighborhood: &cn_core::Neighborhood,
    shards: &[&str],
) -> Result<BTreeMap<String, u64>, TaskError> {
    publish_wc_archive(neighborhood.registry());
    let api = cn_core::CnApi::initialize(neighborhood);
    let mut job = api
        .create_job(&cn_core::JobRequirements::default())
        .map_err(|e| TaskError::new(e.to_string()))?;
    let mut reduce = cn_core::TaskSpec::new("reduce", WC_JAR, REDUCER_CLASS);
    reduce.params.push(cn_cnx::Param::integer(shards.len() as i64));
    reduce.memory_mb = 50;
    job.add_task(reduce).map_err(|e| TaskError::new(e.to_string()))?;
    for i in 0..shards.len() {
        let mut m = cn_core::TaskSpec::new(format!("map{i}"), WC_JAR, MAPPER_CLASS);
        m.params.push(cn_cnx::Param::integer(i as i64));
        m.memory_mb = 50;
        job.add_task(m).map_err(|e| TaskError::new(e.to_string()))?;
    }
    for (i, text) in shards.iter().enumerate() {
        job.tuplespace().out(vec![
            Field::S("shard".into()),
            Field::I(i as i64),
            Field::S(text.to_string()),
        ]);
    }
    job.start().map_err(|e| TaskError::new(e.to_string()))?;
    let report = job.wait(Duration::from_secs(60)).map_err(|e| TaskError::new(e.to_string()))?;
    let result = report
        .result("reduce")
        .and_then(|d| d.as_text())
        .ok_or_else(|| TaskError::new("no reducer output"))?;
    decode_counts(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cluster::NodeSpec;
    use cn_core::Neighborhood;

    #[test]
    fn counting_normalizes_case_and_punctuation() {
        let counts = count_words("The task, the Task -- THE task!");
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["task"], 3);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn wire_format_roundtrip() {
        let counts = count_words("alpha beta alpha");
        let decoded = decode_counts(&encode_counts(&counts)).unwrap();
        assert_eq!(counts, decoded);
        assert!(decode_counts("garbage line").is_err());
        assert!(decode_counts("w=notanumber").is_err());
    }

    #[test]
    fn distributed_matches_local() {
        let nb = Neighborhood::deploy(NodeSpec::fleet(2, 4000, 8));
        let shards = [
            "cluster computing with the computational neighborhood",
            "the neighborhood runs tasks; tasks form jobs",
            "jobs are composed from activity diagrams",
        ];
        let distributed = run_wordcount(&nb, &shards).unwrap();
        let local = count_words(&shards.join(" "));
        assert_eq!(distributed, local);
        assert_eq!(distributed["tasks"], 2);
        assert_eq!(distributed["the"], 2);
        nb.shutdown();
    }
}
