//! Seeded graph generators for workloads and property tests.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Erdős–Rényi style weighted digraph: each ordered pair `(i, j)`, `i != j`,
/// gets an edge with probability `p` and a weight drawn uniformly from
/// `weights`. Deterministic for a given seed.
pub fn random_digraph(n: usize, p: f64, weights: Range<i64>, seed: u64) -> Matrix {
    assert!(weights.start < weights.end, "empty weight range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::disconnected(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(p.clamp(0.0, 1.0)) {
                m.set(i, j, rng.gen_range(weights.clone()));
            }
        }
    }
    m
}

/// A directed ring `0 -> 1 -> ... -> n-1 -> 0` with uniform weight.
pub fn ring_graph(n: usize, weight: i64) -> Matrix {
    let mut m = Matrix::disconnected(n);
    for i in 0..n {
        m.set(i, (i + 1) % n, weight);
    }
    m
}

/// A layered DAG: `layers` layers of `width` nodes; every node has edges to
/// every node in the next layer with weight 1. Good for reachability tests.
pub fn layered_dag(layers: usize, width: usize) -> Matrix {
    let n = layers * width;
    let mut m = Matrix::disconnected(n);
    for l in 0..layers.saturating_sub(1) {
        for a in 0..width {
            for b in 0..width {
                m.set(l * width + a, (l + 1) * width + b, 1);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::INF;

    #[test]
    fn random_digraph_is_deterministic() {
        let a = random_digraph(20, 0.3, 1..10, 42);
        let b = random_digraph(20, 0.3, 1..10, 42);
        assert_eq!(a, b);
        let c = random_digraph(20, 0.3, 1..10, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_digraph_respects_weight_range() {
        let m = random_digraph(30, 0.5, 5..8, 1);
        for i in 0..30 {
            for j in 0..30 {
                let v = m.get(i, j);
                if i == j {
                    assert_eq!(v, 0);
                } else {
                    assert!(v == INF || (5..8).contains(&v), "weight {v}");
                }
            }
        }
    }

    #[test]
    fn density_extremes() {
        let empty = random_digraph(10, 0.0, 1..2, 7);
        assert_eq!(empty, Matrix::disconnected(10));
        let full = random_digraph(10, 1.0, 1..2, 7);
        for i in 0..10 {
            for j in 0..10 {
                if i != j {
                    assert_eq!(full.get(i, j), 1);
                }
            }
        }
    }

    #[test]
    fn ring_shape() {
        let m = ring_graph(4, 3);
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(3, 0), 3);
        assert_eq!(m.get(0, 2), INF);
    }

    #[test]
    fn layered_dag_shape() {
        let m = layered_dag(3, 2); // nodes 0..6
        assert_eq!(m.get(0, 2), 1);
        assert_eq!(m.get(0, 3), 1);
        assert_eq!(m.get(2, 4), 1);
        assert_eq!(m.get(0, 4), INF); // not direct
        assert_eq!(m.get(4, 0), INF); // no back edges
    }
}
