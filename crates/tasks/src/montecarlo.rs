//! Monte-Carlo π estimation — a second domain workload: embarrassingly
//! parallel sampling with a trivial reduction, the shape the paper's intro
//! motivates ("scientific and other applications that lend themselves to
//! parallel computing").

use std::time::Duration;

use cn_core::{TaskContext, TaskError, UserData};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub const PI_JAR: &str = "montecarlo.jar";
pub const SAMPLER_CLASS: &str = "org.jhpc.cn2.montecarlo.Sampler";
pub const REDUCER_CLASS: &str = "org.jhpc.cn2.montecarlo.Reducer";

/// A sampler: params are `[samples, seed]`; counts points inside the unit
/// quarter-circle and reports `(hits, samples)` to the reducer (named by
/// convention `reduce`).
pub struct Sampler;

impl cn_core::Task for Sampler {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let samples = ctx
            .param_i64(0)
            .ok_or_else(|| TaskError::new("Sampler needs sample count as param 0"))?
            as u64;
        let seed =
            ctx.param_i64(1).ok_or_else(|| TaskError::new("Sampler needs a seed as param 1"))?
                as u64;
        let hits = count_hits(samples, seed);
        ctx.send("reduce", "partial", UserData::I64s(vec![hits as i64, samples as i64]))?;
        Ok(UserData::I64s(vec![hits as i64]))
    }
}

/// Pure sampling kernel (used directly by the sequential baseline).
pub fn count_hits(samples: u64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..samples {
        let x: f64 = rng.gen();
        let y: f64 = rng.gen();
        if x * x + y * y <= 1.0 {
            hits += 1;
        }
    }
    hits
}

/// The reducer: param 0 is the number of partials to expect; returns the π
/// estimate as an `F64s` payload `[pi, hits, samples]`.
pub struct Reducer;

impl cn_core::Task for Reducer {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let expect = ctx
            .param_i64(0)
            .ok_or_else(|| TaskError::new("Reducer needs the partial count as param 0"))?
            as usize;
        let mut hits = 0i64;
        let mut samples = 0i64;
        for _ in 0..expect {
            let (_, data) = ctx
                .recv_tagged("partial", Duration::from_secs(30))
                .map_err(|e| TaskError::new(e.to_string()))?;
            let v = data.as_i64s().ok_or_else(|| TaskError::new("partial must be I64s"))?;
            hits += v[0];
            samples += v[1];
        }
        let pi = if samples == 0 { 0.0 } else { 4.0 * hits as f64 / samples as f64 };
        Ok(UserData::F64s(vec![pi, hits as f64, samples as f64]))
    }
}

/// Publish the Monte-Carlo archive.
pub fn publish_pi_archive(registry: &cn_core::ArchiveRegistry) {
    registry.publish(
        cn_core::TaskArchive::new(PI_JAR)
            .class(SAMPLER_CLASS, || Box::new(Sampler))
            .class(REDUCER_CLASS, || Box::new(Reducer)),
    );
}

/// Run a π estimation job: `workers` samplers of `samples_each`, one
/// reducer. Returns the estimate.
pub fn run_pi(
    neighborhood: &cn_core::Neighborhood,
    workers: usize,
    samples_each: u64,
    seed: u64,
) -> Result<f64, TaskError> {
    publish_pi_archive(neighborhood.registry());
    let api = cn_core::CnApi::initialize(neighborhood);
    let mut job = api
        .create_job(&cn_core::JobRequirements::default())
        .map_err(|e| TaskError::new(e.to_string()))?;
    let mut reduce = cn_core::TaskSpec::new("reduce", PI_JAR, REDUCER_CLASS);
    reduce.params.push(cn_cnx::Param::integer(workers as i64));
    reduce.memory_mb = 50;
    job.add_task(reduce).map_err(|e| TaskError::new(e.to_string()))?;
    for i in 0..workers {
        let mut s = cn_core::TaskSpec::new(format!("sample{i}"), PI_JAR, SAMPLER_CLASS);
        s.params.push(cn_cnx::Param::integer(samples_each as i64));
        s.params.push(cn_cnx::Param::integer((seed + i as u64) as i64));
        s.memory_mb = 50;
        job.add_task(s).map_err(|e| TaskError::new(e.to_string()))?;
    }
    job.start().map_err(|e| TaskError::new(e.to_string()))?;
    let report = job.wait(Duration::from_secs(60)).map_err(|e| TaskError::new(e.to_string()))?;
    match report.result("reduce") {
        Some(UserData::F64s(v)) if !v.is_empty() => Ok(v[0]),
        other => Err(TaskError::new(format!("unexpected reducer result {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cluster::NodeSpec;
    use cn_core::Neighborhood;

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(count_hits(10_000, 42), count_hits(10_000, 42));
        assert_ne!(count_hits(10_000, 42), count_hits(10_000, 43));
    }

    #[test]
    fn hit_rate_is_plausible() {
        let hits = count_hits(100_000, 7);
        let ratio = hits as f64 / 100_000.0;
        assert!((0.76..0.81).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn distributed_pi_is_close() {
        let nb = Neighborhood::deploy(NodeSpec::fleet(3, 4000, 8));
        let pi = run_pi(&nb, 4, 50_000, 99).unwrap();
        assert!((pi - std::f64::consts::PI).abs() < 0.05, "pi estimate {pi}");
        nb.shutdown();
    }

    #[test]
    fn distributed_matches_local_reduction() {
        let nb = Neighborhood::deploy(NodeSpec::fleet(2, 4000, 8));
        let workers = 3;
        let samples = 20_000u64;
        let seed = 5u64;
        let pi = run_pi(&nb, workers, samples, seed).unwrap();
        let hits: u64 = (0..workers as u64).map(|i| count_hits(samples, seed + i)).sum();
        let expect = 4.0 * hits as f64 / (samples * workers as u64) as f64;
        assert!((pi - expect).abs() < 1e-12);
        nb.shutdown();
    }
}
