//! Square distance matrices and their wire encoding.
//!
//! The transitive-closure tasks ship rows and whole matrices through CN
//! user messages; the encoding is a flat `i64` vector `[n, row-major
//! entries...]` with [`INF`] as the "no edge" sentinel (kept far from
//! `i64::MAX` so additions cannot overflow).

use crate::TaskError;
use cn_core::UserData;

/// "No path" sentinel. `INF + INF` still fits in an `i64`.
pub const INF: i64 = i64::MAX / 4;

/// A dense square matrix of path lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    n: usize,
    data: Vec<i64>,
}

impl Matrix {
    /// A matrix with no edges: zero diagonal, [`INF`] elsewhere.
    pub fn disconnected(n: usize) -> Matrix {
        let mut m = Matrix { n, data: vec![INF; n * n] };
        for i in 0..n {
            m.set(i, i, 0);
        }
        m
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: Vec<i64>) -> Matrix {
        assert_eq!(data.len(), n * n, "matrix data must be n*n");
        Matrix { n, data }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i64 {
        self.data[i * self.n + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: i64) {
        self.data[i * self.n + j] = v;
    }

    pub fn row(&self, i: usize) -> &[i64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    pub fn rows(&self) -> &[i64] {
        &self.data
    }

    /// Crate-internal: mutable access to the backing storage (used by the
    /// parallel baseline to split into disjoint row blocks).
    pub(crate) fn data_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Copy rows `range` out as a flat vector.
    pub fn rows_slice(&self, range: std::ops::Range<usize>) -> Vec<i64> {
        self.data[range.start * self.n..range.end * self.n].to_vec()
    }

    /// Overwrite rows starting at `first_row` with `rows` (flat, row-major).
    pub fn put_rows(&mut self, first_row: usize, rows: &[i64]) {
        let start = first_row * self.n;
        self.data[start..start + rows.len()].copy_from_slice(rows);
    }

    /// Encode as a user message payload: `[n, entries...]`.
    pub fn to_userdata(&self) -> UserData {
        let mut v = Vec::with_capacity(self.data.len() + 1);
        v.push(self.n as i64);
        v.extend_from_slice(&self.data);
        UserData::I64s(v)
    }

    /// Decode from a user message payload.
    pub fn from_userdata(data: &UserData) -> Result<Matrix, TaskError> {
        let v = data.as_i64s().ok_or_else(|| TaskError::new("matrix payload must be I64s"))?;
        let n = *v.first().ok_or_else(|| TaskError::new("empty matrix payload"))? as usize;
        if v.len() != n * n + 1 {
            return Err(TaskError::new(format!(
                "matrix payload length {} does not match n={n}",
                v.len()
            )));
        }
        Ok(Matrix { n, data: v[1..].to_vec() })
    }

    /// The boolean reachability view (for transitive-closure assertions).
    pub fn reachable(&self, i: usize, j: usize) -> bool {
        self.get(i, j) < INF
    }
}

/// Render small matrices for debugging ("INF" for the sentinel).
impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                let v = self.get(i, j);
                if v >= INF {
                    write!(f, "INF")?;
                } else {
                    write!(f, "{v}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Split `n` rows into `parts` contiguous blocks, sized as evenly as
/// possible (the paper's "one or more adjacent rows" decomposition).
pub fn row_blocks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "need at least one part");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::disconnected(3);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(0, 1), INF);
        m.set(0, 1, 5);
        assert_eq!(m.get(0, 1), 5);
        assert_eq!(m.row(0), &[0, 5, INF]);
        assert!(m.reachable(0, 1));
        assert!(!m.reachable(1, 0));
    }

    #[test]
    fn userdata_roundtrip() {
        let mut m = Matrix::disconnected(4);
        m.set(1, 2, 7);
        let encoded = m.to_userdata();
        let back = Matrix::from_userdata(&encoded).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn userdata_rejects_malformed() {
        assert!(Matrix::from_userdata(&UserData::Text("no".into())).is_err());
        assert!(Matrix::from_userdata(&UserData::I64s(vec![])).is_err());
        assert!(Matrix::from_userdata(&UserData::I64s(vec![3, 1, 2])).is_err());
    }

    #[test]
    fn rows_slice_and_put_rows() {
        let mut m = Matrix::from_rows(3, (0..9).collect());
        let rows = m.rows_slice(1..3);
        assert_eq!(rows, vec![3, 4, 5, 6, 7, 8]);
        m.put_rows(0, &[9, 9, 9]);
        assert_eq!(m.row(0), &[9, 9, 9]);
    }

    #[test]
    fn row_blocks_even_and_uneven() {
        assert_eq!(row_blocks(6, 3), vec![0..2, 2..4, 4..6]);
        assert_eq!(row_blocks(7, 3), vec![0..3, 3..5, 5..7]);
        assert_eq!(row_blocks(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
        let blocks = row_blocks(100, 7);
        assert_eq!(blocks.iter().map(|r| r.len()).sum::<usize>(), 100);
        assert_eq!(blocks.last().unwrap().end, 100);
    }

    #[test]
    fn inf_is_addition_safe() {
        assert!(INF.checked_add(INF).is_some());
    }

    #[test]
    fn display_renders_inf() {
        let m = Matrix::disconnected(2);
        let s = m.to_string();
        assert!(s.contains("0 INF"));
    }
}
