//! Floyd's all-pairs shortest-path algorithm (the paper's guiding example,
//! citing Floyd's Algorithm 97): a sequential baseline and a shared-memory
//! parallel baseline, both used to validate and benchmark the CN
//! message-passing implementation.

use std::sync::Barrier;

use crate::matrix::{Matrix, INF};

/// Sequential Floyd–Warshall. `O(n^3)`.
pub fn floyd_sequential(input: &Matrix) -> Matrix {
    let n = input.n();
    let mut m = input.clone();
    for k in 0..n {
        for i in 0..n {
            let dik = m.get(i, k);
            if dik >= INF {
                continue;
            }
            for j in 0..n {
                let through_k = dik + m.get(k, j);
                if through_k < m.get(i, j) {
                    m.set(i, j, through_k);
                }
            }
        }
    }
    m
}

/// Shared-memory parallel Floyd–Warshall with row-wise decomposition:
/// `threads` workers each own a contiguous row block; a barrier per `k`
/// stands in for the k-th-row broadcast of the message-passing version.
pub fn floyd_parallel(input: &Matrix, threads: usize) -> Matrix {
    assert!(threads > 0);
    let n = input.n();
    if n == 0 || threads == 1 {
        return floyd_sequential(input);
    }
    let threads = threads.min(n);
    let blocks = crate::matrix::row_blocks(n, threads);
    let mut m = input.clone();
    let barrier = Barrier::new(threads);

    // SAFETY-free approach: split the matrix into disjoint row blocks and
    // share a read-only snapshot of row k per iteration. We implement this
    // with scoped threads over raw chunks: each worker owns its block;
    // row k is copied out by its owner before the barrier releases readers.
    let row_len = n;
    let chunks = split_blocks(m.data_mut(), &blocks, row_len);
    let k_row = parking_lot::RwLock::new(vec![0i64; n]);

    std::thread::scope(|scope| {
        for (range, chunk) in blocks.iter().cloned().zip(chunks) {
            let barrier = &barrier;
            let k_row = &k_row;
            scope.spawn(move || {
                for k in 0..n {
                    // The owner of row k publishes it.
                    if range.contains(&k) {
                        let local_k = k - range.start;
                        let row = &chunk[local_k * row_len..(local_k + 1) * row_len];
                        k_row.write().copy_from_slice(row);
                    }
                    barrier.wait();
                    {
                        let krow = k_row.read();
                        for (local_i, _) in range.clone().enumerate() {
                            let row = &mut chunk[local_i * row_len..(local_i + 1) * row_len];
                            let dik = row[k];
                            if dik < INF {
                                for j in 0..row_len {
                                    let through_k = dik + krow[j];
                                    if through_k < row[j] {
                                        row[j] = through_k;
                                    }
                                }
                            }
                        }
                    }
                    // Nobody may overwrite k_row until all readers finish.
                    barrier.wait();
                }
            });
        }
    });
    m
}

/// Split a flat matrix buffer into disjoint mutable row-block chunks.
fn split_blocks<'a>(
    mut data: &'a mut [i64],
    blocks: &[std::ops::Range<usize>],
    row_len: usize,
) -> Vec<&'a mut [i64]> {
    let mut out = Vec::with_capacity(blocks.len());
    for range in blocks {
        let take = range.len() * row_len;
        let (head, tail) = data.split_at_mut(take);
        out.push(head);
        data = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{random_digraph, ring_graph};

    #[test]
    fn tiny_known_answer() {
        // 0 -> 1 (3), 1 -> 2 (4), 0 -> 2 (10): shortest 0->2 is 7.
        let mut m = Matrix::disconnected(3);
        m.set(0, 1, 3);
        m.set(1, 2, 4);
        m.set(0, 2, 10);
        let s = floyd_sequential(&m);
        assert_eq!(s.get(0, 2), 7);
        assert_eq!(s.get(0, 1), 3);
        assert_eq!(s.get(2, 0), INF);
    }

    #[test]
    fn ring_distances() {
        // Directed ring of 5 nodes, weight 1: dist(i, j) = (j - i) mod 5.
        let m = ring_graph(5, 1);
        let s = floyd_sequential(&m);
        for i in 0..5 {
            for j in 0..5 {
                let expect = ((j + 5 - i) % 5) as i64;
                assert_eq!(s.get(i, j), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let g = random_digraph(48, 0.15, 1..20, seed);
            let seq = floyd_sequential(&g);
            for threads in [2, 3, 4, 7] {
                let par = floyd_parallel(&g, threads);
                assert_eq!(par, seq, "threads={threads} seed={seed}");
            }
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let g = random_digraph(5, 0.5, 1..5, 9);
        assert_eq!(floyd_parallel(&g, 16), floyd_sequential(&g));
    }

    #[test]
    fn single_thread_falls_back() {
        let g = random_digraph(10, 0.3, 1..5, 4);
        assert_eq!(floyd_parallel(&g, 1), floyd_sequential(&g));
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::disconnected(0);
        assert_eq!(floyd_sequential(&m).n(), 0);
        assert_eq!(floyd_parallel(&m, 4).n(), 0);
    }

    #[test]
    fn negative_free_of_overflow_near_inf() {
        // Two INF entries must not wrap on addition.
        let mut m = Matrix::disconnected(2);
        m.set(0, 1, INF - 1);
        let s = floyd_sequential(&m);
        assert!(s.get(0, 1) >= INF - 1);
    }
}
