//! The CN task library.
//!
//! The centerpiece is the paper's guiding example ([`transclosure`]):
//! parallel Floyd all-pairs shortest path with row-wise decomposition,
//! implemented as the three CN tasks of Section 2 — `TaskSplit`, `TCTask`
//! (workers, coordinating over the CN API; a tuple-space variant included)
//! and `TCJoin` — packaged under the paper's jar names (`tasksplit.jar`,
//! `tctask.jar`, `taskjoin.jar`).
//!
//! Alongside it: sequential and shared-memory [`floyd`] baselines, seeded
//! [`graphgen`] workload generators, and two further domain workloads the
//! examples and benches use — [`montecarlo`] π estimation and distributed
//! [`wordcount`] and [`matmul`].

pub mod floyd;
pub mod graphgen;
pub mod matmul;
pub mod matrix;
pub mod montecarlo;
pub mod transclosure;
pub mod wordcount;

pub use cn_core::TaskError;
pub use floyd::{floyd_parallel, floyd_sequential};
pub use graphgen::{layered_dag, random_digraph, ring_graph};
pub use matrix::{row_blocks, Matrix, INF};
pub use transclosure::{publish_tc_archives, run_transitive_closure, seed_input, TcOptions};

/// Publish every archive in this library (transitive closure, Monte-Carlo,
/// word count, matmul) into a registry — used by the examples and the
/// pipeline so generated clients find their classes.
pub fn publish_all_archives(registry: &cn_core::ArchiveRegistry) {
    transclosure::publish_tc_archives(registry);
    montecarlo::publish_pi_archive(registry);
    wordcount::publish_wc_archive(registry);
    matmul::publish_mm_archive(registry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_all_registers_every_jar() {
        let reg = cn_core::ArchiveRegistry::new();
        publish_all_archives(&reg);
        for jar in [
            "tasksplit.jar",
            "tctask.jar",
            "taskjoin.jar",
            "montecarlo.jar",
            "wordcount.jar",
            "matmul.jar",
        ] {
            assert!(reg.contains(jar), "{jar} missing");
        }
    }
}
