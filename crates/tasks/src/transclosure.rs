//! The paper's guiding example: parallel Floyd transitive closure on CN.
//!
//! "The CN implementation of the transitive closure algorithm consists of
//! three different tasks. The first task, TaskSplit, reads the input and
//! initializes the worker tasks, TCTask, with the appropriate rows. Each of
//! the TCTask workers keeps track of k, and the tasks coordinate among
//! themselves using the CNAPI for intertask communication. ... The collation
//! of the results is done by yet another task named TCJoin." (Section 2)
//!
//! Protocol (all over CN user messages, except the input file which the
//! client deposits in the job's tuple space — our stand-in for
//! `matrix.txt` on a shared filesystem):
//!
//! 1. client seeds the tuple space: `("plan", joiner, workers_csv)` and
//!    `("input", <filename>, <matrix bytes>)`.
//! 2. `TaskSplit` takes both, splits rows into contiguous blocks, sends each
//!    worker an `init` (text plan) + `rows` (its block) message, and tells
//!    the joiner how many results to expect.
//! 3. each `TCTask` iterates k = 0..n; the owner of row k sends it to every
//!    other worker (`krow:<k>`), everyone relaxes its rows against row k.
//! 4. workers send their final blocks to `TCJoin`, which assembles the
//!    result matrix and returns it as its task result.
//!
//! A tuple-space worker variant (`TCTaskTS`) exchanges row k through the
//! tuple space instead of messages — the coordination-medium ablation.

use std::time::Duration;

use cn_core::{Field, TaskContext, TaskError, UserData};

use crate::matrix::{row_blocks, Matrix};

/// Paper jar/class names (Figure 2).
pub const SPLIT_JAR: &str = "tasksplit.jar";
pub const SPLIT_CLASS: &str = "org.jhpc.cn2.transcloser.TaskSplit";
pub const WORKER_JAR: &str = "tctask.jar";
pub const WORKER_CLASS: &str = "org.jhpc.cn2.trnsclsrtask.TCTask";
pub const WORKER_TS_CLASS: &str = "org.jhpc.cn2.trnsclsrtask.TCTaskTS";
pub const JOIN_JAR: &str = "taskjoin.jar";
pub const JOIN_CLASS: &str = "org.jhpc.cn2.transcloser.TaskJoin";

const RECV_TIMEOUT: Duration = Duration::from_secs(30);

fn recv_err(e: cn_core::RecvError) -> TaskError {
    TaskError::new(e.to_string())
}

/// Encode `i64`s as little-endian bytes (tuple-space payloads).
pub fn encode_i64s(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes back into `i64`s.
pub fn decode_i64s(bytes: &[u8]) -> Result<Vec<i64>, TaskError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(TaskError::new("byte payload length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// Seed a job's tuple space with the composition plan and the input matrix
/// — what the generated client program does before starting the tasks.
///
/// Goes through [`cn_core::JobHandle::seed_tuple`] so the same call works
/// on a shared-memory fabric (direct space write) and over the wire (the
/// tuples travel to the JobManager and are relayed to every TaskManager).
pub fn seed_input(
    job: &cn_core::JobHandle,
    filename: &str,
    matrix: &Matrix,
    workers: &[String],
    joiner: &str,
) -> Result<(), cn_core::ClientError> {
    job.seed_tuple(vec![
        Field::S("plan".into()),
        Field::S(joiner.to_string()),
        Field::S(workers.join(",")),
    ])?;
    let mut payload = vec![matrix.n() as i64];
    payload.extend_from_slice(matrix.rows());
    job.seed_tuple(vec![
        Field::S("input".into()),
        Field::S(filename.to_string()),
        Field::B(encode_i64s(&payload)),
    ])
}

/// `TaskSplit`: read the input, initialize the workers with their rows.
pub struct TaskSplit;

impl cn_core::Task for TaskSplit {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let filename = ctx
            .param_str(0)
            .ok_or_else(|| TaskError::new("TaskSplit needs the input file name as param 0"))?
            .to_string();

        // "Reads the input" — from the simulated shared filesystem.
        let plan = ctx
            .tuplespace()
            .take(&vec![Some(Field::S("plan".into())), None, None], RECV_TIMEOUT)
            .ok_or_else(|| TaskError::new("no composition plan in the tuple space"))?;
        let (joiner, workers_csv) = match (&plan[1], &plan[2]) {
            (Field::S(j), Field::S(w)) => (j.clone(), w.clone()),
            _ => return Err(TaskError::new("malformed plan tuple")),
        };
        let workers: Vec<String> =
            workers_csv.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect();
        if workers.is_empty() {
            return Err(TaskError::new("plan lists no workers"));
        }
        let input = ctx
            .tuplespace()
            .take(
                &vec![Some(Field::S("input".into())), Some(Field::S(filename.clone())), None],
                RECV_TIMEOUT,
            )
            .ok_or_else(|| TaskError::new(format!("input file {filename:?} not found")))?;
        let Field::B(bytes) = &input[2] else {
            return Err(TaskError::new("malformed input tuple"));
        };
        let payload = decode_i64s(bytes)?;
        let n = *payload.first().ok_or_else(|| TaskError::new("empty input matrix"))? as usize;
        let matrix = Matrix::from_userdata(&UserData::I64s(payload))?;

        // Row-wise decomposition; worker i gets block i.
        let blocks = row_blocks(n, workers.len());
        for (i, (worker, range)) in workers.iter().zip(&blocks).enumerate() {
            let init = format!(
                "index={i};n={n};start={};end={};joiner={joiner};workers={workers_csv}",
                range.start, range.end
            );
            ctx.send(worker, "init", UserData::Text(init))?;
            let mut rows = vec![range.start as i64, range.end as i64];
            rows.extend(matrix.rows_slice(range.clone()));
            ctx.send(worker, "rows", UserData::I64s(rows))?;
        }
        ctx.send(&joiner, "expect", UserData::Text(format!("n={n};count={}", workers.len())))?;
        Ok(UserData::Text(format!("split {n} rows into {} blocks", workers.len())))
    }
}

/// Parse `key=value;key=value` init strings.
fn plan_field<'a>(init: &'a str, key: &str) -> Result<&'a str, TaskError> {
    init.split(';')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| TaskError::new(format!("init message missing {key:?}")))
}

/// Worker state decoded from the init/rows handshake.
struct WorkerSetup {
    index: usize,
    n: usize,
    start: usize,
    end: usize,
    joiner: String,
    workers: Vec<String>,
    blocks: Vec<std::ops::Range<usize>>,
    /// This worker's rows, flat row-major.
    rows: Vec<i64>,
}

fn worker_setup(ctx: &mut TaskContext) -> Result<WorkerSetup, TaskError> {
    let (_, init) = ctx.recv_tagged("init", RECV_TIMEOUT).map_err(recv_err)?;
    let init = init.as_text().ok_or_else(|| TaskError::new("init must be text"))?.to_string();
    let index: usize =
        plan_field(&init, "index")?.parse().map_err(|_| TaskError::new("bad index"))?;
    let n: usize = plan_field(&init, "n")?.parse().map_err(|_| TaskError::new("bad n"))?;
    let start: usize =
        plan_field(&init, "start")?.parse().map_err(|_| TaskError::new("bad start"))?;
    let end: usize = plan_field(&init, "end")?.parse().map_err(|_| TaskError::new("bad end"))?;
    let joiner = plan_field(&init, "joiner")?.to_string();
    let workers: Vec<String> = plan_field(&init, "workers")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let (_, rows_msg) = ctx.recv_tagged("rows", RECV_TIMEOUT).map_err(recv_err)?;
    let rows_payload = rows_msg.as_i64s().ok_or_else(|| TaskError::new("rows must be I64s"))?;
    if rows_payload.len() < 2 {
        return Err(TaskError::new("rows message too short"));
    }
    let rows = rows_payload[2..].to_vec();
    if rows.len() != (end - start) * n {
        return Err(TaskError::new("rows payload size mismatch"));
    }
    let blocks = row_blocks(n, workers.len());
    Ok(WorkerSetup { index, n, start, end, joiner, workers, blocks, rows })
}

/// Which worker owns global row `k`.
fn owner_of(blocks: &[std::ops::Range<usize>], k: usize) -> usize {
    blocks.iter().position(|r| r.contains(&k)).expect("every row is in exactly one block")
}

/// Relax this worker's rows against row k.
fn relax(rows: &mut [i64], n: usize, k: usize, krow: &[i64]) {
    for row in rows.chunks_exact_mut(n) {
        let dik = row[k];
        if dik < crate::matrix::INF {
            for (j, &kj) in krow.iter().enumerate() {
                let through_k = dik + kj;
                if through_k < row[j] {
                    row[j] = through_k;
                }
            }
        }
    }
}

fn finish(ctx: &mut TaskContext, setup: &WorkerSetup) -> Result<UserData, TaskError> {
    let mut result = vec![setup.start as i64, setup.end as i64];
    result.extend_from_slice(&setup.rows);
    ctx.send(&setup.joiner, "result", UserData::I64s(result))?;
    Ok(UserData::Text(format!(
        "worker {} processed rows {}..{}",
        setup.index, setup.start, setup.end
    )))
}

/// `TCTask`: a worker that owns a block of adjacent rows and, "in the kth
/// step", obtains row k (sending it to the others when it is the owner) and
/// relaxes its rows.
pub struct TCTask;

impl cn_core::Task for TCTask {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let mut setup = worker_setup(ctx)?;
        let n = setup.n;
        for k in 0..n {
            let owner = owner_of(&setup.blocks, k);
            let tag = format!("krow:{k}");
            let krow: Vec<i64> = if owner == setup.index {
                let local = k - setup.start;
                let row = setup.rows[local * n..(local + 1) * n].to_vec();
                for (w, peer) in setup.workers.iter().enumerate() {
                    if w != setup.index {
                        ctx.send(peer, &tag, UserData::I64s(row.clone()))?;
                    }
                }
                row
            } else {
                let (_, data) = ctx.recv_tagged(&tag, RECV_TIMEOUT).map_err(recv_err)?;
                data.as_i64s().ok_or_else(|| TaskError::new("krow must be I64s"))?.to_vec()
            };
            relax(&mut setup.rows, n, k, &krow);
        }
        finish(ctx, &setup)
    }
}

/// `TCTaskTS`: the tuple-space coordination variant. The owner of row k
/// deposits `("krow", k, bytes)` once; everyone else reads it.
pub struct TCTaskTS;

impl cn_core::Task for TCTaskTS {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let mut setup = worker_setup(ctx)?;
        let n = setup.n;
        for k in 0..n {
            let owner = owner_of(&setup.blocks, k);
            let krow: Vec<i64> = if owner == setup.index {
                let local = k - setup.start;
                let row = setup.rows[local * n..(local + 1) * n].to_vec();
                ctx.tuplespace().out(vec![
                    Field::S("krow".into()),
                    Field::I(k as i64),
                    Field::B(encode_i64s(&row)),
                ]);
                row
            } else {
                let tuple = ctx
                    .tuplespace()
                    .rd(
                        &vec![Some(Field::S("krow".into())), Some(Field::I(k as i64)), None],
                        RECV_TIMEOUT,
                    )
                    .ok_or_else(|| TaskError::new(format!("row {k} never appeared")))?;
                let Field::B(bytes) = &tuple[2] else {
                    return Err(TaskError::new("malformed krow tuple"));
                };
                decode_i64s(bytes)?
            };
            relax(&mut setup.rows, n, k, &krow);
        }
        finish(ctx, &setup)
    }
}

/// `TCJoin`: collate the workers' row blocks into the result matrix.
pub struct TCJoin;

impl cn_core::Task for TCJoin {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        let (_, expect) = ctx.recv_tagged("expect", RECV_TIMEOUT).map_err(recv_err)?;
        let expect = expect.as_text().ok_or_else(|| TaskError::new("expect must be text"))?;
        let n: usize = plan_field(expect, "n")?.parse().map_err(|_| TaskError::new("bad n"))?;
        let count: usize =
            plan_field(expect, "count")?.parse().map_err(|_| TaskError::new("bad count"))?;
        let mut matrix = Matrix::disconnected(n);
        for _ in 0..count {
            let (_, data) = ctx.recv_tagged("result", RECV_TIMEOUT).map_err(recv_err)?;
            let payload = data.as_i64s().ok_or_else(|| TaskError::new("result must be I64s"))?;
            if payload.len() < 2 {
                return Err(TaskError::new("result message too short"));
            }
            let start = payload[0] as usize;
            matrix.put_rows(start, &payload[2..]);
        }
        Ok(matrix.to_userdata())
    }
}

/// Publish the three transitive-closure archives under the paper's jar
/// names (Figure 2), including the tuple-space worker variant.
pub fn publish_tc_archives(registry: &cn_core::ArchiveRegistry) {
    registry
        .publish(cn_core::TaskArchive::new(SPLIT_JAR).class(SPLIT_CLASS, || Box::new(TaskSplit)));
    registry.publish(
        cn_core::TaskArchive::new(WORKER_JAR)
            .class(WORKER_CLASS, || Box::new(TCTask))
            .class(WORKER_TS_CLASS, || Box::new(TCTaskTS)),
    );
    registry.publish(cn_core::TaskArchive::new(JOIN_JAR).class(JOIN_CLASS, || Box::new(TCJoin)));
}

/// Options for a transitive-closure run.
#[derive(Debug, Clone)]
pub struct TcOptions {
    pub workers: usize,
    /// Use the tuple-space worker variant instead of message passing.
    pub tuplespace_workers: bool,
    pub timeout: Duration,
}

impl TcOptions {
    pub fn new(workers: usize) -> Self {
        TcOptions { workers, tuplespace_workers: false, timeout: Duration::from_secs(60) }
    }
}

/// Drive a full transitive-closure job over a deployed neighborhood: build
/// the Figure 2 composition, seed the input, run, and return the
/// all-pairs-shortest-path matrix. This is exactly the call sequence the
/// generated client performs.
pub fn run_transitive_closure(
    neighborhood: &cn_core::Neighborhood,
    input: &Matrix,
    options: &TcOptions,
) -> Result<Matrix, TaskError> {
    assert!(options.workers > 0, "need at least one worker");
    let rec = neighborhood.recorder().clone();
    rec.event_with(cn_cluster::Severity::Info, "client", None, || {
        format!(
            "transitive closure: n={} workers={} variant={}",
            input.n(),
            options.workers,
            if options.tuplespace_workers { "tuplespace" } else { "messages" }
        )
    });
    publish_tc_archives(neighborhood.registry());
    let api = cn_core::CnApi::initialize(neighborhood);
    let mut job = api
        .create_job(&cn_core::JobRequirements::default())
        .map_err(|e| TaskError::new(e.to_string()))?;

    let worker_class = if options.tuplespace_workers { WORKER_TS_CLASS } else { WORKER_CLASS };
    let worker_names: Vec<String> = (1..=options.workers).map(|i| format!("tctask{i}")).collect();

    let mut split = cn_core::TaskSpec::new("tctask0", SPLIT_JAR, SPLIT_CLASS);
    split.params.push(cn_cnx::Param::string("matrix.txt"));
    split.memory_mb = 100;
    job.add_task(split).map_err(|e| TaskError::new(e.to_string()))?;
    for (i, name) in worker_names.iter().enumerate() {
        let mut w = cn_core::TaskSpec::new(name.clone(), WORKER_JAR, worker_class);
        w.depends = vec!["tctask0".to_string()];
        w.params.push(cn_cnx::Param::integer(i as i64 + 1));
        w.memory_mb = 100;
        job.add_task(w).map_err(|e| TaskError::new(e.to_string()))?;
    }
    let mut join = cn_core::TaskSpec::new("tctask999", JOIN_JAR, JOIN_CLASS);
    join.depends = worker_names.clone();
    join.params.push(cn_cnx::Param::string("matrix.txt"));
    join.memory_mb = 100;
    job.add_task(join).map_err(|e| TaskError::new(e.to_string()))?;

    // Seeding is part of the composition: record it as its own span nested
    // in the job span so traces show setup time apart from execution.
    let seed_span =
        job.span().and_then(|parent| rec.span_start("client", "seed-input", Some(parent)));
    seed_input(&job, "matrix.txt", input, &worker_names, "tctask999")
        .map_err(|e| TaskError::new(e.to_string()))?;
    rec.span_end(seed_span);
    job.start().map_err(|e| TaskError::new(e.to_string()))?;
    let report = job.wait(options.timeout).map_err(|e| TaskError::new(e.to_string()))?;
    let result =
        report.result("tctask999").ok_or_else(|| TaskError::new("joiner produced no result"))?;
    Matrix::from_userdata(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floyd::floyd_sequential;
    use crate::graphgen::{random_digraph, ring_graph};
    use cn_cluster::NodeSpec;
    use cn_core::Neighborhood;

    fn nb(nodes: usize) -> Neighborhood {
        Neighborhood::deploy(NodeSpec::fleet(nodes, 8000, 16))
    }

    #[test]
    fn tc_matches_sequential_floyd() {
        let neighborhood = nb(3);
        let g = random_digraph(24, 0.2, 1..10, 11);
        let result = run_transitive_closure(&neighborhood, &g, &TcOptions::new(4)).unwrap();
        assert_eq!(result, floyd_sequential(&g));
        neighborhood.shutdown();
    }

    #[test]
    fn tc_single_worker() {
        let neighborhood = nb(1);
        let g = ring_graph(10, 2);
        let result = run_transitive_closure(&neighborhood, &g, &TcOptions::new(1)).unwrap();
        assert_eq!(result, floyd_sequential(&g));
        neighborhood.shutdown();
    }

    #[test]
    fn tc_five_workers_like_figure2() {
        let neighborhood = nb(3);
        let g = random_digraph(20, 0.3, 1..5, 5);
        let result = run_transitive_closure(&neighborhood, &g, &TcOptions::new(5)).unwrap();
        assert_eq!(result, floyd_sequential(&g));
        neighborhood.shutdown();
    }

    #[test]
    fn tc_more_workers_than_rows() {
        let neighborhood = nb(2);
        let g = random_digraph(4, 0.5, 1..5, 2);
        let result = run_transitive_closure(&neighborhood, &g, &TcOptions::new(8)).unwrap();
        assert_eq!(result, floyd_sequential(&g));
        neighborhood.shutdown();
    }

    #[test]
    fn tc_tuplespace_variant_matches() {
        let neighborhood = nb(2);
        let g = random_digraph(16, 0.25, 1..8, 3);
        let mut opts = TcOptions::new(3);
        opts.tuplespace_workers = true;
        let result = run_transitive_closure(&neighborhood, &g, &opts).unwrap();
        assert_eq!(result, floyd_sequential(&g));
        neighborhood.shutdown();
    }

    #[test]
    fn i64_byte_roundtrip() {
        let v = vec![0i64, -1, i64::MAX, i64::MIN, 42];
        assert_eq!(decode_i64s(&encode_i64s(&v)).unwrap(), v);
        assert!(decode_i64s(&[1, 2, 3]).is_err());
    }

    #[test]
    fn plan_field_parsing() {
        let init = "index=2;n=10;joiner=tctask999";
        assert_eq!(plan_field(init, "index").unwrap(), "2");
        assert_eq!(plan_field(init, "joiner").unwrap(), "tctask999");
        assert!(plan_field(init, "missing").is_err());
    }

    #[test]
    fn split_fails_without_input() {
        let neighborhood = nb(1);
        publish_tc_archives(neighborhood.registry());
        let api = cn_core::CnApi::initialize(&neighborhood);
        let mut job = api.create_job(&cn_core::JobRequirements::default()).unwrap();
        let mut split = cn_core::TaskSpec::new("tctask0", SPLIT_JAR, SPLIT_CLASS);
        split.params.push(cn_cnx::Param::string("matrix.txt"));
        split.memory_mb = 100;
        job.add_task(split).unwrap();
        // No tuple-space seeding: the split task must time out and fail.
        // (Shorten its patience by dropping the job quickly is not possible;
        // we just verify failure surfaces. This test trades 30s for
        // coverage of the failure path — use a tiny matrixless job.)
        // To keep the suite fast we instead cancel via a missing plan and a
        // short client wait, asserting the timeout on the client side.
        job.start().unwrap();
        match job.wait(Duration::from_millis(300)) {
            Err(cn_core::ClientError::Timeout(_)) => {}
            other => panic!("{other:?}"),
        }
        neighborhood.shutdown();
    }
}
