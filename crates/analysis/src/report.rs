//! The lint report: an ordered collection of diagnostics with text and JSON
//! renderings and the severity summary the CLI exit code derives from.

use crate::diag::{json_escape, Diagnostic, Severity};

/// Result of a lint run. Diagnostics are kept sorted by span (spanless ones
/// last), then code, then message — a deterministic order independent of
/// pass registration or task iteration order. Diagnostics that agree on
/// that whole key are merged (worst severity wins, related lists union),
/// so the report's bytes do not depend on which pass emitted first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by(|a, b| {
            // None sorts after any real span.
            match (&a.span, &b.span) {
                (Some(x), Some(y)) => x.cmp(y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            }
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.message.cmp(&b.message))
        });
        // Same (span, code, message) from different passes must collapse to
        // one record whose bytes don't depend on registration order: take
        // the worst severity and the sorted union of related subjects.
        // (Exact-`dedup` alone would keep both copies, in emission order,
        // whenever severity or related differed.)
        let mut merged: Vec<Diagnostic> = Vec::with_capacity(diagnostics.len());
        for d in diagnostics {
            match merged.last_mut() {
                Some(prev)
                    if prev.code == d.code && prev.span == d.span && prev.message == d.message =>
                {
                    prev.severity = prev.severity.max(d.severity);
                    prev.related.extend(d.related);
                    prev.related.sort();
                    prev.related.dedup();
                }
                _ => merged.push(d),
            }
        }
        LintReport { diagnostics: merged }
    }

    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    pub fn has_warnings(&self) -> bool {
        self.count(Severity::Warning) > 0
    }

    /// Worst severity present, `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Promote every warning to an error (`--deny warnings`).
    pub fn deny_warnings(mut self) -> LintReport {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
        self
    }

    /// Multi-line human-readable rendering, ending with a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
            for r in &d.related {
                out.push_str(&format!("  note: {r}\n"));
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable rendering for CI: one stable JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",",
                d.code,
                d.severity,
                json_escape(&d.message)
            ));
            match d.span {
                Some(s) => out.push_str(&format!(
                    "\"span\":{{\"line\":{},\"col\":{},\"offset\":{}}},",
                    s.line, s.col, s.offset
                )),
                None => out.push_str("\"span\":null,"),
            }
            out.push_str("\"related\":[");
            for (j, r) in d.related.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", json_escape(r)));
            }
            out.push_str("]}");
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"infos\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cnx::Span;

    fn diag(code: &'static str, sev: Severity, msg: &str, line: u32) -> Diagnostic {
        Diagnostic::new(code, sev, msg).with_span(Span::new(line, 1, line as usize * 10))
    }

    #[test]
    fn report_sorts_by_span_then_code() {
        let report = LintReport::new(vec![
            diag("CN013", Severity::Warning, "b", 9),
            diag("CN004", Severity::Error, "a", 2),
            Diagnostic::new("CN001", Severity::Error, "doc-level"),
            diag("CN011", Severity::Error, "c", 2),
        ]);
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["CN004", "CN011", "CN013", "CN001"]);
    }

    #[test]
    fn duplicate_diagnostics_collapse() {
        let d = diag("CN010", Severity::Warning, "dup", 3);
        let report = LintReport::new(vec![d.clone(), d]);
        assert_eq!(report.len(), 1);
    }

    /// Two passes report the same finding with different severity and
    /// related subjects; the merged record — and the report's JSON bytes —
    /// must not depend on which pass was registered first.
    #[test]
    fn same_key_merge_is_registration_order_independent() {
        let a =
            diag("CN011", Severity::Warning, "too big", 2).with_related(["task \"a\"".to_string()]);
        let b = diag("CN011", Severity::Error, "too big", 2)
            .with_related(["node \"n0\"".to_string(), "task \"a\"".to_string()]);
        let fwd = LintReport::new(vec![a.clone(), b.clone()]);
        let rev = LintReport::new(vec![b, a]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_json(), rev.to_json());
        assert_eq!(fwd.len(), 1);
        let d = &fwd.diagnostics()[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.related, ["node \"n0\"", "task \"a\""]);
    }

    #[test]
    fn severity_counts_and_max() {
        let report = LintReport::new(vec![
            diag("CN004", Severity::Error, "a", 1),
            diag("CN013", Severity::Warning, "b", 2),
            diag("CN017", Severity::Info, "c", 3),
        ]);
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.count(Severity::Warning), 1);
        assert_eq!(report.count(Severity::Info), 1);
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert!(report.has_errors());
        assert_eq!(LintReport::default().max_severity(), None);
    }

    #[test]
    fn deny_warnings_promotes() {
        let report =
            LintReport::new(vec![diag("CN013", Severity::Warning, "b", 2)]).deny_warnings();
        assert!(report.has_errors());
        assert!(!report.has_warnings());
    }

    #[test]
    fn text_rendering_has_summary() {
        let report = LintReport::new(vec![diag("CN004", Severity::Error, "zero memory", 4)
            .with_related(["task \"t\"".to_string()])]);
        let text = report.to_text();
        assert!(text.contains("error[CN004] 4:1: zero memory"), "{text}");
        assert!(text.contains("note: task \"t\""), "{text}");
        assert!(text.ends_with("1 error(s), 0 warning(s), 0 info(s)\n"), "{text}");
    }

    #[test]
    fn json_rendering_is_stable_and_parseable_shape() {
        let report = LintReport::new(vec![
            diag("CN004", Severity::Error, "says \"zero\"", 4),
            Diagnostic::new("CN001", Severity::Error, "no jobs"),
        ]);
        let json = report.to_json();
        assert!(json.starts_with("{\"diagnostics\":["), "{json}");
        assert!(json.contains("\"span\":{\"line\":4,\"col\":1,\"offset\":40}"), "{json}");
        assert!(json.contains("\"span\":null"), "{json}");
        assert!(json.contains("says \\\"zero\\\""), "{json}");
        assert!(json.ends_with("\"errors\":2,\"warnings\":0,\"infos\":0}"), "{json}");
        assert_eq!(json, report.to_json());
    }
}
