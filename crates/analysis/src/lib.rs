//! # cn-analysis — the cross-layer lint engine
//!
//! Static analysis over both artifact layers the CN toolchain handles:
//! CNX job descriptors (the paper's XML job/task composition language) and
//! the UML activity models they are generated from. Every finding is a
//! [`Diagnostic`] with a stable `CN0xx` code, a severity, and — for parsed
//! CNX input — a source span, collected into a deterministic [`LintReport`]
//! with text and JSON renderings. `cnctl lint` is the CLI front end.
//!
//! ## Relationship to the existing validators
//!
//! `cn_cnx::validate` and `cn_model::validate` predate this crate and stay
//! exactly as they were — first-error `Result` APIs that scheduler and
//! transform code call directly. The engine re-routes their `validate_all`
//! collectors through [`passes::cnx::ValidityPass`] and
//! [`passes::model::ValidityPass`], attaching codes (CN001–CN008 for CNX,
//! CN020–CN029 for models), severities, and spans. The dependency points
//! this way (analysis → cnx/model) so the validators themselves remain the
//! thin compat layer and nothing below this crate changes behaviour.
//!
//! ## The pass registry
//!
//! Passes implement [`CnxPass`] or [`ModelPass`] and are registered on an
//! [`Engine`]. [`Engine::with_default_passes`] gives the built-in set;
//! [`Engine::register_cnx`]/[`Engine::register_model`] add custom ones.
//! Report order is independent of registration order — diagnostics sort by
//! span, then code, then message.
//!
//! ```
//! use cn_analysis::{lint_cnx_source, LintOptions};
//!
//! let report = lint_cnx_source(
//!     "<cn2><client class=\"C\"><job>\
//!      <task name=\"a\" jar=\"a.jar\" class=\"A\" depends=\"ghost\"/>\
//!      </job></client></cn2>",
//!     &LintOptions::default(),
//! );
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics()[0].code, "CN006"); // unknown dependency
//! ```

pub mod diag;
pub mod engine;
pub mod explain;
pub mod passes;
pub mod report;

pub use diag::{Diagnostic, Severity};
pub use engine::{
    codes, lint_cnx_source, lint_xmi_source, CnxContext, CnxPass, DeploymentShape, Engine,
    LintOptions, ModelContext, ModelPass, PortalShape, SchedulerShape,
};
pub use explain::{explain, Explanation};
pub use report::LintReport;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_engine_registers_all_passes() {
        let names = Engine::with_default_passes().pass_names();
        assert!(names.len() >= 13, "{names:?}");
        for expected in [
            "cnx-validity",
            "duplicate-depends",
            "param-types",
            "orphan-task",
            "redundant-depends",
            "multiplicity-bounds",
            "memory-capacity",
            "parallelism",
            "reactor-capacity",
            "portal-capacity",
            "recorder-capacity",
            "cnx-roundtrip",
            "model-validity",
            "fork-join",
            "model-roundtrip",
        ] {
            assert!(names.contains(&expected), "missing pass {expected:?} in {names:?}");
        }
    }

    #[test]
    fn custom_passes_can_be_registered() {
        struct NamePolicy;
        impl CnxPass for NamePolicy {
            fn name(&self) -> &'static str {
                "name-policy"
            }
            fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
                for job in &ctx.doc.client.jobs {
                    for t in &job.tasks {
                        if !t.name.starts_with("tc") {
                            out.push(Diagnostic::new(
                                "CN999",
                                Severity::Info,
                                format!("task {:?} violates the local naming policy", t.name),
                            ));
                        }
                    }
                }
            }
        }
        let mut engine = Engine::empty();
        engine.register_cnx(Box::new(NamePolicy));
        let mut doc = cn_cnx::ast::figure2_descriptor(1);
        doc.client.jobs[0].tasks[0].name = "splitter".into();
        let report = engine.lint_cnx(&doc, &LintOptions::default());
        assert_eq!(report.len(), 1);
        assert_eq!(report.diagnostics()[0].code, "CN999");
    }

    #[test]
    fn lint_cnx_source_reports_parse_errors_as_cn000() {
        let report = lint_cnx_source("<cn2><client", &LintOptions::default());
        assert_eq!(report.len(), 1);
        assert_eq!(report.diagnostics()[0].code, codes::PARSE);
        assert!(report.has_errors());
    }

    #[test]
    fn lint_cnx_source_end_to_end() {
        let src = "<cn2><client class=\"C\"><job>\n\
                   <task name=\"a\" jar=\"a.jar\" class=\"A\"/>\n\
                   <task name=\"b\" jar=\"b.jar\" class=\"B\" depends=\"a,a\"/>\n\
                   </job></client></cn2>";
        let report = lint_cnx_source(src, &LintOptions::default());
        assert_eq!(report.diagnostics()[0].code, codes::DUPLICATE_DEPENDS);
        assert_eq!(report.diagnostics()[0].span.map(|s| s.line), Some(3));
    }

    #[test]
    fn lint_xmi_source_end_to_end() {
        let xmi = cn_xml::write_document(
            &cn_model::export_xmi(&cn_model::transitive_closure_model(3)),
            &cn_xml::WriteOptions::default(),
        );
        let report = lint_xmi_source(&xmi, &LintOptions::default());
        assert!(report.is_empty(), "{}", report.to_text());
        let report = lint_xmi_source("not xml <", &LintOptions::default());
        assert_eq!(report.diagnostics()[0].code, codes::PARSE);
    }
}
