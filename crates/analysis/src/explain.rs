//! Long-form documentation for diagnostic codes (`cnctl lint --explain`).
//!
//! One entry per stable `CN0xx` code: what the finding means, why it is
//! worth acting on, and how to address it. A test pins the table to
//! [`crate::engine::ALL_CODES`] so a new code cannot ship without its
//! explanation.

use crate::engine::codes;

/// The documentation for one diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explanation {
    pub code: &'static str,
    /// One-line headline (what happened).
    pub title: &'static str,
    /// Why it matters and what to do — full sentences, possibly multi-line.
    pub rationale: &'static str,
}

impl Explanation {
    /// The `--explain` rendering: headline, blank line, rationale.
    pub fn render(&self) -> String {
        format!("{}: {}\n\n{}\n", self.code, self.title, self.rationale)
    }
}

/// Look up the documentation for a code (case-insensitive, `cn055` works).
pub fn explain(code: &str) -> Option<&'static Explanation> {
    let needle = code.to_ascii_uppercase();
    EXPLANATIONS.iter().find(|e| e.code == needle)
}

macro_rules! explanations {
    ($($code:expr => $title:expr, $rationale:expr;)*) => {
        /// Every code's documentation, in code order.
        pub const EXPLANATIONS: &[Explanation] = &[
            $(Explanation { code: $code, title: $title, rationale: $rationale },)*
        ];
    };
}

explanations! {
    codes::PARSE =>
        "input could not be parsed or imported",
        "The CNX or XMI input failed to parse, so no other check could run. \
         Fix the syntax error at the reported span first; every other \
         diagnostic is downstream of a well-formed document.";
    codes::NO_JOBS =>
        "descriptor declares no jobs",
        "A CNX client with no <job> elements submits nothing. Either the \
         descriptor is a stub or the jobs were accidentally removed.";
    codes::EMPTY_JOB =>
        "job has no tasks",
        "An empty job still costs a JobManager selection round but executes \
         nothing. Remove the job or add its tasks.";
    codes::EMPTY_FIELD =>
        "required task field is empty",
        "Task name, jar, and class must be non-empty for the TaskManager to \
         load and dispatch the task. An empty field fails at submission.";
    codes::ZERO_MEMORY =>
        "task requests zero memory",
        "Memory requirements drive manager selection; a zero requirement \
         makes the task schedulable on a node that cannot actually host it.";
    codes::BAD_MULTIPLICITY =>
        "task multiplicity is invalid",
        "Multiplicity must be a positive count (or a bounded range). Zero or \
         inverted bounds expand to no tasks or fail expansion outright.";
    codes::UNKNOWN_DEPENDENCY =>
        "task depends on a name that does not exist",
        "Dependencies are resolved by task name within the job; an unknown \
         name can never be satisfied, so the dependent task would wait \
         forever. Usually a typo or a task renamed without updating \
         depends= lists.";
    codes::DEPENDENCY_CYCLE =>
        "task dependency cycle",
        "The depends= edges form a cycle, so no topological execution order \
         exists and none of the tasks on the cycle can ever start.";
    codes::DUPLICATE_TASK =>
        "duplicate task name within a job",
        "Task names are the identity used by dependency resolution and \
         result reporting; duplicates make depends= references ambiguous.";
    codes::PAYLOAD_SIZE =>
        "task parameter payload approaches the wire frame limit",
        "Socket deployments reject frames above MAX_FRAME_BYTES. A payload \
         close to the limit works in-process but fails on the wire; shrink \
         the parameters or move bulk data to a shared space.";
    codes::DUPLICATE_DEPENDS =>
        "duplicate entries in a depends= list",
        "Repeating a dependency is harmless at runtime but usually indicates \
         a hand-edited list that drifted; the duplicate hides real edits in \
         diffs.";
    codes::TASK_EXCEEDS_NODE_MEMORY =>
        "task exceeds the largest node's memory",
        "No node in the configured cluster capacity can host this task, so \
         manager selection will never place it. Lower the requirement or \
         grow the cluster description.";
    codes::PARAM_TYPE_MISMATCH =>
        "parameter value does not match its declared type",
        "A parameter whose value cannot parse as its declared type fails \
         when the task unmarshals it — at run time, on a remote node. Catch \
         it here instead.";
    codes::ORPHAN_TASK =>
        "task is isolated from the rest of the job",
        "Every other task is connected by dependency edges, but this one is \
         not referenced and references nothing. Often a task that was meant \
         to be wired into the pipeline.";
    codes::REDUNDANT_DEPENDS =>
        "dependency is implied by a longer path",
        "The direct edge duplicates an ordering the transitive chain already \
         guarantees. Removing it keeps the graph minimal and the descriptor \
         readable.";
    codes::UNBOUNDED_MULTIPLICITY =>
        "multiplicity has no upper bound",
        "An unbounded expansion is decided by runtime cluster state, so job \
         size is unpredictable and capacity checks cannot be meaningful. \
         Bound the range.";
    codes::MEMORY_OVERSUBSCRIBED =>
        "job's concurrent memory demand exceeds cluster capacity",
        "Tasks that may run concurrently together demand more memory than \
         the whole cluster provides; the job will serialize on memory \
         availability rather than dependencies.";
    codes::SERIAL_JOB =>
        "job is a pure chain",
        "Every task depends on the previous one, so the job has no \
         parallelism and gains nothing from cluster execution. Possibly \
         intended, but worth a look.";
    codes::RECORDER_CAPACITY =>
        "job expands to more tasks than the flight recorder holds",
        "A run of this job would wrap the flight-recorder ring and evict \
         its own earliest events, making post-mortem traces incomplete. \
         Raise the recorder capacity for jobs this size.";
    codes::SERVER_MEMORY =>
        "task exceeds every configured server's memory",
        "With the given --server-memory values, no CN server could ever \
         host this task's requirement; submission would stall in manager \
         selection.";
    codes::MODEL_NO_INITIAL =>
        "activity model has no initial node",
        "Import needs a unique entry point to anchor the task graph; \
         without one the model cannot be scheduled at all.";
    codes::MODEL_MULTIPLE_INITIALS =>
        "activity model has multiple initial nodes",
        "More than one initial node makes the entry point ambiguous; merge \
         them or fork explicitly after a single initial.";
    codes::MODEL_NO_FINAL =>
        "activity model has no final node",
        "Without a final node, job completion is undefined — there is no \
         state in which the runtime can declare the job done.";
    codes::MODEL_UNREACHABLE =>
        "activity node unreachable from the initial node",
        "The node can never execute. Usually a transition was deleted or \
         points the wrong way.";
    codes::MODEL_CYCLE =>
        "activity model contains a cycle",
        "CN jobs are finite DAGs; a cycle in the activity graph cannot be \
         translated into task dependencies.";
    codes::MODEL_DUPLICATE_TASK =>
        "duplicate activity names",
        "Activity names become task names; duplicates collide in the \
         generated CNX descriptor.";
    codes::MODEL_MISSING_TAG =>
        "activity is missing required CN tagged values",
        "The jar/class/memory tagged values are how a UML activity carries \
         CN deployment data; an activity without them generates an invalid \
         task.";
    codes::MODEL_DYNAMIC_NO_MULTIPLICITY =>
        "dynamic activity lacks a multiplicity tag",
        "An activity marked dynamic expands to N tasks at generation time; \
         without the multiplicity tag, N is undefined.";
    codes::MODEL_DANGLING_TRANSITION =>
        "transition references a missing node",
        "A control-flow edge whose source or target does not exist — the \
         XMI export is internally inconsistent, usually from a partial \
         hand edit.";
    codes::MODEL_EMPTY =>
        "activity model has no activities",
        "A model with control nodes but no activities generates an empty \
         job. Export from the modeling tool probably failed.";
    codes::FORK_JOIN_IMBALANCE =>
        "fork/join branch structure is imbalanced",
        "A join waits on a different set of branches than the matching fork \
         created, so the join either deadlocks waiting for a branch that \
         never arrives or fires early.";
    codes::ROUNDTRIP_DRIFT =>
        "model and descriptor disagree after round-trip",
        "Re-generating the artifact and comparing shows a semantic \
         difference: the two layers have drifted and one of them is stale.";
    codes::LOCK_ORDER_CYCLE =>
        "lock-order cycle across the runtime's locks",
        "Model-checked schedules acquired the named locks in conflicting \
         orders (a -> b in one schedule, b -> a in another). The cycle is a \
         latent deadlock even if no explored schedule happened to deadlock: \
         two threads entering the cycle from different sides will block \
         each other forever. Fix by imposing one global acquisition order \
         or collapsing the locks.";
    codes::CV_WHILE_HOLDING =>
        "condvar wait entered while holding an unrelated lock",
        "A task blocked on a condition variable while still holding a lock \
         other than the one paired with the wait. The held lock stays held \
         for the whole wait, so any thread that needs it — including the \
         one that would signal the condvar — can deadlock against the \
         waiter. Release the unrelated lock before waiting.";
    codes::DEADLOCK =>
        "deadlock: every live task is blocked",
        "The model checker reached a state where no task can run and no \
         timed wait can fire — a genuine deadlock, with the replayable \
         seed and schedule attached as a counterexample. The subjects list \
         names the resources each blocked task is waiting on; follow the \
         cycle to pick the lock to reorder or split.";
    codes::DOUBLE_LOCK =>
        "double lock: a task re-acquired a lock it already holds",
        "The runtime's mutexes are not reentrant; acquiring one twice from \
         the same thread self-deadlocks. This usually appears after a \
         refactor inlines a helper that takes the same lock as its caller. \
         Pass the guard down instead of re-locking.";
    codes::LOST_NOTIFY =>
        "lost notification: a wakeup was never delivered",
        "A schedule only made progress because the checker force-fired a \
         timed wait at global quiescence — in production that is a thread \
         stuck until its poll interval saves it. Some path enqueues work or \
         flips the awaited condition without signalling the condvar; audit \
         every write to the waited-on state for a matching notify.";
    codes::SCHEDULE_ASSERT =>
        "assertion failed under some interleaving",
        "A scenario invariant held on most schedules but failed on the \
         attached counterexample — a real ordering bug, not a flaky test: \
         replaying the recorded seed and schedule reproduces it \
         deterministically. The trace shows the exact operation order that \
         broke the invariant.";
    codes::STEP_LIMIT =>
        "schedule exceeded the step budget",
        "One schedule ran past the checker's step budget, which usually \
         means a livelock: tasks keep running without making progress \
         (spin-retry loops, or two tasks repeatedly undoing each other). \
         If the scenario is legitimately long, raise the budget; otherwise \
         inspect the trace tail for the repeating cycle.";
    codes::REACTOR_CAPACITY =>
        "deployment shape exceeds the host's process limits",
        "Every peer connection on the socket fabric holds one file \
         descriptor, and each reactor shard holds an epoll instance plus \
         its wakeup eventfd, so a peer capacity near the process fd soft \
         limit fails in accept/connect exactly when the cluster is \
         busiest. Shards beyond the available cores add cross-thread \
         wakeups and cache migration without adding parallelism. Raise \
         the fd limit (ulimit -n), shrink the deployment, or lower \
         --reactor-shards.";
    codes::PORTAL_CAPACITY =>
        "portal deployment shape exceeds the host's capacity",
        "Every submission the portal admits pins file descriptors — the \
         HTTP connection that posted it plus the job's own wire client \
         fabric (listener, discovery sockets, worker peers) — so \
         --max-inflight near the process fd soft limit makes accepts and \
         submits fail exactly when the portal is busiest. Reactor shards \
         beyond the available cores add wakeups without parallelism, and \
         max-inflight times the request body limit bounds the memory a \
         submission flood can pin in buffered bodies before admission \
         pushes back. All three are knowable before launch: lower \
         --max-inflight or --body-limit, raise the fd limit (ulimit -n), \
         or match --reactor-shards to the cores.";
    codes::SCHEDULER_SHAPE =>
        "scheduler steal/fairness knobs are mis-sized for the workload",
        "Work stealing and fair admission only help when their knobs match \
         the workload's shape. A steal threshold deeper than any run queue \
         the descriptor can produce never fires, so the optimization is \
         silently off; a threshold of zero raids idle victims on every \
         load report and tasks thrash between nodes. A zero heartbeat \
         floods the discovery group with LoadReport frames, while one \
         beyond ten seconds feeds thieves signals staler than most jobs' \
         runtime. And a deficit-round-robin quantum below the largest \
         task's memory cost makes that client wait multiple full \
         rotations per admission. Size the threshold below the largest \
         job's task count, keep the heartbeat in the \
         milliseconds-to-seconds range, and set the quantum at or above \
         the largest task cost.";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ALL_CODES;

    #[test]
    fn every_code_has_exactly_one_explanation() {
        for code in ALL_CODES {
            let found = EXPLANATIONS.iter().filter(|e| e.code == *code).count();
            assert_eq!(found, 1, "code {code} needs exactly one explanation, found {found}");
        }
        assert_eq!(EXPLANATIONS.len(), ALL_CODES.len(), "explanation without a code constant");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(explain("cn052").map(|e| e.code), Some("CN052"));
        assert_eq!(explain("CN052").map(|e| e.code), Some("CN052"));
        assert_eq!(explain("CN999"), None);
    }

    #[test]
    fn render_has_headline_and_rationale() {
        let text = explain("CN050").unwrap().render();
        assert!(text.starts_with("CN050: lock-order cycle"), "{text}");
        assert!(text.contains("\n\n"), "{text}");
        assert!(text.ends_with('\n'), "{text}");
    }
}
