//! Diagnostic primitives: severities, stable codes, and the diagnostic
//! record every lint pass emits.

use std::fmt;

use cn_cnx::Span;

/// How bad a finding is. Ordering is by badness (`Info < Warning < Error`),
/// so `max()` over a report gives the exit-code-relevant severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding. `code` is stable across releases (CI configs and
/// suppressions key on it); `message` is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable `CN0xx` code (see the table in DESIGN.md).
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    /// Source location for parsed inputs; `None` when the subject was built
    /// programmatically or the finding has no single location.
    pub span: Option<Span>,
    /// Related subjects — task names, dependency chains — for machine
    /// consumption alongside the prose message.
    pub related: Vec<String>,
}

impl Diagnostic {
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity, message: message.into(), span: None, related: Vec::new() }
    }

    pub fn with_span(mut self, span: Span) -> Diagnostic {
        // Synthetic spans carry no information; keep them out of output.
        if !span.is_synthetic() {
            self.span = Some(span);
        }
        self
    }

    pub fn with_related(mut self, related: impl IntoIterator<Item = String>) -> Diagnostic {
        self.related.extend(related);
        self
    }

    /// `severity[code] span: message` — the one-line text rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!("{}[{}]", self.severity, self.code);
        if let Some(span) = self.span {
            out.push_str(&format!(" {span}"));
        }
        out.push_str(": ");
        out.push_str(&self.message);
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Escape a string for inclusion in a JSON string literal (no serde in this
/// workspace; the shape is small enough to emit by hand).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(
            [Severity::Warning, Severity::Error, Severity::Info].iter().max(),
            Some(&Severity::Error)
        );
    }

    #[test]
    fn render_includes_code_and_span() {
        let d = Diagnostic::new("CN007", Severity::Error, "dependency cycle: a -> b -> a")
            .with_span(Span::new(5, 1, 120));
        assert_eq!(d.render_text(), "error[CN007] 5:1: dependency cycle: a -> b -> a");
    }

    #[test]
    fn synthetic_spans_are_dropped() {
        let d = Diagnostic::new("CN001", Severity::Error, "x").with_span(Span::synthetic());
        assert_eq!(d.span, None);
        assert_eq!(d.render_text(), "error[CN001]: x");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape(r#"say "hi"\"#), r#"say \"hi\"\\"#);
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
