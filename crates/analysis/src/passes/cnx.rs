//! Lint passes over CNX descriptors.
//!
//! The validity pass routes the long-standing `cn_cnx::validate_all` checks
//! through the engine — `cn_cnx::validate` stays as the thin first-error
//! API for existing call sites, while lint consumers get every finding with
//! a stable code and a source span. The remaining passes are analyses the
//! validator never did: capacity fitting, parameter typing, graph shape.

use std::collections::HashSet;

use cn_cnx::ast::{CnxDocument, Job, ParamType, Task};
use cn_cnx::{CnxValidationError, DependencyGraph, GraphError, Span};

use crate::diag::{Diagnostic, Severity};
use crate::engine::{codes, CnxContext, CnxPass};

/// The default CNX pass set, in registration order.
pub fn default_passes() -> Vec<Box<dyn CnxPass>> {
    vec![
        Box::new(ValidityPass),
        Box::new(DuplicateDependsPass),
        Box::new(ParamTypePass),
        Box::new(OrphanTaskPass),
        Box::new(RedundantDependsPass),
        Box::new(MultiplicityBoundsPass),
        Box::new(MemoryCapacityPass),
        Box::new(ParallelismPass),
        Box::new(RecorderCapacityPass),
        Box::new(ServerMemoryPass),
        Box::new(ReactorCapacityPass),
        Box::new(PortalCapacityPass),
        Box::new(SchedulerShapePass),
        Box::new(PayloadSizePass),
        Box::new(RoundtripPass),
    ]
}

/// CN009's default threshold: warn when a task's estimated parameter
/// payload exceeds this fraction of the wire frame limit.
pub const DEFAULT_PAYLOAD_WARN_FRACTION: f64 = 0.5;

/// Span of the task named `name` (synthetic if absent — `with_span` then
/// drops it).
fn task_span(doc: &CnxDocument, name: &str) -> Span {
    doc.client
        .jobs
        .iter()
        .flat_map(|j| j.tasks.iter())
        .find(|t| t.name == name)
        .map(|t| t.span)
        .unwrap_or_else(Span::synthetic)
}

fn for_each_task(doc: &CnxDocument) -> impl Iterator<Item = (usize, &Job, &Task)> {
    doc.client
        .jobs
        .iter()
        .enumerate()
        .flat_map(|(ji, job)| job.tasks.iter().map(move |t| (ji, job, t)))
}

/// CN001–CN008: semantic validity, re-routed from [`cn_cnx::validate_all`].
pub struct ValidityPass;

impl CnxPass for ValidityPass {
    fn name(&self) -> &'static str {
        "cnx-validity"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        for err in cn_cnx::validate_all(ctx.doc) {
            out.push(map_validation_error(ctx.doc, &err));
        }
    }
}

fn map_validation_error(doc: &CnxDocument, err: &CnxValidationError) -> Diagnostic {
    let text = err.to_string();
    match err {
        CnxValidationError::NoJobs => {
            Diagnostic::new(codes::NO_JOBS, Severity::Error, text).with_span(doc.client.span)
        }
        CnxValidationError::EmptyJob { .. } => {
            Diagnostic::new(codes::EMPTY_JOB, Severity::Error, text).with_span(doc.client.span)
        }
        CnxValidationError::EmptyField { task, .. } => {
            Diagnostic::new(codes::EMPTY_FIELD, Severity::Error, text)
                .with_span(task_span(doc, task))
        }
        CnxValidationError::ZeroMemory { task } => {
            Diagnostic::new(codes::ZERO_MEMORY, Severity::Error, text)
                .with_span(task_span(doc, task))
        }
        CnxValidationError::BadMultiplicity { task, .. } => {
            Diagnostic::new(codes::BAD_MULTIPLICITY, Severity::Error, text)
                .with_span(task_span(doc, task))
        }
        CnxValidationError::Graph { error, .. } => match error {
            GraphError::UnknownDependency { task, depends_on } => {
                Diagnostic::new(codes::UNKNOWN_DEPENDENCY, Severity::Error, text)
                    .with_span(task_span(doc, task))
                    .with_related([format!("unknown task {depends_on:?}")])
            }
            GraphError::Cycle(names) => {
                let first = names.first().map(String::as_str).unwrap_or("");
                Diagnostic::new(codes::DEPENDENCY_CYCLE, Severity::Error, text)
                    .with_span(task_span(doc, first))
                    .with_related(names.iter().cloned())
            }
            GraphError::DuplicateTask(name) => {
                Diagnostic::new(codes::DUPLICATE_TASK, Severity::Error, text)
                    .with_span(task_span(doc, name))
            }
        },
    }
}

/// CN010: the same dependency listed more than once.
pub struct DuplicateDependsPass;

impl CnxPass for DuplicateDependsPass {
    fn name(&self) -> &'static str {
        "duplicate-depends"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        for (_, _, t) in for_each_task(ctx.doc) {
            let mut seen = HashSet::new();
            let mut dups: Vec<&String> =
                t.depends.iter().filter(|d| !seen.insert(d.as_str())).collect();
            dups.dedup();
            for d in dups {
                out.push(
                    Diagnostic::new(
                        codes::DUPLICATE_DEPENDS,
                        Severity::Warning,
                        format!("task {:?} lists dependency {d:?} more than once", t.name),
                    )
                    .with_span(t.span),
                );
            }
        }
    }
}

/// CN012: parameter values that do not parse as their declared type.
pub struct ParamTypePass;

impl CnxPass for ParamTypePass {
    fn name(&self) -> &'static str {
        "param-types"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        for (_, _, t) in for_each_task(ctx.doc) {
            for (i, p) in t.params.iter().enumerate() {
                let ok = match &p.ty {
                    ParamType::Integer => p.value.trim().parse::<i32>().is_ok(),
                    ParamType::Long => p.value.trim().parse::<i64>().is_ok(),
                    ParamType::Double => p.value.trim().parse::<f64>().is_ok(),
                    ParamType::Boolean => matches!(p.value.trim(), "true" | "false"),
                    ParamType::Str | ParamType::Other(_) => true,
                };
                if !ok {
                    let span = if p.span.is_synthetic() { t.span } else { p.span };
                    out.push(
                        Diagnostic::new(
                            codes::PARAM_TYPE_MISMATCH,
                            Severity::Error,
                            format!(
                                "task {:?} param #{i} declares type {} but value {:?} does not parse as one",
                                t.name, p.ty, p.value
                            ),
                        )
                        .with_span(span),
                    );
                }
            }
        }
    }
}

/// CN013: a task disconnected from the rest of the job's DAG.
pub struct OrphanTaskPass;

impl CnxPass for OrphanTaskPass {
    fn name(&self) -> &'static str {
        "orphan-task"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        for job in &ctx.doc.client.jobs {
            if job.tasks.len() < 2 {
                continue;
            }
            for t in &job.tasks {
                let no_deps = t.depends.is_empty();
                let no_dependents = !job.tasks.iter().any(|other| other.depends.contains(&t.name));
                if no_deps && no_dependents {
                    out.push(
                        Diagnostic::new(
                            codes::ORPHAN_TASK,
                            Severity::Warning,
                            format!(
                                "task {:?} is isolated: nothing depends on it and it depends on nothing",
                                t.name
                            ),
                        )
                        .with_span(t.span),
                    );
                }
            }
        }
    }
}

/// CN014: a `depends` entry already implied transitively by another entry.
pub struct RedundantDependsPass;

impl CnxPass for RedundantDependsPass {
    fn name(&self) -> &'static str {
        "redundant-depends"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        for job in &ctx.doc.client.jobs {
            // Needs a well-formed DAG; the validity pass reports otherwise.
            let Ok(graph) = DependencyGraph::build(job) else { continue };
            for i in 0..graph.len() {
                let direct: Vec<usize> = graph.dependencies(i).to_vec();
                for &d in &direct {
                    // Is d reachable from any *other* direct dependency?
                    let mut stack: Vec<usize> =
                        direct.iter().copied().filter(|&o| o != d).collect();
                    let mut seen: HashSet<usize> = stack.iter().copied().collect();
                    let mut reachable = false;
                    while let Some(n) = stack.pop() {
                        if n == d {
                            reachable = true;
                            break;
                        }
                        for &m in graph.dependencies(n) {
                            if seen.insert(m) {
                                stack.push(m);
                            }
                        }
                    }
                    if reachable {
                        out.push(
                            Diagnostic::new(
                                codes::REDUNDANT_DEPENDS,
                                Severity::Warning,
                                format!(
                                    "task {:?} depends on {:?} directly, but that is already implied transitively",
                                    graph.name(i),
                                    graph.name(d)
                                ),
                            )
                            .with_span(task_span(ctx.doc, graph.name(i))),
                        );
                    }
                }
            }
        }
    }
}

/// CN015: `*` multiplicity with nothing to bound the expansion.
pub struct MultiplicityBoundsPass;

impl CnxPass for MultiplicityBoundsPass {
    fn name(&self) -> &'static str {
        "multiplicity-bounds"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        for (_, _, t) in for_each_task(ctx.doc) {
            if t.multiplicity.as_deref() != Some("*") {
                continue;
            }
            match ctx.capacity {
                None => out.push(
                    Diagnostic::new(
                        codes::UNBOUNDED_MULTIPLICITY,
                        Severity::Warning,
                        format!(
                            "task {:?} has unbounded multiplicity \"*\" and no cluster capacity is configured to cap the expansion",
                            t.name
                        ),
                    )
                    .with_span(t.span),
                ),
                Some(cap) => out.push(
                    Diagnostic::new(
                        codes::UNBOUNDED_MULTIPLICITY,
                        Severity::Info,
                        format!(
                            "task {:?} has multiplicity \"*\"; expansion is capped by the cluster's {} task slots",
                            t.name, cap.total_slots
                        ),
                    )
                    .with_span(t.span),
                ),
            }
        }
    }
}

/// CN011 + CN016: declared memory vs what the cluster can actually offer.
pub struct MemoryCapacityPass;

impl CnxPass for MemoryCapacityPass {
    fn name(&self) -> &'static str {
        "memory-capacity"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(cap) = ctx.capacity else { return };
        for (_, _, t) in for_each_task(ctx.doc) {
            if t.req.memory_mb > cap.max_node_memory_mb {
                out.push(
                    Diagnostic::new(
                        codes::TASK_EXCEEDS_NODE_MEMORY,
                        Severity::Error,
                        format!(
                            "task {:?} requires {} MB but the largest node offers {} MB: it can never be placed",
                            t.name, t.req.memory_mb, cap.max_node_memory_mb
                        ),
                    )
                    .with_span(t.span),
                );
            }
        }
        for (ji, job) in ctx.doc.client.jobs.iter().enumerate() {
            let Ok(graph) = DependencyGraph::build(job) else { continue };
            for (wi, wave) in graph.waves().iter().enumerate() {
                let demand: u64 = wave
                    .iter()
                    .map(|&i| {
                        let t = &job.tasks[i];
                        // A numeric multiplicity can expand into that many
                        // concurrent instances; `*` is CN015's business.
                        let instances = t
                            .multiplicity
                            .as_deref()
                            .and_then(|m| m.parse::<u64>().ok())
                            .unwrap_or(1);
                        t.req.memory_mb * instances
                    })
                    .sum();
                if demand > cap.total_memory_mb {
                    out.push(
                        Diagnostic::new(
                            codes::MEMORY_OVERSUBSCRIBED,
                            Severity::Warning,
                            format!(
                                "job #{ji} wave {wi} declares {demand} MB across {} concurrent task(s) but the cluster totals {} MB: the wave will serialize",
                                wave.len(),
                                cap.total_memory_mb
                            ),
                        )
                        .with_related(wave.iter().map(|&i| job.tasks[i].name.clone())),
                    );
                }
            }
        }
    }
}

/// CN017: a multi-task job with no exploitable parallelism.
pub struct ParallelismPass;

impl CnxPass for ParallelismPass {
    fn name(&self) -> &'static str {
        "parallelism"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        for (ji, job) in ctx.doc.client.jobs.iter().enumerate() {
            if job.tasks.len() < 2 {
                continue;
            }
            let Ok(graph) = DependencyGraph::build(job) else { continue };
            if graph.max_parallelism() == 1 {
                out.push(Diagnostic::new(
                    codes::SERIAL_JOB,
                    Severity::Info,
                    format!(
                        "job #{ji} is fully serial ({} tasks, max parallelism 1): a cluster adds no speedup",
                        job.tasks.len()
                    ),
                ));
            }
        }
    }
}

/// CN019: a task requests more memory than any configured server offers.
///
/// Wire deployments declare per-process capacity with `cnctl serve
/// --memory`; passing the same values to `cnctl lint --server-memory`
/// catches task requirements that no server in the fleet could ever bid
/// on — the job would stall in placement at run time.
pub struct ServerMemoryPass;

impl CnxPass for ServerMemoryPass {
    fn name(&self) -> &'static str {
        "server-memory"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(servers) = ctx.server_memory_mb else { return };
        let Some(largest) = servers.iter().copied().max() else { return };
        for (_, _, t) in for_each_task(ctx.doc) {
            if t.req.memory_mb > largest {
                out.push(
                    Diagnostic::new(
                        codes::SERVER_MEMORY,
                        Severity::Warning,
                        format!(
                            "task {:?} requires {} MB but the largest configured server offers {} MB: no TaskManager in this deployment can bid on it",
                            t.name, t.req.memory_mb, largest
                        ),
                    )
                    .with_span(t.span),
                );
            }
        }
    }
}

/// CN057: the deployment's shape exceeds what the host can provide.
///
/// Every peer connection on the socket fabric holds one file descriptor,
/// and each reactor shard holds an epoll instance plus its wakeup eventfd,
/// so a peer capacity near the process fd soft limit fails in
/// accept/connect exactly when the cluster is busiest — and shards beyond
/// the core count add cross-thread wakeups and cache migration without
/// adding parallelism. Both are knowable before anything launches: `cnctl
/// lint --peer-capacity N [--reactor-shards S]` judges the plan against
/// the linting host's limits, or against explicit `--fd-soft-limit` /
/// `--cores` overrides when the target machine differs.
pub struct ReactorCapacityPass;

/// Non-peer fds a serving process holds: stdio, the TCP listener, the UDP
/// receive and send sockets, and per shard an epoll fd plus its eventfd.
fn reactor_overhead_fds(shards: u64) -> u64 {
    3 + 3 + 2 * shards
}

impl CnxPass for ReactorCapacityPass {
    fn name(&self) -> &'static str {
        "reactor-capacity"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(dep) = ctx.deployment else { return };
        let cores = dep.available_cores.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1)
        });
        // Auto shard count (0) resolves the way the fabric would, capped by
        // the core count — it can only over-shard when configured to.
        let shards = if dep.reactor_shards == 0 {
            (cn_reactor::default_shards() as u64).min(cores)
        } else {
            dep.reactor_shards
        };
        let fd_limit = match dep.fd_soft_limit {
            Some(limit) => Some(limit),
            None => cn_reactor::sys::fd_limits().ok().map(|(soft, _hard)| soft),
        };
        if let Some(limit) = fd_limit {
            let overhead = reactor_overhead_fds(shards);
            let need = dep.peer_capacity + overhead;
            if need > limit {
                out.push(Diagnostic::new(
                    codes::REACTOR_CAPACITY,
                    Severity::Warning,
                    format!(
                        "deployment expects {} peer connection(s), which with {overhead} runtime fd(s) of overhead needs {need} fds against a process soft limit of {limit}: accepts and connects will fail mid-run (raise the limit or shrink the deployment)",
                        dep.peer_capacity
                    ),
                ));
            }
        }
        if dep.reactor_shards > cores {
            out.push(Diagnostic::new(
                codes::REACTOR_CAPACITY,
                Severity::Warning,
                format!(
                    "--reactor-shards {} exceeds the {cores} available core(s): extra shards add cross-thread wakeups and cache migration without adding parallelism",
                    dep.reactor_shards
                ),
            ));
        }
    }
}

/// CN058: the portal's deployment shape exceeds what its host can hold.
///
/// Every in-flight submission the portal admits holds an HTTP connection
/// fd, and each executing job opens a wire client fabric of its own (a
/// TCP listener, UDP discovery sockets, and per-worker peer connections),
/// so `--max-inflight` near the fd soft limit makes accepts and connects
/// fail exactly when the portal is busiest. `--reactor-shards` beyond the
/// core count adds wakeups without parallelism (same physics as CN057),
/// and `max_inflight × body-limit` bounds the memory queued request
/// bodies can pin — a cap worth checking against the host's budget before
/// a flood finds it. `cnctl lint --portal-max-inflight N` judges the plan
/// against the linting host, or against explicit `--fd-soft-limit` /
/// `--cores` / `--host-memory` overrides for a different target machine.
pub struct PortalCapacityPass;

/// Non-submission fds a portal process holds: stdio, the HTTP listener,
/// and per shard an epoll fd plus its wakeup eventfd.
fn portal_overhead_fds(shards: u64) -> u64 {
    3 + 1 + 2 * shards
}

/// Fds one in-flight submission can pin: the HTTP connection that posted
/// it plus the job's own wire client fabric (TCP listener, UDP recv/send,
/// and at least three worker peer connections on a minimal cluster).
const FDS_PER_INFLIGHT_JOB: u64 = 1 + 3 + 3;

impl CnxPass for PortalCapacityPass {
    fn name(&self) -> &'static str {
        "portal-capacity"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(portal) = ctx.portal else { return };
        let cores = portal.available_cores.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1)
        });
        let shards = if portal.reactor_shards == 0 {
            (cn_reactor::default_shards() as u64).min(cores)
        } else {
            portal.reactor_shards
        };
        let fd_limit = match portal.fd_soft_limit {
            Some(limit) => Some(limit),
            None => cn_reactor::sys::fd_limits().ok().map(|(soft, _hard)| soft),
        };
        if let Some(limit) = fd_limit {
            let overhead = portal_overhead_fds(shards);
            let need = portal.max_inflight * FDS_PER_INFLIGHT_JOB + overhead;
            if need > limit {
                out.push(Diagnostic::new(
                    codes::PORTAL_CAPACITY,
                    Severity::Warning,
                    format!(
                        "portal admits {} in-flight submission(s), each pinning ~{FDS_PER_INFLIGHT_JOB} fd(s) (HTTP connection + the job's wire client fabric), which with {overhead} runtime fd(s) of overhead needs {need} fds against a process soft limit of {limit}: accepts and submits will fail under load (lower --max-inflight or raise the limit)",
                        portal.max_inflight
                    ),
                ));
            }
        }
        if portal.reactor_shards > cores {
            out.push(Diagnostic::new(
                codes::PORTAL_CAPACITY,
                Severity::Warning,
                format!(
                    "--reactor-shards {} exceeds the {cores} available core(s): extra shards add cross-thread wakeups and cache migration without adding parallelism",
                    portal.reactor_shards
                ),
            ));
        }
        if let Some(memory_mb) = portal.host_memory_mb {
            let worst_mb = portal.max_inflight * portal.max_body_bytes / (1024 * 1024);
            if worst_mb > memory_mb {
                out.push(Diagnostic::new(
                    codes::PORTAL_CAPACITY,
                    Severity::Warning,
                    format!(
                        "portal can buffer {} in-flight bodies of up to {} byte(s) each — {worst_mb} MB in the worst case against a {memory_mb} MB host budget: a submission flood can exhaust memory before admission rejects (lower --max-inflight or --body-limit)",
                        portal.max_inflight, portal.max_body_bytes
                    ),
                ));
            }
        }
    }
}

/// CN059: the scheduler's steal/fairness knobs are mis-sized for this
/// descriptor.
///
/// Work stealing and fair admission are shape-sensitive: a steal threshold
/// deeper than any run queue this descriptor can produce never fires (the
/// optimization is silently off), a zero threshold raids even idle victims
/// on every load report, a zero heartbeat floods the discovery group with
/// `LoadReport` frames, and a heartbeat beyond ~10s feeds the thief load
/// signals staler than most jobs' entire runtime. On the admission side, a
/// deficit-round-robin quantum below the largest task cost means the
/// busiest client's next task waits multiple full rotations before its
/// deficit covers it. None of these fail loudly at runtime — `cnctl lint
/// --steal-threshold N --steal-heartbeat-ms MS [--fair-quantum MB]` calls
/// them out before launch.
pub struct SchedulerShapePass;

/// Heartbeats beyond this feed thieves load signals too stale to act on.
const STALE_HEARTBEAT_MS: u64 = 10_000;

impl CnxPass for SchedulerShapePass {
    fn name(&self) -> &'static str {
        "scheduler-shape"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(sched) = ctx.scheduler else { return };
        // The deepest run queue this descriptor can create on one node:
        // every expanded task instance landing on the same TaskManager.
        let max_instances: u64 = ctx
            .doc
            .client
            .jobs
            .iter()
            .map(|job| {
                job.tasks
                    .iter()
                    .map(|t| match t.multiplicity.as_deref() {
                        Some("*") => 1,
                        Some(m) => m.parse::<u64>().unwrap_or(1),
                        None => 1,
                    })
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        if sched.steal_threshold == 0 {
            out.push(Diagnostic::new(
                codes::SCHEDULER_SHAPE,
                Severity::Warning,
                "--steal-threshold 0 makes every TaskManager a raid victim on every load \
                 report, even with an empty run queue: tasks thrash between nodes instead \
                 of running (use a threshold of at least 1)"
                    .to_string(),
            ));
        } else if max_instances > 0 && sched.steal_threshold >= max_instances {
            out.push(Diagnostic::new(
                codes::SCHEDULER_SHAPE,
                Severity::Warning,
                format!(
                    "--steal-threshold {} can never fire: the largest job expands to {max_instances} task instance(s), so no run queue reaches that depth even if every task lands on one node — stealing is silently disabled (lower the threshold or grow the job)",
                    sched.steal_threshold
                ),
            ));
        }
        if sched.steal_heartbeat_ms == 0 {
            out.push(Diagnostic::new(
                codes::SCHEDULER_SHAPE,
                Severity::Warning,
                "--steal-heartbeat-ms 0 multicasts a LoadReport on every queue change with \
                 no throttle: the discovery group drowns in load traffic exactly when the \
                 cluster is busiest (use at least a few milliseconds)"
                    .to_string(),
            ));
        } else if sched.steal_heartbeat_ms > STALE_HEARTBEAT_MS {
            out.push(Diagnostic::new(
                codes::SCHEDULER_SHAPE,
                Severity::Warning,
                format!(
                    "--steal-heartbeat-ms {} exceeds {STALE_HEARTBEAT_MS} ms: thieves pick victims from load signals staler than most jobs' entire runtime, so raids target queues that already drained (shorten the heartbeat)",
                    sched.steal_heartbeat_ms
                ),
            ));
        }
        if let Some(quantum) = sched.fair_quantum_mb {
            let max_cost = ctx
                .doc
                .client
                .jobs
                .iter()
                .flat_map(|job| job.tasks.iter())
                .map(|t| t.req.memory_mb)
                .max()
                .unwrap_or(0);
            if quantum < max_cost {
                out.push(Diagnostic::new(
                    codes::SCHEDULER_SHAPE,
                    Severity::Warning,
                    format!(
                        "--fair-quantum {quantum} is below the largest task cost ({max_cost} MB): that task's client must wait multiple full deficit-round-robin rotations before its deficit covers one admission (raise the quantum to at least the largest task's memory)"
                    ),
                ));
            }
        }
    }
}

/// CN018: more task instances than the flight recorder retains by default.
///
/// Each task emits at least one severity-tagged event on an interesting
/// lifecycle transition, so a composition whose expanded task count exceeds
/// [`cn_observe::DEFAULT_FLIGHT_CAPACITY`] will silently evict early events
/// from a default-capacity recorder. Numeric multiplicity expands the
/// count; `*` is unbounded and reported at the default capacity too.
pub struct RecorderCapacityPass;

impl CnxPass for RecorderCapacityPass {
    fn name(&self) -> &'static str {
        "recorder-capacity"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        let cap = cn_observe::DEFAULT_FLIGHT_CAPACITY as u64;
        for (ji, job) in ctx.doc.client.jobs.iter().enumerate() {
            let instances: u64 = job
                .tasks
                .iter()
                .map(|t| match t.multiplicity.as_deref() {
                    // `*` is unbounded — CN015's business; count the minimum.
                    Some("*") => 1,
                    Some(m) => m.parse::<u64>().unwrap_or(1),
                    None => 1,
                })
                .sum();
            if instances > cap {
                out.push(Diagnostic::new(
                    codes::RECORDER_CAPACITY,
                    Severity::Warning,
                    format!(
                        "job #{ji} expands to {instances} task instance(s) but the default flight recorder retains only {cap} events: early trace events will be evicted (raise it with Recorder::with_flight_capacity)"
                    ),
                ));
            }
        }
    }
}

/// CN009: a task's parameter payload approaches the wire frame limit.
///
/// Task parameters travel inside the `CreateTask`/`StartTask` frames on
/// the socket fabric, and the reader rejects any frame larger than
/// `MAX_FRAME_BYTES` as `FrameTooLarge` — the job would fail in placement
/// at run time. Warn while the composition is still a descriptor. The
/// threshold is a fraction of the limit (default
/// [`DEFAULT_PAYLOAD_WARN_FRACTION`], configurable with `cnctl lint
/// --payload-warn-fraction`) because the estimate ignores codec overhead.
pub struct PayloadSizePass;

/// Rough on-wire size of the spec fields a task contributes to its
/// `CreateTask` frame: each string is length-prefixed (u32 + bytes), plus a
/// small allowance for tags and the fixed spec fields.
fn estimated_payload_bytes(t: &Task) -> u64 {
    let field = |s: &str| 4 + s.len() as u64;
    let mut bytes = field(&t.name) + field(&t.jar) + field(&t.class) + 64;
    for p in &t.params {
        bytes += field(&p.value) + 8;
    }
    for d in &t.depends {
        bytes += field(d);
    }
    bytes
}

impl CnxPass for PayloadSizePass {
    fn name(&self) -> &'static str {
        "payload-size"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        let fraction = ctx.payload_warn_fraction;
        if fraction <= 0.0 {
            return;
        }
        let limit = u64::from(cn_wire::codec::MAX_FRAME_BYTES);
        let threshold = (limit as f64 * fraction) as u64;
        for (_, _, t) in for_each_task(ctx.doc) {
            let est = estimated_payload_bytes(t);
            if est > threshold {
                out.push(
                    Diagnostic::new(
                        codes::PAYLOAD_SIZE,
                        Severity::Warning,
                        format!(
                            "task {:?}: estimated parameter payload of {est} B exceeds {fraction} of the {limit} B wire frame limit ({threshold} B): frames past the limit are rejected as FrameTooLarge on socket deployments",
                            t.name
                        ),
                    )
                    .with_span(t.span),
                );
            }
        }
    }
}

/// CN040: information lost in the CNX → model → CNX round trip.
pub struct RoundtripPass;

impl CnxPass for RoundtripPass {
    fn name(&self) -> &'static str {
        "cnx-roundtrip"
    }

    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>) {
        // Drift is only meaningful for descriptors the validator accepts.
        if !cn_cnx::validate_all(ctx.doc).is_empty() {
            return;
        }
        for drift in cn_transform::cnx_roundtrip_drift(ctx.doc) {
            let mut d = Diagnostic::new(
                codes::ROUNDTRIP_DRIFT,
                Severity::Warning,
                match &drift.task {
                    Some(task) => format!("task {task:?}: {}", drift.detail),
                    None => drift.detail.clone(),
                },
            );
            if let Some(task) = &drift.task {
                d = d.with_span(task_span(ctx.doc, task));
            }
            out.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, LintOptions};
    use crate::report::LintReport;
    use cn_cluster::ClusterCapacity;
    use cn_cnx::ast::{figure2_descriptor, Param};

    fn lint(doc: &CnxDocument) -> LintReport {
        Engine::with_default_passes().lint_cnx(doc, &LintOptions::default())
    }

    fn lint_with_capacity(doc: &CnxDocument, cap: ClusterCapacity) -> LintReport {
        Engine::with_default_passes()
            .lint_cnx(doc, &LintOptions { capacity: Some(cap), ..LintOptions::default() })
    }

    fn codes_of(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn payload_size_pass_warns_at_a_configured_fraction() {
        let mut doc = figure2_descriptor(3);
        doc.client.jobs[0].tasks[1].params.push(Param::string("x".repeat(64)));
        // Default threshold (half of 64 MiB): quiet.
        assert!(!codes_of(&lint(&doc)).contains(&codes::PAYLOAD_SIZE));
        // A tiny configured fraction trips the same descriptor.
        let report = Engine::with_default_passes().lint_cnx(
            &doc,
            &LintOptions { payload_warn_fraction: Some(0.000001), ..LintOptions::default() },
        );
        assert!(codes_of(&report).contains(&codes::PAYLOAD_SIZE), "{}", report.to_text());
        // And 0 disables the pass outright.
        let report = Engine::with_default_passes().lint_cnx(
            &doc,
            &LintOptions { payload_warn_fraction: Some(0.0), ..LintOptions::default() },
        );
        assert!(!codes_of(&report).contains(&codes::PAYLOAD_SIZE));
    }

    #[test]
    fn figure2_is_clean() {
        let report = lint(&figure2_descriptor(5));
        assert!(report.is_empty(), "{}", report.to_text());
        // ...even with a roomy cluster attached.
        let report =
            lint_with_capacity(&figure2_descriptor(5), ClusterCapacity::uniform(8, 2000, 2));
        assert!(report.is_empty(), "{}", report.to_text());
    }

    #[test]
    fn validity_errors_get_codes_and_spans() {
        // Parse so tasks carry spans.
        let doc = cn_cnx::parse_cnx(
            "<cn2><client class=\"C\"><job>\n<task name=\"a\" jar=\"\" class=\"K\" depends=\"ghost\"/>\n</job></client></cn2>",
        )
        .unwrap();
        let report = lint(&doc);
        let codes = codes_of(&report);
        assert!(codes.contains(&codes::EMPTY_FIELD), "{codes:?}");
        assert!(codes.contains(&codes::UNKNOWN_DEPENDENCY), "{codes:?}");
        for d in report.diagnostics() {
            assert_eq!(d.span.map(|s| s.line), Some(2), "{d:?}");
        }
    }

    #[test]
    fn cycle_reported_with_related_chain() {
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks[1].depends = vec!["tctask2".into()];
        doc.client.jobs[0].tasks[2].depends = vec!["tctask1".into()];
        let report = lint(&doc);
        let cycle = report
            .diagnostics()
            .iter()
            .find(|d| d.code == codes::DEPENDENCY_CYCLE)
            .expect("cycle diagnostic");
        assert_eq!(cycle.related, vec!["tctask1", "tctask2", "tctask1"]);
    }

    #[test]
    fn duplicate_depends_warns_once() {
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks[2].depends = vec!["tctask0".into(), "tctask0".into()];
        let report = lint(&doc);
        let dups: Vec<_> =
            report.diagnostics().iter().filter(|d| d.code == codes::DUPLICATE_DEPENDS).collect();
        assert_eq!(dups.len(), 1, "{}", report.to_text());
        assert_eq!(dups[0].severity, Severity::Warning);
        // The duplicate edge also collapses in the model round trip, which
        // the drift pass reports independently.
        assert!(codes_of(&report).contains(&codes::ROUNDTRIP_DRIFT));
    }

    #[test]
    fn param_type_mismatch_is_an_error() {
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks[1].params = vec![Param::new(ParamType::Integer, "not-a-number")];
        let report = lint(&doc);
        assert_eq!(codes_of(&report), vec![codes::PARAM_TYPE_MISMATCH]);
        // Well-typed values stay quiet.
        let mut ok = figure2_descriptor(2);
        ok.client.jobs[0].tasks[1].params = vec![
            Param::new(ParamType::Integer, "17"),
            Param::new(ParamType::Double, "2.5"),
            Param::new(ParamType::Boolean, "true"),
            Param::new(ParamType::Str, "anything"),
        ];
        assert!(lint(&ok).is_empty());
    }

    #[test]
    fn orphan_task_detected() {
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks.push(cn_cnx::ast::Task::new("lonely", "l.jar", "L"));
        let report = lint(&doc);
        assert_eq!(codes_of(&report), vec![codes::ORPHAN_TASK]);
        // A single-task job is not an orphanage.
        let single = cn_cnx::parse_cnx(
            "<cn2><client class=\"C\"><job><task name=\"only\" jar=\"j\" class=\"K\"/></job></client></cn2>",
        )
        .unwrap();
        assert!(lint(&single).is_empty());
    }

    #[test]
    fn redundant_transitive_edge_detected() {
        // join depends on both the workers and (redundantly) the splitter.
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks[3].depends.push("tctask0".into());
        let report = lint(&doc);
        assert_eq!(codes_of(&report), vec![codes::REDUNDANT_DEPENDS]);
        assert!(report.to_text().contains("tctask999"), "{}", report.to_text());
        // Direct-only chains are fine (figure2 itself is the negative case).
        assert!(lint(&figure2_descriptor(2)).is_empty());
    }

    #[test]
    fn unbounded_multiplicity_warns_without_capacity() {
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks[1].multiplicity = Some("*".into());
        let report = lint(&doc);
        assert_eq!(codes_of(&report), vec![codes::UNBOUNDED_MULTIPLICITY]);
        assert_eq!(report.max_severity(), Some(Severity::Warning));
        // With a capacity the finding downgrades to info.
        let report = lint_with_capacity(&doc, ClusterCapacity::uniform(4, 2000, 2));
        assert_eq!(codes_of(&report), vec![codes::UNBOUNDED_MULTIPLICITY]);
        assert_eq!(report.max_severity(), Some(Severity::Info));
        // Bounded multiplicity stays quiet either way.
        let mut bounded = figure2_descriptor(2);
        bounded.client.jobs[0].tasks[1].multiplicity = Some("4".into());
        assert!(lint(&bounded).is_empty());
    }

    #[test]
    fn task_exceeding_every_node_is_an_error() {
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks[0].req.memory_mb = 4096;
        let report = lint_with_capacity(&doc, ClusterCapacity::uniform(4, 2000, 2));
        assert!(codes_of(&report).contains(&codes::TASK_EXCEEDS_NODE_MEMORY));
        assert_eq!(report.max_severity(), Some(Severity::Error));
        // Without capacity info the pass cannot judge.
        assert!(lint(&doc).is_empty());
    }

    #[test]
    fn wave_oversubscription_warns() {
        // 5 workers x 1000 MB in one wave vs a 3000 MB cluster.
        let doc = figure2_descriptor(5);
        let report = lint_with_capacity(&doc, ClusterCapacity::uniform(3, 1000, 4));
        assert!(codes_of(&report).contains(&codes::MEMORY_OVERSUBSCRIBED), "{}", report.to_text());
        let over =
            report.diagnostics().iter().find(|d| d.code == codes::MEMORY_OVERSUBSCRIBED).unwrap();
        assert_eq!(over.related.len(), 5);
        // Numeric multiplicity multiplies the demand.
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[1].multiplicity = Some("9".into());
        let report = lint_with_capacity(&doc, ClusterCapacity::uniform(4, 2000, 2));
        assert!(codes_of(&report).contains(&codes::MEMORY_OVERSUBSCRIBED), "{}", report.to_text());
        // A roomy cluster stays quiet.
        assert!(lint_with_capacity(&figure2_descriptor(5), ClusterCapacity::uniform(8, 2000, 2))
            .is_empty());
    }

    #[test]
    fn serial_job_is_an_info() {
        let doc = cn_cnx::parse_cnx(
            "<cn2><client class=\"C\"><job>\
             <task name=\"a\" jar=\"j\" class=\"K\"/>\
             <task name=\"b\" jar=\"j\" class=\"K\" depends=\"a\"/>\
             <task name=\"c\" jar=\"j\" class=\"K\" depends=\"b\"/>\
             </job></client></cn2>",
        )
        .unwrap();
        let report = lint(&doc);
        assert_eq!(codes_of(&report), vec![codes::SERIAL_JOB]);
        assert_eq!(report.max_severity(), Some(Severity::Info));
        assert!(lint(&figure2_descriptor(3)).is_empty());
    }

    #[test]
    fn recorder_capacity_warns_past_the_flight_default() {
        // 600 expanded workers > DEFAULT_FLIGHT_CAPACITY (512).
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks[1].multiplicity = Some("600".into());
        let report = lint(&doc);
        assert!(codes_of(&report).contains(&codes::RECORDER_CAPACITY), "{}", report.to_text());
        let d = report.diagnostics().iter().find(|d| d.code == codes::RECORDER_CAPACITY).unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("512"), "{}", d.message);
        // Figure 2 at realistic sizes stays quiet, as does `*` (CN015's
        // territory) and a count right at the capacity.
        assert!(!codes_of(&lint(&figure2_descriptor(100))).contains(&codes::RECORDER_CAPACITY));
        let mut star = figure2_descriptor(2);
        star.client.jobs[0].tasks[1].multiplicity = Some("*".into());
        assert!(!codes_of(&lint(&star)).contains(&codes::RECORDER_CAPACITY));
        let mut at_cap = figure2_descriptor(2);
        at_cap.client.jobs[0].tasks[1].multiplicity = Some("508".into());
        assert!(!codes_of(&lint(&at_cap)).contains(&codes::RECORDER_CAPACITY));
    }

    #[test]
    fn server_memory_warns_when_no_server_can_host() {
        let lint_with_servers = |doc: &CnxDocument, servers: Vec<u64>| {
            Engine::with_default_passes().lint_cnx(
                doc,
                &LintOptions { server_memory_mb: Some(servers), ..LintOptions::default() },
            )
        };
        // Figure 2 tasks each want 1000 MB: a 512 MB fleet warns per task,
        // one 2048 MB server anywhere in the fleet clears every warning.
        let doc = figure2_descriptor(2);
        let report = lint_with_servers(&doc, vec![256, 512]);
        let warned: Vec<_> =
            report.diagnostics().iter().filter(|d| d.code == codes::SERVER_MEMORY).collect();
        assert_eq!(warned.len(), 4, "{}", report.to_text());
        assert!(warned.iter().all(|d| d.severity == Severity::Warning));
        assert!(warned[0].message.contains("512 MB"), "{}", warned[0].message);
        assert!(
            !codes_of(&lint_with_servers(&doc, vec![512, 2048])).contains(&codes::SERVER_MEMORY)
        );
        // Exactly-fitting is fine; no --server-memory means no opinion.
        assert!(!codes_of(&lint_with_servers(&doc, vec![1000])).contains(&codes::SERVER_MEMORY));
        assert!(!codes_of(&lint(&doc)).contains(&codes::SERVER_MEMORY));
    }

    #[test]
    fn reactor_capacity_judges_deployment_against_host_limits() {
        use crate::engine::DeploymentShape;
        let doc = figure2_descriptor(2);
        let lint_shape = |shape: DeploymentShape| {
            Engine::with_default_passes()
                .lint_cnx(&doc, &LintOptions { deployment: Some(shape), ..LintOptions::default() })
        };
        // 10k peers against a 1024-fd soft limit, 4 shards on 2 cores:
        // both findings fire, as warnings.
        let report = lint_shape(DeploymentShape {
            peer_capacity: 10_000,
            reactor_shards: 4,
            fd_soft_limit: Some(1024),
            available_cores: Some(2),
        });
        let warned: Vec<_> =
            report.diagnostics().iter().filter(|d| d.code == codes::REACTOR_CAPACITY).collect();
        assert_eq!(warned.len(), 2, "{}", report.to_text());
        assert!(warned.iter().all(|d| d.severity == Severity::Warning));
        assert!(warned.iter().any(|d| d.message.contains("1024")), "{}", report.to_text());
        assert!(
            warned.iter().any(|d| d.message.contains("available core")),
            "{}",
            report.to_text()
        );
        // A shape that fits stays quiet, fd overhead included: 1010 peers
        // plus 3+3+2*2 = 10 overhead fds exactly meets a 1020 limit...
        let fits = DeploymentShape {
            peer_capacity: 1010,
            reactor_shards: 2,
            fd_soft_limit: Some(1020),
            available_cores: Some(2),
        };
        assert!(lint_shape(fits.clone()).is_empty());
        // ...and one more peer tips it over.
        let report = lint_shape(DeploymentShape { peer_capacity: 1011, ..fits });
        assert!(codes_of(&report).contains(&codes::REACTOR_CAPACITY), "{}", report.to_text());
        // Auto shards (0) resolve within the core count, so only the fd
        // axis can warn; explicit over-sharding warns on its own.
        let report = lint_shape(DeploymentShape {
            peer_capacity: 1,
            reactor_shards: 0,
            fd_soft_limit: Some(1024),
            available_cores: Some(1),
        });
        assert!(report.is_empty(), "{}", report.to_text());
        let report = lint_shape(DeploymentShape {
            peer_capacity: 1,
            reactor_shards: 3,
            fd_soft_limit: Some(1024),
            available_cores: Some(2),
        });
        assert_eq!(codes_of(&report), vec![codes::REACTOR_CAPACITY]);
        // No deployment shape means no opinion.
        assert!(lint(&doc).is_empty());
    }

    #[test]
    fn roundtrip_drift_surfaces_as_cn040() {
        let mut doc = figure2_descriptor(2);
        doc.client.jobs[0].tasks[0].req.extras.push(("cpus".into(), "4".into()));
        let report = lint(&doc);
        assert_eq!(codes_of(&report), vec![codes::ROUNDTRIP_DRIFT]);
        assert!(report.to_text().contains("cpus"), "{}", report.to_text());
    }

    #[test]
    fn invalid_documents_skip_downstream_passes_gracefully() {
        // A cyclic job: validity errors come out, the DAG-dependent passes
        // (redundant-depends, parallelism, roundtrip) skip instead of
        // panicking.
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[0].depends = vec!["tctask999".into()];
        let report = lint(&doc);
        assert!(codes_of(&report).contains(&codes::DEPENDENCY_CYCLE));
    }
}
