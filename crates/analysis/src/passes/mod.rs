//! Built-in lint passes, grouped by the artifact they inspect.

pub mod cnx;
pub mod model;
