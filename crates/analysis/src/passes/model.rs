//! Lint passes over UML activity models.
//!
//! As on the CNX side, the validity pass re-routes
//! `cn_model::validate::validate_all` through the engine so model problems
//! come out with stable codes next to everything else. Models have no text
//! spans — diagnostics here are spanless and sort after spanned ones.

use cn_model::validate::validate_all;
use cn_model::{NodeId, NodeKind, ValidationError};

use crate::diag::{Diagnostic, Severity};
use crate::engine::{codes, ModelContext, ModelPass};

/// The default model pass set, in registration order.
pub fn default_passes() -> Vec<Box<dyn ModelPass>> {
    vec![Box::new(ValidityPass), Box::new(ForkJoinPass), Box::new(RoundtripPass)]
}

/// CN020–CN029: semantic validity, re-routed from
/// [`cn_model::validate::validate_all`].
pub struct ValidityPass;

impl ModelPass for ValidityPass {
    fn name(&self) -> &'static str {
        "model-validity"
    }

    fn run(&self, ctx: &ModelContext<'_>, out: &mut Vec<Diagnostic>) {
        for err in validate_all(ctx.graph) {
            out.push(map_validation_error(&err));
        }
    }
}

fn map_validation_error(err: &ValidationError) -> Diagnostic {
    let text = err.to_string();
    let code = match err {
        ValidationError::NoInitial => codes::MODEL_NO_INITIAL,
        ValidationError::MultipleInitials => codes::MODEL_MULTIPLE_INITIALS,
        ValidationError::NoFinal => codes::MODEL_NO_FINAL,
        ValidationError::Unreachable(_) => codes::MODEL_UNREACHABLE,
        ValidationError::Cycle(names) => {
            return Diagnostic::new(codes::MODEL_CYCLE, Severity::Error, text)
                .with_related(names.iter().cloned());
        }
        ValidationError::DuplicateTaskName(_) => codes::MODEL_DUPLICATE_TASK,
        ValidationError::MissingTag { .. } => codes::MODEL_MISSING_TAG,
        ValidationError::DynamicWithoutMultiplicity(_) => codes::MODEL_DYNAMIC_NO_MULTIPLICITY,
        ValidationError::DanglingTransition => codes::MODEL_DANGLING_TRANSITION,
        ValidationError::EmptyGraph => codes::MODEL_EMPTY,
    };
    Diagnostic::new(code, Severity::Error, text)
}

/// CN030: degenerate or unbalanced fork/join structure.
///
/// A fork that spawns a single branch (or a join that merges one) is legal
/// UML but almost always a modelling mistake — the pseudostate does
/// nothing. A diagram whose fork and join counts differ usually lost a
/// pseudostate during editing.
pub struct ForkJoinPass;

impl ModelPass for ForkJoinPass {
    fn name(&self) -> &'static str {
        "fork-join"
    }

    fn run(&self, ctx: &ModelContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.graph;
        let mut forks: Vec<NodeId> = Vec::new();
        let mut joins: Vec<NodeId> = Vec::new();
        for n in &g.nodes {
            match n.kind {
                NodeKind::Fork => forks.push(n.id),
                NodeKind::Join => joins.push(n.id),
                _ => {}
            }
        }
        for &f in &forks {
            let out_degree = g.successors(f).count();
            if out_degree < 2 {
                out.push(Diagnostic::new(
                    codes::FORK_JOIN_IMBALANCE,
                    Severity::Warning,
                    format!(
                        "fork node #{} has {out_degree} outgoing branch(es); a fork should spawn at least two",
                        f.0
                    ),
                ));
            }
        }
        for &j in &joins {
            let in_degree = g.predecessors(j).count();
            if in_degree < 2 {
                out.push(Diagnostic::new(
                    codes::FORK_JOIN_IMBALANCE,
                    Severity::Warning,
                    format!(
                        "join node #{} has {in_degree} incoming branch(es); a join should merge at least two",
                        j.0
                    ),
                ));
            }
        }
        if forks.len() != joins.len() {
            out.push(Diagnostic::new(
                codes::FORK_JOIN_IMBALANCE,
                Severity::Warning,
                format!(
                    "activity has {} fork(s) but {} join(s); concurrent branches are not rejoined symmetrically",
                    forks.len(),
                    joins.len()
                ),
            ));
        }
    }
}

/// CN040: information the XMI → CNX → XMI trip would lose.
pub struct RoundtripPass;

impl ModelPass for RoundtripPass {
    fn name(&self) -> &'static str {
        "model-roundtrip"
    }

    fn run(&self, ctx: &ModelContext<'_>, out: &mut Vec<Diagnostic>) {
        // Drift is only meaningful for models the validator accepts.
        if !validate_all(ctx.graph).is_empty() {
            return;
        }
        for drift in cn_transform::model_roundtrip_drift(ctx.graph) {
            out.push(Diagnostic::new(
                codes::ROUNDTRIP_DRIFT,
                Severity::Warning,
                match &drift.task {
                    Some(task) => format!("task {task:?}: {}", drift.detail),
                    None => drift.detail.clone(),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, LintOptions};
    use crate::report::LintReport;
    use cn_model::activity::ActionState;
    use cn_model::{transitive_closure_model, ActivityGraph};

    fn lint(graph: &ActivityGraph) -> LintReport {
        Engine::with_default_passes().lint_model(graph, &LintOptions::default())
    }

    fn codes_of(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn transitive_closure_model_is_clean() {
        let report = lint(&transitive_closure_model(5));
        assert!(report.is_empty(), "{}", report.to_text());
    }

    #[test]
    fn validity_errors_get_model_codes() {
        let report = lint(&ActivityGraph::new("empty"));
        assert_eq!(codes_of(&report), vec![codes::MODEL_EMPTY]);

        // An untagged action: missing jar and class.
        let mut g = ActivityGraph::new("untagged");
        let initial = g.add_node(NodeKind::Initial);
        let action = g.add_node(NodeKind::Action(ActionState::new("t")));
        let fin = g.add_node(NodeKind::Final);
        g.add_transition(initial, action);
        g.add_transition(action, fin);
        let report = lint(&g);
        assert_eq!(codes_of(&report), vec![codes::MODEL_MISSING_TAG, codes::MODEL_MISSING_TAG]);
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn dynamic_without_multiplicity_maps_to_cn027() {
        let mut g = transitive_closure_model(2);
        let a = g.action_by_name_mut("TCTask1").unwrap();
        a.dynamic = true;
        a.multiplicity = None;
        let report = lint(&g);
        assert!(codes_of(&report).contains(&codes::MODEL_DYNAMIC_NO_MULTIPLICITY));
    }

    #[test]
    fn single_branch_fork_warns() {
        let mut g = ActivityGraph::new("degenerate");
        let initial = g.add_node(NodeKind::Initial);
        let fork = g.add_node(NodeKind::Fork);
        let mut a = ActionState::new("t");
        a.tags.set("jar", "t.jar");
        a.tags.set("class", "T");
        let action = g.add_node(NodeKind::Action(a));
        let join = g.add_node(NodeKind::Join);
        let fin = g.add_node(NodeKind::Final);
        g.add_transition(initial, fork);
        g.add_transition(fork, action);
        g.add_transition(action, join);
        g.add_transition(join, fin);
        let report = lint(&g);
        assert_eq!(codes_of(&report), vec![codes::FORK_JOIN_IMBALANCE, codes::FORK_JOIN_IMBALANCE]);
        assert_eq!(report.max_severity(), Some(Severity::Warning));
        assert!(report.to_text().contains("outgoing branch"), "{}", report.to_text());
    }

    #[test]
    fn fork_join_count_mismatch_warns() {
        // Drop the join from a fork/join pair: workers flow straight to the
        // joiner action.
        let mut g = ActivityGraph::new("lost-join");
        let initial = g.add_node(NodeKind::Initial);
        let fork = g.add_node(NodeKind::Fork);
        let mk = |name: &str| {
            let mut a = ActionState::new(name);
            a.tags.set("jar", "t.jar");
            a.tags.set("class", "T");
            a
        };
        let w1 = g.add_node(NodeKind::Action(mk("w1")));
        let w2 = g.add_node(NodeKind::Action(mk("w2")));
        let joiner = g.add_node(NodeKind::Action(mk("joiner")));
        let fin = g.add_node(NodeKind::Final);
        g.add_transition(initial, fork);
        g.add_transition(fork, w1);
        g.add_transition(fork, w2);
        g.add_transition(w1, joiner);
        g.add_transition(w2, joiner);
        g.add_transition(joiner, fin);
        let report = lint(&g);
        assert!(codes_of(&report).contains(&codes::FORK_JOIN_IMBALANCE));
        assert!(report.to_text().contains("1 fork(s) but 0 join(s)"), "{}", report.to_text());
    }

    #[test]
    fn balanced_fork_join_is_quiet() {
        // transitive_closure_model has a matched fork/join pair.
        let report = lint(&transitive_closure_model(3));
        assert!(!codes_of(&report).contains(&codes::FORK_JOIN_IMBALANCE));
    }

    #[test]
    fn model_roundtrip_drift_surfaces_as_cn040() {
        let mut g = transitive_closure_model(2);
        g.action_by_name_mut("TCTask1").unwrap().tags.set("gpu", "1");
        let report = lint(&g);
        assert_eq!(codes_of(&report), vec![codes::ROUNDTRIP_DRIFT]);
        assert!(report.to_text().contains("gpu"), "{}", report.to_text());
    }

    #[test]
    fn invalid_model_skips_roundtrip_pass() {
        // Missing tags AND a custom tag: only the validity errors surface,
        // the drift pass stays out of the way.
        let mut g = ActivityGraph::new("both");
        let initial = g.add_node(NodeKind::Initial);
        let mut a = ActionState::new("t");
        a.tags.set("gpu", "1");
        let action = g.add_node(NodeKind::Action(a));
        let fin = g.add_node(NodeKind::Final);
        g.add_transition(initial, action);
        g.add_transition(action, fin);
        let report = lint(&g);
        assert!(!codes_of(&report).contains(&codes::ROUNDTRIP_DRIFT));
        assert!(codes_of(&report).contains(&codes::MODEL_MISSING_TAG));
    }
}
