//! The pass registry and lint entry points.
//!
//! A lint run is: build a context, run every registered pass over it,
//! collect diagnostics into a [`LintReport`]. Passes are trait objects so
//! downstream code can register extra project-specific passes next to the
//! built-in set.

use cn_cluster::ClusterCapacity;
use cn_cnx::CnxDocument;
use cn_model::ActivityGraph;

use crate::diag::{Diagnostic, Severity};
use crate::passes;
use crate::report::LintReport;

/// Tuning knobs for a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Cluster capacity to check resource requirements against. Without it
    /// the capacity passes (CN011/CN015/CN016) stay quiet or degrade to
    /// their capacity-free variants.
    pub capacity: Option<ClusterCapacity>,
    /// Per-server memory, as configured on a wire deployment's `cnctl
    /// serve --memory` flags. When set, CN019 warns about tasks that no
    /// configured server could ever host.
    pub server_memory_mb: Option<Vec<u64>>,
    /// Fraction of the wire frame limit (`MAX_FRAME_BYTES`) a task's
    /// estimated parameter payload may reach before CN009 warns. `None`
    /// uses [`passes::cnx::DEFAULT_PAYLOAD_WARN_FRACTION`]; `0` disables
    /// the check.
    pub payload_warn_fraction: Option<f64>,
    /// Shape of the wire deployment the descriptor will run on (`cnctl
    /// lint --peer-capacity/--reactor-shards`). When set, CN057 judges it
    /// against the host's fd soft limit and core count.
    pub deployment: Option<DeploymentShape>,
    /// Shape of the portal deployment in front of the cluster (`cnctl
    /// lint --portal-max-inflight/...`). When set, CN058 judges it against
    /// the host's fd soft limit, core count, and memory.
    pub portal: Option<PortalShape>,
    /// Shape of the cluster's scheduler (`cnctl lint --steal-threshold/...`).
    /// When set, CN059 judges the steal and fair-admission knobs against
    /// the descriptor's job shapes.
    pub scheduler: Option<SchedulerShape>,
}

/// A wire deployment's shape for the CN057 host-capacity check: how many
/// peer connections a serving process is expected to hold and how many
/// reactor shards it was configured with, plus optional host-limit
/// overrides so a plan can be judged against a *target* machine (and so
/// goldens stay reproducible) instead of the machine running the lint.
#[derive(Debug, Clone)]
pub struct DeploymentShape {
    /// Concurrent peer connections the process is expected to hold.
    pub peer_capacity: u64,
    /// Configured `--reactor-shards` value (0 = auto).
    pub reactor_shards: u64,
    /// Process fd soft limit; `None` probes the live rlimit.
    pub fd_soft_limit: Option<u64>,
    /// Core count; `None` probes the live machine.
    pub available_cores: Option<u64>,
}

/// A portal deployment's shape for the CN058 capacity check: the
/// admission and HTTP limits `cnctl portal` was (or will be) launched
/// with, plus optional host-limit overrides so a plan can be judged
/// against a *target* machine (and so goldens stay reproducible).
#[derive(Debug, Clone)]
pub struct PortalShape {
    /// Configured `--max-inflight` admission cap.
    pub max_inflight: u64,
    /// Configured `--reactor-shards` value (0 = auto).
    pub reactor_shards: u64,
    /// Configured `--body-limit` request body cap, in bytes.
    pub max_body_bytes: u64,
    /// Process fd soft limit; `None` probes the live rlimit.
    pub fd_soft_limit: Option<u64>,
    /// Core count; `None` probes the live machine.
    pub available_cores: Option<u64>,
    /// Host memory budget for buffered bodies; `None` skips that check.
    pub host_memory_mb: Option<u64>,
}

/// The scheduler's shape for the CN059 check: the work-stealing and
/// fair-admission knobs a cluster was (or will be) launched with, judged
/// against the descriptor's job shapes. Mis-sized knobs don't fail — they
/// quietly disable the optimization (unreachable steal threshold) or turn
/// it pathological (zero threshold, heartbeat storms), which is exactly
/// the kind of thing worth catching before anything launches.
#[derive(Debug, Clone)]
pub struct SchedulerShape {
    /// Configured steal threshold: a TaskManager is a raid victim only
    /// when its run queue is at least this deep.
    pub steal_threshold: u64,
    /// Configured load-report heartbeat, in milliseconds.
    pub steal_heartbeat_ms: u64,
    /// Configured deficit-round-robin quantum for fair admission, in task
    /// `memory_mb` cost units. `None` leaves the quantum checks out.
    pub fair_quantum_mb: Option<u64>,
}

/// Everything a CNX pass can look at.
pub struct CnxContext<'a> {
    pub doc: &'a CnxDocument,
    pub capacity: Option<&'a ClusterCapacity>,
    /// `--server-memory` values for the CN019 wire-deployment check.
    pub server_memory_mb: Option<&'a [u64]>,
    /// Resolved CN009 threshold as a fraction of the wire frame limit.
    pub payload_warn_fraction: f64,
    /// Deployment shape for the CN057 host-capacity check.
    pub deployment: Option<&'a DeploymentShape>,
    /// Portal shape for the CN058 capacity check.
    pub portal: Option<&'a PortalShape>,
    /// Scheduler shape for the CN059 steal/fairness check.
    pub scheduler: Option<&'a SchedulerShape>,
}

/// Everything a model pass can look at.
pub struct ModelContext<'a> {
    pub graph: &'a ActivityGraph,
    pub capacity: Option<&'a ClusterCapacity>,
}

/// A lint pass over a CNX descriptor.
pub trait CnxPass {
    /// Stable pass name (shows up in docs and pass listings).
    fn name(&self) -> &'static str;
    fn run(&self, ctx: &CnxContext<'_>, out: &mut Vec<Diagnostic>);
}

/// A lint pass over a UML activity model.
pub trait ModelPass {
    fn name(&self) -> &'static str;
    fn run(&self, ctx: &ModelContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The engine: an ordered set of passes. Report order does not depend on
/// registration order (the report sorts), but listings print in it.
#[derive(Default)]
pub struct Engine {
    cnx_passes: Vec<Box<dyn CnxPass>>,
    model_passes: Vec<Box<dyn ModelPass>>,
}

impl Engine {
    /// An engine with no passes registered.
    pub fn empty() -> Engine {
        Engine::default()
    }

    /// The built-in pass set — what `cnctl lint` runs.
    pub fn with_default_passes() -> Engine {
        let mut e = Engine::empty();
        for p in passes::cnx::default_passes() {
            e.cnx_passes.push(p);
        }
        for p in passes::model::default_passes() {
            e.model_passes.push(p);
        }
        e
    }

    pub fn register_cnx(&mut self, pass: Box<dyn CnxPass>) -> &mut Self {
        self.cnx_passes.push(pass);
        self
    }

    pub fn register_model(&mut self, pass: Box<dyn ModelPass>) -> &mut Self {
        self.model_passes.push(pass);
        self
    }

    /// Registered pass names, CNX passes first.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.cnx_passes
            .iter()
            .map(|p| p.name())
            .chain(self.model_passes.iter().map(|p| p.name()))
            .collect()
    }

    /// Lint a parsed CNX descriptor.
    pub fn lint_cnx(&self, doc: &CnxDocument, opts: &LintOptions) -> LintReport {
        let ctx = CnxContext {
            doc,
            capacity: opts.capacity.as_ref(),
            server_memory_mb: opts.server_memory_mb.as_deref(),
            payload_warn_fraction: opts
                .payload_warn_fraction
                .unwrap_or(passes::cnx::DEFAULT_PAYLOAD_WARN_FRACTION),
            deployment: opts.deployment.as_ref(),
            portal: opts.portal.as_ref(),
            scheduler: opts.scheduler.as_ref(),
        };
        let mut out = Vec::new();
        for pass in &self.cnx_passes {
            pass.run(&ctx, &mut out);
        }
        LintReport::new(out)
    }

    /// Lint an activity model.
    pub fn lint_model(&self, graph: &ActivityGraph, opts: &LintOptions) -> LintReport {
        let ctx = ModelContext { graph, capacity: opts.capacity.as_ref() };
        let mut out = Vec::new();
        for pass in &self.model_passes {
            pass.run(&ctx, &mut out);
        }
        LintReport::new(out)
    }
}

/// Lint CNX source text with the default engine. Unparseable input yields a
/// single CN000 error (with the parser's span when it has one).
pub fn lint_cnx_source(src: &str, opts: &LintOptions) -> LintReport {
    match cn_cnx::parse_cnx(src) {
        Ok(doc) => Engine::with_default_passes().lint_cnx(&doc, opts),
        Err(e) => {
            let mut d = Diagnostic::new(codes::PARSE, Severity::Error, e.msg);
            if let Some(span) = e.span {
                d = d.with_span(span);
            }
            LintReport::new(vec![d])
        }
    }
}

/// Lint XMI source text with the default engine: import the model, run the
/// model passes. Parse/import failure yields CN000.
pub fn lint_xmi_source(src: &str, opts: &LintOptions) -> LintReport {
    let doc = match cn_xml::parse(src) {
        Ok(doc) => doc,
        Err(e) => {
            let d = Diagnostic::new(codes::PARSE, Severity::Error, e.kind.to_string())
                .with_span(cn_cnx::Span::from(e.pos));
            return LintReport::new(vec![d]);
        }
    };
    match cn_model::import_xmi(&doc) {
        Ok(graph) => Engine::with_default_passes().lint_model(&graph, opts),
        Err(e) => {
            LintReport::new(vec![Diagnostic::new(codes::PARSE, Severity::Error, e.to_string())])
        }
    }
}

/// Stable diagnostic codes. The table in DESIGN.md documents each one; a
/// test there keeps the two in sync.
pub mod codes {
    /// Input could not be parsed/imported at all.
    pub const PARSE: &str = "CN000";

    // CNX semantic validity (mapped from `cn_cnx::validate_all`).
    pub const NO_JOBS: &str = "CN001";
    pub const EMPTY_JOB: &str = "CN002";
    pub const EMPTY_FIELD: &str = "CN003";
    pub const ZERO_MEMORY: &str = "CN004";
    pub const BAD_MULTIPLICITY: &str = "CN005";
    pub const UNKNOWN_DEPENDENCY: &str = "CN006";
    pub const DEPENDENCY_CYCLE: &str = "CN007";
    pub const DUPLICATE_TASK: &str = "CN008";
    /// A task's estimated parameter payload approaches the wire frame
    /// limit (`MAX_FRAME_BYTES`); oversized frames are rejected on socket
    /// deployments.
    pub const PAYLOAD_SIZE: &str = "CN009";

    // CNX style/consistency passes.
    pub const DUPLICATE_DEPENDS: &str = "CN010";
    pub const TASK_EXCEEDS_NODE_MEMORY: &str = "CN011";
    pub const PARAM_TYPE_MISMATCH: &str = "CN012";
    pub const ORPHAN_TASK: &str = "CN013";
    pub const REDUNDANT_DEPENDS: &str = "CN014";
    pub const UNBOUNDED_MULTIPLICITY: &str = "CN015";
    pub const MEMORY_OVERSUBSCRIBED: &str = "CN016";
    pub const SERIAL_JOB: &str = "CN017";
    pub const RECORDER_CAPACITY: &str = "CN018";
    /// A task requests more memory than any `--server-memory` value (wire
    /// deployments).
    pub const SERVER_MEMORY: &str = "CN019";

    // Model validity (mapped from `cn_model::validate_all`).
    pub const MODEL_NO_INITIAL: &str = "CN020";
    pub const MODEL_MULTIPLE_INITIALS: &str = "CN021";
    pub const MODEL_NO_FINAL: &str = "CN022";
    pub const MODEL_UNREACHABLE: &str = "CN023";
    pub const MODEL_CYCLE: &str = "CN024";
    pub const MODEL_DUPLICATE_TASK: &str = "CN025";
    pub const MODEL_MISSING_TAG: &str = "CN026";
    pub const MODEL_DYNAMIC_NO_MULTIPLICITY: &str = "CN027";
    pub const MODEL_DANGLING_TRANSITION: &str = "CN028";
    pub const MODEL_EMPTY: &str = "CN029";

    // Model structure passes.
    pub const FORK_JOIN_IMBALANCE: &str = "CN030";

    // Cross-artifact consistency.
    pub const ROUNDTRIP_DRIFT: &str = "CN040";

    // Runtime concurrency (`cnctl check`, reported out of `cn-check` model
    // runs; see DESIGN.md §11).
    /// The merged lock-order graph contains a cycle: two schedules acquire
    /// the same locks in opposite orders.
    pub const LOCK_ORDER_CYCLE: &str = "CN050";
    /// A condvar wait was entered while holding an unrelated lock.
    pub const CV_WHILE_HOLDING: &str = "CN051";
    /// A schedule reached a state where every live task is blocked.
    pub const DEADLOCK: &str = "CN052";
    /// A task re-acquired a non-reentrant lock it already holds.
    pub const DOUBLE_LOCK: &str = "CN053";
    /// A blocked wait only made progress via a forced timeout: a wakeup the
    /// code should have delivered never arrived.
    pub const LOST_NOTIFY: &str = "CN054";
    /// A scenario assertion failed under some interleaving.
    pub const SCHEDULE_ASSERT: &str = "CN055";
    /// A schedule exceeded the step budget (livelock / unbounded retry).
    pub const STEP_LIMIT: &str = "CN056";

    // Wire-deployment capacity (`cnctl lint --peer-capacity`; see
    // DESIGN.md §12).
    /// The deployment's peer capacity exceeds the process fd soft limit,
    /// or its `--reactor-shards` exceeds the available cores.
    pub const REACTOR_CAPACITY: &str = "CN057";
    /// The portal's admission/HTTP limits exceed what the host can hold:
    /// fds for in-flight submissions, shards versus cores, or buffered
    /// request bodies versus memory.
    pub const PORTAL_CAPACITY: &str = "CN058";
    /// The scheduler's steal/fairness knobs are mis-sized for the
    /// descriptor or the cluster: a steal threshold the run queues can
    /// never reach (stealing silently off), a zero threshold or heartbeat
    /// (raid/report storms), a stale heartbeat, or a fairness quantum
    /// below the largest task cost (multi-round admission latency).
    pub const SCHEDULER_SHAPE: &str = "CN059";
}

/// Every code constant, for exhaustiveness checks (tests, docs sync).
pub const ALL_CODES: &[&str] = &[
    codes::PARSE,
    codes::NO_JOBS,
    codes::EMPTY_JOB,
    codes::EMPTY_FIELD,
    codes::ZERO_MEMORY,
    codes::BAD_MULTIPLICITY,
    codes::UNKNOWN_DEPENDENCY,
    codes::DEPENDENCY_CYCLE,
    codes::DUPLICATE_TASK,
    codes::PAYLOAD_SIZE,
    codes::DUPLICATE_DEPENDS,
    codes::TASK_EXCEEDS_NODE_MEMORY,
    codes::PARAM_TYPE_MISMATCH,
    codes::ORPHAN_TASK,
    codes::REDUNDANT_DEPENDS,
    codes::UNBOUNDED_MULTIPLICITY,
    codes::MEMORY_OVERSUBSCRIBED,
    codes::SERIAL_JOB,
    codes::RECORDER_CAPACITY,
    codes::SERVER_MEMORY,
    codes::MODEL_NO_INITIAL,
    codes::MODEL_MULTIPLE_INITIALS,
    codes::MODEL_NO_FINAL,
    codes::MODEL_UNREACHABLE,
    codes::MODEL_CYCLE,
    codes::MODEL_DUPLICATE_TASK,
    codes::MODEL_MISSING_TAG,
    codes::MODEL_DYNAMIC_NO_MULTIPLICITY,
    codes::MODEL_DANGLING_TRANSITION,
    codes::MODEL_EMPTY,
    codes::FORK_JOIN_IMBALANCE,
    codes::ROUNDTRIP_DRIFT,
    codes::LOCK_ORDER_CYCLE,
    codes::CV_WHILE_HOLDING,
    codes::DEADLOCK,
    codes::DOUBLE_LOCK,
    codes::LOST_NOTIFY,
    codes::SCHEDULE_ASSERT,
    codes::STEP_LIMIT,
    codes::REACTOR_CAPACITY,
    codes::PORTAL_CAPACITY,
    codes::SCHEDULER_SHAPE,
];

#[cfg(test)]
mod docs_sync {
    use super::ALL_CODES;

    /// DESIGN.md's code table and `codes` must not drift apart: every
    /// constant has exactly one table row (`| CNxxx | ... |`).
    #[test]
    fn every_code_is_documented_in_design_md() {
        let design =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
                .expect("read DESIGN.md");
        for code in ALL_CODES {
            let row = format!("| {code} |");
            assert_eq!(
                design.matches(&row).count(),
                1,
                "expected exactly one DESIGN.md table row for {code}"
            );
        }
    }

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for code in ALL_CODES {
            assert!(code.len() == 5 && code.starts_with("CN"), "malformed code {code}");
            assert!(code[2..].bytes().all(|b| b.is_ascii_digit()), "malformed code {code}");
            assert!(seen.insert(code), "duplicate code {code}");
        }
    }
}
