//! Integration tests for the reactor-driven HTTP server: a real
//! `PortalServer` with a stub runner, exercised by raw `TcpStream`
//! clients (keep-alive, pipelining, chunked journal streaming, admission
//! rejections, malformed input).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_observe::Recorder;
use cn_portal::http::ChunkedDecoder;
use cn_portal::{PortalConfig, PortalServer, StubRunner};

const STUB_JOURNAL: &str = "{\"seq\":1,\"cat\":\"wire\"}\n{\"seq\":2,\"cat\":\"wire\"}\n";

fn start_portal(cfg: PortalConfig, delay: Duration) -> PortalServer {
    let runner = Arc::new(StubRunner { journal: STUB_JOURNAL.to_string(), delay });
    PortalServer::start(cfg, runner, Recorder::new()).expect("portal start")
}

/// A test client: raw stream plus the carry-over buffer pipelined
/// responses need (one read may deliver bytes of the next response).
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

fn connect(port: u16) -> Client {
    let s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.set_nodelay(true).unwrap();
    Client { stream: s, buf: Vec::new() }
}

struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

impl Client {
    fn fill(&mut self) -> usize {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).expect("read");
        self.buf.extend_from_slice(&chunk[..n]);
        n
    }

    /// Minimal blocking response reader: enough HTTP/1.1 for the tests
    /// (Content-Length and chunked framing). Leftover bytes stay in the
    /// carry-over buffer for the next pipelined response.
    fn read_response(&mut self) -> HttpResponse {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            assert!(
                self.fill() > 0,
                "eof before response head; got {:?}",
                String::from_utf8_lossy(&self.buf)
            );
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("utf8 head");
        self.buf.drain(..head_end);
        let mut lines = head.split("\r\n");
        let status: u16 =
            lines.next().unwrap().split_whitespace().nth(1).unwrap().parse().expect("status");
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();

        let chunked = headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            let mut dec = ChunkedDecoder::new();
            let mut body = Vec::new();
            loop {
                let used = dec.advance(&self.buf, &mut body).expect("chunked framing");
                self.buf.drain(..used);
                if dec.is_done() {
                    break;
                }
                assert!(self.fill() > 0, "eof mid chunked body");
            }
            body
        } else {
            let len: usize = headers
                .iter()
                .find(|(n, _)| n == "content-length")
                .map(|(_, v)| v.parse().expect("length"))
                .unwrap_or(0);
            while self.buf.len() < len {
                assert!(self.fill() > 0, "eof mid body");
            }
            self.buf.drain(..len).collect()
        };
        HttpResponse { status, headers, body }
    }

    fn write_all(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).unwrap();
    }

    fn read_to_end(&mut self) -> Vec<u8> {
        let mut rest = std::mem::take(&mut self.buf);
        self.stream.read_to_end(&mut rest).unwrap();
        rest
    }
}

fn post_job(c: &mut Client, body: &[u8]) -> HttpResponse {
    let head = format!("POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len());
    c.write_all(head.as_bytes());
    c.write_all(body);
    c.read_response()
}

fn get(c: &mut Client, path: &str) -> HttpResponse {
    c.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes());
    c.read_response()
}

fn job_id(resp: &HttpResponse) -> String {
    let body = String::from_utf8_lossy(&resp.body).to_string();
    let start = body.find("\"id\":\"").expect("id field") + 6;
    let end = body[start..].find('"').unwrap() + start;
    body[start..end].to_string()
}

fn figure2_cnx() -> String {
    cn_cnx::write_cnx(&cn_cnx::ast::figure2_descriptor(2))
}

fn wait_done(stream: &mut Client, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = get(stream, &format!("/jobs/{id}"));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8_lossy(&resp.body).to_string();
        if body.contains("\"done\"") {
            return;
        }
        assert!(!body.contains("\"failed\""), "job failed: {body}");
        assert!(Instant::now() < deadline, "job never finished: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn submit_poll_and_stream_journal_on_one_keepalive_connection() {
    let portal = start_portal(PortalConfig::default(), Duration::ZERO);
    let mut c = connect(portal.port());

    let resp = post_job(&mut c, figure2_cnx().as_bytes());
    assert_eq!(resp.status, 202, "{}", String::from_utf8_lossy(&resp.body));
    let id = job_id(&resp);
    assert_eq!(resp.header("location").unwrap(), format!("/jobs/{id}"));

    wait_done(&mut c, &id);

    let journal = get(&mut c, &format!("/jobs/{id}/journal"));
    assert_eq!(journal.status, 200);
    assert_eq!(journal.header("transfer-encoding").unwrap(), "chunked");
    assert_eq!(String::from_utf8_lossy(&journal.body), STUB_JOURNAL);

    // The connection survived submit + polls + a chunked stream.
    let health = get(&mut c, "/healthz");
    assert_eq!(health.status, 200);
}

#[test]
fn journal_streams_while_job_still_running() {
    // The stub sleeps, so the journal GET must wait for completion and
    // then stream — exercising the timer-wheel polling path.
    let portal = start_portal(PortalConfig::default(), Duration::from_millis(300));
    let mut c = connect(portal.port());
    let resp = post_job(&mut c, figure2_cnx().as_bytes());
    assert_eq!(resp.status, 202);
    let id = job_id(&resp);
    let journal = get(&mut c, &format!("/jobs/{id}/journal"));
    assert_eq!(journal.status, 200);
    assert_eq!(String::from_utf8_lossy(&journal.body), STUB_JOURNAL);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let portal = start_portal(PortalConfig::default(), Duration::ZERO);
    let mut c = connect(portal.port());
    // Two requests in one segment; responses must come back in order.
    c.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /nope HTTP/1.1\r\n\r\n");
    let first = c.read_response();
    let second = c.read_response();
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 404);
}

#[test]
fn routing_errors_and_metrics() {
    let portal = start_portal(PortalConfig::default(), Duration::ZERO);
    let mut c = connect(portal.port());
    assert_eq!(get(&mut c, "/jobs/j-999").status, 404);
    assert_eq!(get(&mut c, "/jobs/bogus").status, 404);

    c.write_all(b"DELETE /jobs/j-1 HTTP/1.1\r\n\r\n");
    let resp = c.read_response();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow").unwrap(), "GET");

    c.write_all(b"GET /jobs HTTP/1.1\r\n\r\n");
    assert_eq!(c.read_response().status, 405);

    let metrics = get(&mut c, "/metrics");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8_lossy(&metrics.body).to_string();
    assert!(text.contains("portal.http.requests "), "{text}");
    assert!(text.contains("portal.conns.open 1"), "{text}");
}

#[test]
fn admission_caps_reject_with_429_and_503() {
    // One slot total, one per address, and a slow runner: the second
    // submission from the same client must bounce.
    let cfg = PortalConfig {
        max_inflight: 1,
        per_addr_inflight: 1,
        workers: 1,
        ..PortalConfig::default()
    };
    let portal = start_portal(cfg, Duration::from_millis(500));
    let mut c = connect(portal.port());
    let first = post_job(&mut c, figure2_cnx().as_bytes());
    assert_eq!(first.status, 202);
    let second = post_job(&mut c, figure2_cnx().as_bytes());
    // Either cap may fire first; both are "come back later".
    assert!(
        second.status == 429 || second.status == 503,
        "expected rejection, got {}",
        second.status
    );
    assert_eq!(portal.recorder().counter("portal.jobs.rejected").get(), 1);
}

#[test]
fn submitting_garbage_fails_the_job_not_the_server() {
    let portal = start_portal(PortalConfig::default(), Duration::ZERO);
    let mut c = connect(portal.port());
    let resp = post_job(&mut c, b"this is not a descriptor");
    assert_eq!(resp.status, 202, "admission is shape-blind; compile fails async");
    let id = job_id(&resp);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = get(&mut c, &format!("/jobs/{id}"));
        let body = String::from_utf8_lossy(&status.body).to_string();
        if body.contains("\"failed\"") {
            assert!(body.contains("CNX parse"), "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "job never failed: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
    // The journal of a failed job is its error line.
    let journal = get(&mut c, &format!("/jobs/{id}/journal"));
    assert_eq!(journal.status, 200);
    assert!(String::from_utf8_lossy(&journal.body).contains("CNX parse"));
}

#[test]
fn malformed_request_gets_400_then_close() {
    let portal = start_portal(PortalConfig::default(), Duration::ZERO);
    let mut c = connect(portal.port());
    c.write_all(b"NOT A REQUEST AT ALL\r\n\r\n");
    let resp = c.read_response();
    assert_eq!(resp.status, 400);
    // Server closes after a framing error: the next read is EOF.
    let rest = c.read_to_end();
    assert!(rest.is_empty(), "connection should be closed: {:?}", String::from_utf8_lossy(&rest));
}

#[test]
fn request_deadline_answers_408() {
    let cfg = PortalConfig { request_deadline: Duration::from_millis(100), ..Default::default() };
    let portal = start_portal(cfg, Duration::ZERO);
    let mut c = connect(portal.port());
    // Half a request, then silence: the shard timer must fire a 408.
    c.write_all(b"POST /jobs HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc");
    let resp = c.read_response();
    assert_eq!(resp.status, 408);
    assert_eq!(portal.recorder().counter("portal.http.deadline_408").get(), 1);
}

#[test]
fn many_connections_spread_over_shards() {
    let cfg = PortalConfig { reactor_shards: 4, ..Default::default() };
    let portal = start_portal(cfg, Duration::ZERO);
    let mut conns: Vec<Client> = (0..16).map(|_| connect(portal.port())).collect();
    for c in conns.iter_mut() {
        assert_eq!(get(c, "/healthz").status, 200);
    }
    assert_eq!(portal.recorder().gauge("portal.conns.open").get(), 16);
    assert_eq!(portal.recorder().counter("portal.conns.accepted").get(), 16);
}
