//! Property tests for the portal's HTTP front door, mirroring the wire
//! decoder's segmentation property: TCP may hand a connection handler
//! any split of the byte stream, and the incremental [`RequestParser`]
//! must produce the same requests, in order, as a one-shot parse — and
//! malformed input must fail with a clean `400`-family error, never a
//! panic or a desynchronized success.

use cn_portal::http::{begin_chunked, finish_chunked, write_chunk, RequestParser};
use proptest::prelude::*;

/// Build one well-formed pipelined stream from (path, body) pairs and
/// return the expected (path, body) sequence alongside it.
fn build_stream(reqs: &[(u8, Vec<u8>)]) -> (Vec<u8>, Vec<(String, Vec<u8>)>) {
    let mut stream = Vec::new();
    let mut expect = Vec::new();
    for (i, (path_tag, body)) in reqs.iter().enumerate() {
        let path = format!("/p{}", path_tag % 8);
        if body.is_empty() && i % 2 == 0 {
            stream.extend_from_slice(format!("GET {path} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes());
        } else {
            stream.extend_from_slice(
                format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len())
                    .as_bytes(),
            );
            stream.extend_from_slice(body);
        }
        expect.push((path, body.clone()));
    }
    (stream, expect)
}

fn parse_with_cuts(
    stream: &[u8],
    cuts: &[usize],
) -> Result<Vec<(String, Vec<u8>)>, cn_portal::HttpError> {
    let mut splits: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
    splits.push(0);
    splits.push(stream.len());
    splits.sort_unstable();
    let mut parser = RequestParser::new(1 << 20);
    let mut got = Vec::new();
    for pair in splits.windows(2) {
        parser.feed(&stream[pair[0]..pair[1]]);
        while let Some(req) = parser.next_request()? {
            got.push((req.target, req.body));
        }
    }
    Ok(got)
}

proptest! {
    /// Any segmentation of a well-formed pipelined stream parses to the
    /// same requests, in order, as feeding it all at once.
    #[test]
    fn arbitrary_segmentation_equals_one_shot(
        reqs in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..200)), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..32),
    ) {
        let (stream, expect) = build_stream(&reqs);
        let split = parse_with_cuts(&stream, &cuts).expect("well-formed stream");
        let oneshot = parse_with_cuts(&stream, &[]).expect("well-formed stream");
        prop_assert_eq!(&split, &oneshot);
        prop_assert_eq!(split.len(), expect.len());
        for ((got_path, got_body), (want_path, want_body)) in split.iter().zip(&expect) {
            prop_assert_eq!(got_path, want_path);
            prop_assert_eq!(got_body, want_body);
        }
    }

    /// A body encoded with the portal's chunked writer and re-parsed as a
    /// chunked request round-trips byte-identically, under any chunk size
    /// pattern and any read segmentation.
    #[test]
    fn chunked_round_trips(
        body in proptest::collection::vec(any::<u8>(), 0..2000),
        chunk_sizes in proptest::collection::vec(1usize..97, 1..12),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        // Encode with the response-side chunked writer, then graft the
        // chunk stream onto a request that declares chunked TE.
        let mut encoded = Vec::new();
        begin_chunked(&mut encoded, 200, "text/plain", true);
        let head_len = encoded.len();
        let mut off = 0;
        let mut i = 0;
        while off < body.len() {
            let n = chunk_sizes[i % chunk_sizes.len()].min(body.len() - off);
            write_chunk(&mut encoded, &body[off..off + n]);
            off += n;
            i += 1;
        }
        finish_chunked(&mut encoded);

        let mut stream =
            b"POST /jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec();
        stream.extend_from_slice(&encoded[head_len..]);

        let got = parse_with_cuts(&stream, &cuts).expect("well-formed chunked stream");
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0].1, &body);
    }

    /// Arbitrary garbage before the first CRLFCRLF either parses (it
    /// happened to be a valid head) or fails with a 4xx/5xx error — the
    /// parser never panics and an error is sticky.
    #[test]
    fn malformed_heads_error_cleanly(
        junk in proptest::collection::vec(any::<u8>(), 0..300),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut stream = junk.clone();
        stream.extend_from_slice(b"\r\n\r\n");
        match parse_with_cuts(&stream, &cuts) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!((400..=599).contains(&e.status), "status {}", e.status);
                // Sticky: a dead parser keeps reporting the same failure.
                let mut parser = RequestParser::new(1 << 20);
                parser.feed(&stream);
                let first = parser.next_request();
                prop_assert!(first.is_err());
                parser.feed(b"GET / HTTP/1.1\r\n\r\n");
                prop_assert!(parser.next_request().is_err());
            }
        }
    }

    /// Truncating a valid stream anywhere never yields a phantom request
    /// beyond the bytes actually delivered.
    #[test]
    fn truncation_never_fabricates_requests(
        body in proptest::collection::vec(any::<u8>(), 1..300),
        frac in 0usize..100,
    ) {
        let (stream, _) = build_stream(&[(0, body)]);
        let cut = stream.len() * frac / 100;
        let mut parser = RequestParser::new(1 << 20);
        parser.feed(&stream[..cut]);
        let got = parser.next_request().expect("prefix of a valid stream");
        prop_assert!(got.is_none());
        prop_assert!(parser.has_partial() || cut == 0);
        // Delivering the rest completes exactly one request.
        parser.feed(&stream[cut..]);
        prop_assert!(parser.next_request().expect("completed stream").is_some());
        prop_assert!(parser.next_request().expect("drained").is_none());
    }
}
