//! Hand-rolled HTTP/1.1: an incremental request parser plus response and
//! chunked-transfer encoders.
//!
//! The build environment is offline, so there is no hyper to lean on; the
//! parser follows [`cn_wire::FrameDecoder`]'s design instead — feed raw
//! segments exactly as the socket delivers them, pull complete requests
//! out, keep the partial tail buffered. Any segmentation of the same byte
//! stream yields the same request sequence (a property test pins this),
//! and malformed input NEVER panics: every failure is a typed
//! [`HttpError`] carrying the status code the connection should answer
//! with before closing.

use std::fmt;

/// Upper bound on a request head (request line + headers + CRLFCRLF).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on a request body (configurable per server).
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parse failure, carrying the HTTP status the server should answer
/// with. The parser is dead afterwards: HTTP/1.1 framing is lost once a
/// request is malformed, so the connection must close after the error
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    pub status: u16,
    pub detail: String,
}

impl HttpError {
    pub fn new(status: u16, detail: impl Into<String>) -> HttpError {
        HttpError { status, detail: detail.into() }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.status, status_text(self.status), self.detail)
    }
}

impl std::error::Error for HttpError {}

/// One complete request. Header names are lowercased at parse time;
/// values keep their bytes with surrounding whitespace trimmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub target: String,
    /// `false` for HTTP/1.0, `true` for HTTP/1.1.
    pub http11: bool,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Resolved keep-alive: 1.1 default on, 1.0 default off, `Connection`
    /// header wins either way.
    pub keep_alive: bool,
}

impl Request {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Body framing of the request being assembled.
enum BodyState {
    /// `Content-Length: n`, `n` bytes still owed.
    Sized(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked(ChunkedDecoder),
}

/// Head parsed, body incomplete.
struct PartialRequest {
    method: String,
    target: String,
    http11: bool,
    headers: Vec<(String, String)>,
    keep_alive: bool,
    body: BodyState,
    collected: Vec<u8>,
}

enum State {
    /// Scanning for the head terminator.
    Head,
    /// Collecting the body.
    Body(PartialRequest),
}

/// The incremental request parser: [`feed`](RequestParser::feed) raw
/// bytes, [`next_request`](RequestParser::next_request) complete requests.
pub struct RequestParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    start: usize,
    /// CRLFCRLF scan resume point (never rescan settled head bytes).
    scan_from: usize,
    state: State,
    max_head: usize,
    max_body: usize,
    dead: bool,
}

impl RequestParser {
    pub fn new(max_body: usize) -> RequestParser {
        RequestParser::with_limits(MAX_HEAD_BYTES, max_body)
    }

    pub fn with_limits(max_head: usize, max_body: usize) -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            start: 0,
            scan_from: 0,
            state: State::Head,
            max_head,
            max_body,
            dead: false,
        }
    }

    /// Append one received segment, exactly as the socket delivered it.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 64 * 1024) {
            self.buf.drain(..self.start);
            self.scan_from = self.scan_from.saturating_sub(self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when a request is mid-parse (head or body incomplete) — the
    /// cue to arm a read-deadline timer, mirroring the frame decoder.
    pub fn has_partial(&self) -> bool {
        matches!(self.state, State::Body(_)) || self.pending_bytes() > 0
    }

    /// Pull the next complete request, if the buffered bytes hold one.
    /// `Ok(None)` means "need more bytes". Errors are sticky.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if self.dead {
            return Err(HttpError::new(400, "parser already failed"));
        }
        match self.advance() {
            Ok(req) => Ok(req),
            Err(e) => {
                self.dead = true;
                Err(e)
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Request>, HttpError> {
        if matches!(self.state, State::Head) {
            let haystack_len = self.buf.len() - self.start;
            let from = self.scan_from.saturating_sub(self.start).saturating_sub(3);
            let Some(end) = find_head_end(&self.buf[self.start..], from) else {
                if haystack_len > self.max_head {
                    return Err(HttpError::new(431, "request head too large"));
                }
                self.scan_from = self.buf.len();
                return Ok(None);
            };
            if end > self.max_head {
                return Err(HttpError::new(431, "request head too large"));
            }
            let partial = parse_head(&self.buf[self.start..self.start + end], self.max_body)?;
            self.start += end + 4;
            self.scan_from = self.start;
            if matches!(partial.body, BodyState::Sized(0)) {
                return Ok(Some(finish(partial)));
            }
            self.state = State::Body(partial);
        }
        if !self.fill_body()? {
            return Ok(None);
        }
        let State::Body(partial) = std::mem::replace(&mut self.state, State::Head) else {
            unreachable!("fill_body returned true outside Body state")
        };
        self.scan_from = self.start;
        Ok(Some(finish(partial)))
    }

    /// Move available buffered bytes into the in-flight body; true once
    /// the body is complete.
    fn fill_body(&mut self) -> Result<bool, HttpError> {
        let State::Body(partial) = &mut self.state else {
            return Ok(false);
        };
        match &mut partial.body {
            BodyState::Sized(owed) => {
                let take = (*owed).min(self.buf.len() - self.start);
                partial.collected.extend_from_slice(&self.buf[self.start..self.start + take]);
                *owed -= take;
                self.start += take;
                Ok(*owed == 0)
            }
            BodyState::Chunked(dec) => {
                let used = dec.advance(&self.buf[self.start..], &mut partial.collected)?;
                self.start += used;
                if partial.collected.len() > self.max_body {
                    return Err(HttpError::new(413, "request body too large"));
                }
                Ok(dec.is_done())
            }
        }
    }
}

fn finish(p: PartialRequest) -> Request {
    Request {
        method: p.method,
        target: p.target,
        http11: p.http11,
        headers: p.headers,
        body: p.collected,
        keep_alive: p.keep_alive,
    }
}

/// Find the `\r\n\r\n` head terminator at or after `from`; returns the
/// head length (terminator excluded).
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    (from..=buf.len() - 4).find(|&i| &buf[i..i + 4] == b"\r\n\r\n")
}

fn is_token(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

fn parse_head(head: &[u8], max_body: usize) -> Result<PartialRequest, HttpError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.contains(['\n', '\0']) {
        return Err(HttpError::new(400, "bare LF or NUL in request line"));
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::new(400, format!("malformed request line {request_line:?}"))),
    };
    if !is_token(method) {
        return Err(HttpError::new(400, format!("malformed method {method:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::new(505, format!("unsupported version {version:?}"))),
    };

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut connection: Option<String> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header line {line:?}")));
        };
        if !is_token(name) {
            return Err(HttpError::new(400, format!("malformed header name {name:?}")));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::new(400, format!("bad content-length {value:?}")))?;
                if let Some(prev) = content_length {
                    if prev != n {
                        return Err(HttpError::new(400, "conflicting content-length headers"));
                    }
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                if !value.eq_ignore_ascii_case("chunked") {
                    return Err(HttpError::new(
                        501,
                        format!("unsupported transfer-encoding {value:?}"),
                    ));
                }
                chunked = true;
            }
            "connection" => connection = Some(value.to_ascii_lowercase()),
            _ => {}
        }
        headers.push((name, value));
    }

    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };
    let body = if chunked {
        if content_length.is_some() {
            return Err(HttpError::new(400, "both content-length and chunked framing"));
        }
        BodyState::Chunked(ChunkedDecoder::new())
    } else {
        let n = content_length.unwrap_or(0);
        if n > max_body {
            return Err(HttpError::new(413, format!("body of {n} bytes exceeds the limit")));
        }
        BodyState::Sized(n)
    };
    Ok(PartialRequest {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
        keep_alive,
        body,
        collected: Vec::new(),
    })
}

/// Incremental decoder for `Transfer-Encoding: chunked` payloads.
///
/// Like the request parser it tolerates arbitrary segmentation: call
/// [`advance`](ChunkedDecoder::advance) with whatever bytes are on hand;
/// it consumes what it can and reports how much it took.
pub struct ChunkedDecoder {
    state: ChunkState,
    /// Partial size/trailer line carried across segment boundaries.
    line: Vec<u8>,
}

enum ChunkState {
    SizeLine,
    Data(usize),
    DataCrlf(u8),
    Trailer,
    Done,
}

/// Longest accepted chunk-size (or trailer) line.
const MAX_CHUNK_LINE: usize = 256;

impl Default for ChunkedDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkedDecoder {
    pub fn new() -> ChunkedDecoder {
        ChunkedDecoder { state: ChunkState::SizeLine, line: Vec::new() }
    }

    pub fn is_done(&self) -> bool {
        matches!(self.state, ChunkState::Done)
    }

    /// Consume as much of `input` as the current state allows, appending
    /// decoded payload bytes to `out`. Returns the number of input bytes
    /// consumed; when it is less than `input.len()` the decoder is done.
    pub fn advance(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<usize, HttpError> {
        let mut pos = 0;
        loop {
            match &mut self.state {
                ChunkState::SizeLine | ChunkState::Trailer => {
                    let Some(nl) = input[pos..].iter().position(|&b| b == b'\n') else {
                        self.line.extend_from_slice(&input[pos..]);
                        if self.line.len() > MAX_CHUNK_LINE {
                            return Err(HttpError::new(400, "chunk line too long"));
                        }
                        return Ok(input.len());
                    };
                    self.line.extend_from_slice(&input[pos..pos + nl]);
                    pos += nl + 1;
                    if self.line.len() > MAX_CHUNK_LINE {
                        return Err(HttpError::new(400, "chunk line too long"));
                    }
                    if self.line.last() == Some(&b'\r') {
                        self.line.pop();
                    }
                    let line = std::mem::take(&mut self.line);
                    if matches!(self.state, ChunkState::Trailer) {
                        if line.is_empty() {
                            self.state = ChunkState::Done;
                            return Ok(pos);
                        }
                        continue; // ignore trailer fields
                    }
                    let text = std::str::from_utf8(&line)
                        .map_err(|_| HttpError::new(400, "chunk size is not UTF-8"))?;
                    let size_str = text.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(size_str, 16)
                        .map_err(|_| HttpError::new(400, format!("bad chunk size {text:?}")))?;
                    self.state =
                        if size == 0 { ChunkState::Trailer } else { ChunkState::Data(size) };
                }
                ChunkState::Data(remaining) => {
                    let take = (*remaining).min(input.len() - pos);
                    out.extend_from_slice(&input[pos..pos + take]);
                    pos += take;
                    *remaining -= take;
                    if *remaining > 0 {
                        return Ok(pos);
                    }
                    self.state = ChunkState::DataCrlf(2);
                }
                ChunkState::DataCrlf(left) => {
                    while *left > 0 && pos < input.len() {
                        let b = input[pos];
                        let expect = if *left == 2 { b'\r' } else { b'\n' };
                        if b != expect {
                            return Err(HttpError::new(400, "missing CRLF after chunk data"));
                        }
                        pos += 1;
                        *left -= 1;
                    }
                    if *left > 0 {
                        return Ok(pos);
                    }
                    self.state = ChunkState::SizeLine;
                }
                ChunkState::Done => return Ok(pos),
            }
        }
    }
}

/// Reason phrase for the handful of statuses the portal emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A buffered (non-streaming) response.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub extra_headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serialize with `Content-Length` framing onto the connection's
    /// output buffer.
    pub fn write_to(&self, out: &mut Vec<u8>, keep_alive: bool) {
        write_head(out, self.status, self.content_type, keep_alive, &self.extra_headers, false);
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
    }
}

fn write_head(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    keep_alive: bool,
    extra: &[(String, String)],
    chunked: bool,
) {
    out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", status, status_text(status)).as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(if keep_alive {
        b"Connection: keep-alive\r\n".as_slice()
    } else {
        b"Connection: close\r\n"
    });
    for (k, v) in extra {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    if chunked {
        out.extend_from_slice(b"Transfer-Encoding: chunked\r\n\r\n");
    }
}

/// Start a chunked streaming response (head only; follow with
/// [`write_chunk`] calls and one [`finish_chunked`]).
pub fn begin_chunked(out: &mut Vec<u8>, status: u16, content_type: &'static str, keep_alive: bool) {
    write_head(out, status, content_type, keep_alive, &[], true);
}

/// Emit one data chunk (empty input is skipped — an empty chunk would
/// terminate the stream).
pub fn write_chunk(out: &mut Vec<u8>, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Terminate a chunked stream.
pub fn finish_chunked(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(parser: &mut RequestParser) -> Vec<Request> {
        let mut got = Vec::new();
        while let Some(req) = parser.next_request().expect("parse") {
            got.push(req);
        }
        got
    }

    #[test]
    fn one_shot_post_with_body() {
        let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        p.feed(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello");
        let reqs = parse_all(&mut p);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "POST");
        assert_eq!(reqs[0].target, "/jobs");
        assert_eq!(reqs[0].body, b"hello");
        assert!(reqs[0].keep_alive);
        assert!(!p.has_partial());
    }

    #[test]
    fn byte_at_a_time_pipelined_pair() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz";
        let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        let mut got = Vec::new();
        for b in wire.iter() {
            p.feed(std::slice::from_ref(b));
            got.extend(parse_all(&mut p));
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].target, "/a");
        assert_eq!(got[1].body, b"xyz");
    }

    #[test]
    fn chunked_request_body_reassembles() {
        let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        p.feed(b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        p.feed(b"4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n");
        let reqs = parse_all(&mut p);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body, b"wikipedia");
    }

    #[test]
    fn http10_defaults_to_close() {
        let mut p = RequestParser::new(1024);
        p.feed(b"GET / HTTP/1.0\r\n\r\n");
        let reqs = parse_all(&mut p);
        assert!(!reqs[0].keep_alive);
        assert!(!reqs[0].http11);
    }

    #[test]
    fn connection_close_wins() {
        let mut p = RequestParser::new(1024);
        p.feed(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!parse_all(&mut p)[0].keep_alive);
    }

    #[test]
    fn malformed_request_line_is_400_and_sticky() {
        let mut p = RequestParser::new(1024);
        p.feed(b"NOT A REQUEST LINE AT ALL\r\n\r\n");
        let err = p.next_request().unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(p.next_request().unwrap_err().status, 400);
    }

    #[test]
    fn bad_version_is_505() {
        let mut p = RequestParser::new(1024);
        p.feed(b"GET / HTTP/2.0\r\n\r\n");
        assert_eq!(p.next_request().unwrap_err().status, 505);
    }

    #[test]
    fn oversized_body_is_413() {
        let mut p = RequestParser::new(8);
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789");
        assert_eq!(p.next_request().unwrap_err().status, 413);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut p = RequestParser::with_limits(64, 1024);
        p.feed(b"GET / HTTP/1.1\r\n");
        p.feed(&vec![b'a'; 128]);
        assert_eq!(p.next_request().unwrap_err().status, 431);
    }

    #[test]
    fn chunked_round_trip_via_encoder() {
        let mut wire = Vec::new();
        begin_chunked(&mut wire, 200, "text/plain", true);
        write_chunk(&mut wire, b"hello ");
        write_chunk(&mut wire, b"");
        write_chunk(&mut wire, b"world");
        finish_chunked(&mut wire);
        let body_at = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let mut dec = ChunkedDecoder::new();
        let mut out = Vec::new();
        let used = dec.advance(&wire[body_at..], &mut out).expect("decode");
        assert!(dec.is_done());
        assert_eq!(used, wire.len() - body_at);
        assert_eq!(out, b"hello world");
    }

    #[test]
    fn response_serialization_has_length_framing() {
        let mut out = Vec::new();
        Response::json(202, "{\"id\":\"j-1\"}").write_to(&mut out, true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.ends_with("{\"id\":\"j-1\"}"), "{text}");
    }
}
