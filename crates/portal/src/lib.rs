//! # cn-portal — the web portal in front of the neighborhood
//!
//! The source paper frames the CN runtime as infrastructure behind a
//! **web portal**: users upload a UML activity model (XMI) and the portal
//! compiles it to a CNX job descriptor and runs it on the cluster. This
//! crate is that portal, built with no external dependencies directly on
//! [`cn_reactor`]'s sharded epoll event loops:
//!
//! * [`http`] — an incremental HTTP/1.1 parser (any TCP segmentation,
//!   keep-alive, pipelining, chunked transfer encoding) and response
//!   encoders;
//! * [`admission`] — the bounded, per-address-fair admission queue that
//!   backpressures `POST /jobs` without ever blocking an event loop;
//! * [`jobs`] — the job board (id → status → journal), the XMI/CNX
//!   compile step, and pluggable runners (live wire cluster, in-process
//!   simulation, stub);
//! * [`server`] — the reactor-driven connection handlers tying it all
//!   together.
//!
//! ## API
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /jobs` | body = XMI or CNX → compile + submit; `202 {"id":"j-N"}` |
//! | `GET /jobs/j-N` | status JSON (`queued`/`running`/`done`/`failed`) |
//! | `GET /jobs/j-N/journal` | canonical trace journal, chunked stream |
//! | `GET /metrics` | portal counters/gauges/histograms as text |
//! | `GET /healthz` | liveness probe |

pub mod admission;
pub mod http;
pub mod jobs;
pub mod server;

pub use admission::{Admission, SubmitError};
pub use http::{ChunkedDecoder, HttpError, Request, RequestParser, Response};
pub use jobs::{
    compile_submission, looks_like_xmi, seed_transitive_closure, CompiledJob, JobBoard, JobId,
    JobRunner, JobState, JobWork, RunOutcome, SimRunner, StubRunner, WireRunner,
};
pub use server::{render_metrics, PortalConfig, PortalServer};
