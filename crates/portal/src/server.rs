//! The portal server: nonblocking HTTP/1.1 connection state machines on
//! the sharded reactor's event loops.
//!
//! One [`AcceptHandler`] on shard 0 spreads connections round-robin
//! across shards; each connection is a [`ConnHandler`] driving an
//! incremental [`RequestParser`] (any TCP segmentation), writing
//! pipelined responses in order, streaming finished-job journals with
//! chunked transfer encoding, and riding the shard timer wheel for
//! request deadlines (`408`) and journal-completion polling. Submission
//! execution never happens on a shard: `POST /jobs` hands the body to the
//! bounded [`Admission`] queue and answers `202` immediately.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_observe::{Recorder, RegistrySnapshot, LATENCY_BUCKETS_US};
use cn_reactor::{sys, Action, EventHandler, Reactor, ShardCtx, TimerId};

use crate::admission::Admission;
use crate::http::{
    begin_chunked, finish_chunked, write_chunk, Request, RequestParser, Response,
    DEFAULT_MAX_BODY_BYTES,
};
use crate::jobs::{json_string, parse_job_id, spawn_workers, JobBoard, JobRunner, JobWork};

/// Reads one `on_ready` may issue before yielding the shard (mirrors the
/// wire transport's budget).
const MAX_READS_PER_WAKE: usize = 16;
/// Journal bytes per chunk when streaming.
const JOURNAL_CHUNK: usize = 16 * 1024;
/// How often a connection re-checks a still-running job while streaming
/// its journal.
const JOURNAL_POLL: Duration = Duration::from_millis(20);

const TAG_DEADLINE: u64 = 1;
const TAG_JOURNAL: u64 = 2;

/// Deployment shape of one portal process.
#[derive(Debug, Clone)]
pub struct PortalConfig {
    /// TCP port to listen on (0 picks an ephemeral port).
    pub port: u16,
    /// Reactor shards (0 = `cn_reactor::default_shards()`).
    pub reactor_shards: usize,
    /// Total queued + executing submission cap (`503` beyond it).
    pub max_inflight: usize,
    /// Per-remote-address submission cap (`429` beyond it).
    pub per_addr_inflight: usize,
    /// Submission worker threads (compile + execute).
    pub workers: usize,
    /// Request body limit (`413` beyond it).
    pub max_body_bytes: usize,
    /// A request left part-way past this deadline answers `408` and the
    /// connection closes.
    pub request_deadline: Duration,
    /// How long `GET /jobs/<id>/journal` waits for the job to finish
    /// before giving up mid-stream.
    pub journal_wait: Duration,
    /// How long a finished job's board entry (status + journal) stays
    /// retrievable before the workers evict it (`portal.board_evictions`
    /// counts the drops). Keeps the board bounded under a steady
    /// submission stream.
    pub board_ttl: Duration,
}

impl Default for PortalConfig {
    fn default() -> Self {
        PortalConfig {
            port: 0,
            reactor_shards: 0,
            max_inflight: 64,
            per_addr_inflight: 4,
            workers: 2,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            request_deadline: Duration::from_secs(10),
            journal_wait: Duration::from_secs(120),
            board_ttl: Duration::from_secs(300),
        }
    }
}

struct Inner {
    reactor: Reactor,
    board: Arc<JobBoard>,
    admission: Arc<Admission<JobWork>>,
    rec: Recorder,
    cfg: PortalConfig,
    port: u16,
    next_inbound: AtomicU64,
}

/// A running portal. Dropping it (or calling [`shutdown`]) stops the
/// reactor, closes admission, and joins the submission workers.
///
/// [`shutdown`]: PortalServer::shutdown
pub struct PortalServer {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PortalServer {
    pub fn start(
        cfg: PortalConfig,
        runner: Arc<dyn JobRunner>,
        rec: Recorder,
    ) -> std::io::Result<PortalServer> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let shards =
            if cfg.reactor_shards == 0 { cn_reactor::default_shards() } else { cfg.reactor_shards };
        let reactor = Reactor::new(&format!("portal-{port}"), shards)?;
        let board = Arc::new(JobBoard::new());
        let admission = Arc::new(Admission::new(cfg.max_inflight, cfg.per_addr_inflight));
        let workers = spawn_workers(
            cfg.workers,
            Arc::clone(&admission),
            Arc::clone(&board),
            runner,
            rec.clone(),
            cfg.board_ttl,
        );
        let inner = Arc::new(Inner {
            reactor,
            board,
            admission,
            rec,
            cfg,
            port,
            next_inbound: AtomicU64::new(0),
        });
        inner
            .reactor
            .register_on(0, Box::new(AcceptHandler { inner: Arc::clone(&inner), listener }));
        Ok(PortalServer { inner, workers })
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.inner.port
    }

    pub fn board(&self) -> &Arc<JobBoard> {
        &self.inner.board
    }

    pub fn recorder(&self) -> &Recorder {
        &self.inner.rec
    }

    pub fn shutdown(&mut self) {
        self.inner.reactor.shutdown();
        self.inner.admission.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for PortalServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts inbound connections and spreads them across reactor shards
/// (same pattern as the wire transport's accept loop).
struct AcceptHandler {
    inner: Arc<Inner>,
    listener: TcpListener,
}

impl EventHandler for AcceptHandler {
    fn on_register(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        match ctx.register_fd(self.listener.as_raw_fd(), true, false) {
            Ok(()) => Action::Continue,
            Err(_) => Action::Close,
        }
    }

    fn on_ready(&mut self, _ctx: &mut ShardCtx<'_>, _readable: bool, _writable: bool) -> Action {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Fairness is keyed by remote IP (not port): every
                    // connection from one client counts against one cap.
                    let addr_key = hash_ip(&peer.ip().to_string());
                    let shard = self.inner.next_inbound.fetch_add(1, Ordering::Relaxed);
                    self.inner.rec.counter("portal.conns.accepted").inc();
                    self.inner.rec.gauge("portal.conns.open").add(1);
                    let parser = RequestParser::new(self.inner.cfg.max_body_bytes);
                    self.inner.reactor.register_hashed(
                        shard,
                        Box::new(ConnHandler {
                            inner: Arc::clone(&self.inner),
                            stream,
                            parser,
                            addr_key,
                            out: Vec::new(),
                            out_pos: 0,
                            want_write: false,
                            close_after_flush: false,
                            deadline: None,
                            streaming: None,
                            journal_timer: None,
                        }),
                    );
                }
                Err(e) if sys::is_would_block(&e) => return Action::Continue,
                Err(_) => return Action::Continue,
            }
        }
    }
}

fn hash_ip(ip: &str) -> u64 {
    // FNV-1a; stable across runs (only used for in-memory cap buckets).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in ip.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A journal stream in flight on a connection.
struct JournalStream {
    job: u64,
    /// Journal bytes already written into the output buffer.
    sent: usize,
    /// Give-up point for a job that never finishes.
    give_up: Instant,
    /// Whether the connection stays open after the terminal chunk.
    keep_alive: bool,
}

/// One HTTP connection: incremental parse → route → ordered pipelined
/// responses, with journal streaming and deadlines on the timer wheel.
struct ConnHandler {
    inner: Arc<Inner>,
    stream: TcpStream,
    parser: RequestParser,
    addr_key: u64,
    out: Vec<u8>,
    out_pos: usize,
    want_write: bool,
    close_after_flush: bool,
    deadline: Option<TimerId>,
    streaming: Option<JournalStream>,
    journal_timer: Option<TimerId>,
}

enum ReadOutcome {
    KeepOpen,
    /// Peer closed its half; flush what we owe and close.
    Eof,
    Close,
}

impl ConnHandler {
    fn read_some(&mut self, buf: &mut [u8]) -> ReadOutcome {
        for _ in 0..MAX_READS_PER_WAKE {
            match self.stream.read(buf) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => self.parser.feed(&buf[..n]),
                Err(e) if sys::is_would_block(&e) => return ReadOutcome::KeepOpen,
                Err(_) => return ReadOutcome::Close,
            }
        }
        ReadOutcome::KeepOpen
    }

    /// Parse and answer every complete buffered request, in order. Stops
    /// while a journal stream is in flight (its chunks own the wire until
    /// the terminal chunk; pipelined successors stay buffered).
    fn serve_buffered(&mut self) {
        while self.streaming.is_none() && !self.close_after_flush {
            match self.parser.next_request() {
                Ok(Some(req)) => self.handle_request(req),
                Ok(None) => break,
                Err(e) => {
                    // A malformed stream has no trustworthy framing left:
                    // answer once and close.
                    self.inner.rec.counter("portal.http.errors").inc();
                    Response::json(e.status, format!("{{\"error\":{}}}\n", json_string(&e.detail)))
                        .write_to(&mut self.out, false);
                    self.close_after_flush = true;
                    break;
                }
            }
        }
    }

    fn handle_request(&mut self, req: Request) {
        let started = Instant::now();
        self.inner.rec.counter("portal.http.requests").inc();
        let span = self.inner.rec.span_start("portal", "http-request", None);
        let keep_alive = req.keep_alive;
        if !keep_alive {
            self.close_after_flush = true;
        }
        self.route(req, keep_alive);
        self.inner.rec.span_end(span);
        self.inner
            .rec
            .histogram("portal.http_us", LATENCY_BUCKETS_US)
            .record(started.elapsed().as_micros() as u64);
    }

    fn route(&mut self, req: Request, keep_alive: bool) {
        let path = req.target.split('?').next().unwrap_or("");
        let seg: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let resp = match (req.method.as_str(), seg.as_slice()) {
            ("POST", ["jobs"]) => self.submit(req.body),
            ("GET", ["jobs", id]) => {
                match parse_job_id(id).and_then(|id| self.inner.board.status_json(id)) {
                    Some(json) => Response::json(200, json),
                    None => not_found(),
                }
            }
            ("GET", ["jobs", id, "journal"]) => {
                match parse_job_id(id).filter(|id| self.inner.board.state(*id).is_some()) {
                    Some(id) => {
                        begin_chunked(&mut self.out, 200, "application/x-ndjson", keep_alive);
                        self.streaming = Some(JournalStream {
                            job: id,
                            sent: 0,
                            give_up: Instant::now() + self.inner.cfg.journal_wait,
                            keep_alive,
                        });
                        // Chunks flow from pump_journal; headers are out.
                        self.close_after_flush = false;
                        return;
                    }
                    None => not_found(),
                }
            }
            ("GET", ["metrics"]) => {
                Response::text(200, render_metrics(&self.inner.rec.metrics().snapshot()))
            }
            ("GET", ["healthz"]) => Response::text(200, "ok\n"),
            (_, ["jobs"]) => method_not_allowed("POST"),
            (_, ["jobs", _])
            | (_, ["jobs", _, "journal"])
            | (_, ["metrics"])
            | (_, ["healthz"]) => method_not_allowed("GET"),
            _ => not_found(),
        };
        resp.write_to(&mut self.out, keep_alive);
    }

    /// `POST /jobs`: register on the board, take an admission slot, answer
    /// `202 {"id":"j-N"}` — or reject with the admission error's status.
    fn submit(&mut self, body: Vec<u8>) -> Response {
        let id = self.inner.board.create();
        match self.inner.admission.submit(self.addr_key, JobWork { id, body }) {
            Ok(()) => {
                self.inner.rec.counter("portal.jobs.submitted").inc();
                Response::json(202, format!("{{\"id\":\"j-{id}\",\"state\":\"queued\"}}\n"))
                    .header("location", format!("/jobs/j-{id}"))
            }
            Err(e) => {
                self.inner.board.discard(id);
                self.inner.rec.counter("portal.jobs.rejected").inc();
                if e == crate::admission::SubmitError::Shed {
                    self.inner.rec.counter("portal.load_shed").inc();
                }
                Response::json(e.status(), format!("{{\"error\":{}}}\n", json_string(e.as_str())))
            }
        }
    }

    /// Move available journal bytes into the output buffer. Returns
    /// `true` when the stream needs another poll (job still running).
    fn pump_journal(&mut self) -> bool {
        let Some(s) = &mut self.streaming else { return false };
        match self.inner.board.journal(s.job) {
            Some(Some(journal)) => {
                let bytes = journal.as_bytes();
                while s.sent < bytes.len() {
                    let end = (s.sent + JOURNAL_CHUNK).min(bytes.len());
                    write_chunk(&mut self.out, &bytes[s.sent..end]);
                    s.sent = end;
                }
                finish_chunked(&mut self.out);
                self.inner.rec.counter("portal.journals.streamed").inc();
                if !s.keep_alive {
                    self.close_after_flush = true;
                }
                self.streaming = None;
                // Pipelined requests buffered behind the stream go now.
                self.serve_buffered();
                false
            }
            Some(None) => {
                if Instant::now() >= s.give_up {
                    // Terminal chunk with an in-band error line: chunked
                    // framing has no way to change the status mid-stream.
                    write_chunk(&mut self.out, b"{\"error\":\"journal wait timed out\"}\n");
                    finish_chunked(&mut self.out);
                    self.close_after_flush = true;
                    self.streaming = None;
                    false
                } else {
                    true
                }
            }
            None => {
                write_chunk(&mut self.out, b"{\"error\":\"job vanished\"}\n");
                finish_chunked(&mut self.out);
                self.close_after_flush = true;
                self.streaming = None;
                false
            }
        }
    }

    /// Flush the output buffer. `Ok(true)` = drained, `Ok(false)` = the
    /// socket pushed back (needs writable interest), `Err` = dead peer.
    fn flush_out(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(std::io::Error::from(std::io::ErrorKind::WriteZero)),
                Ok(n) => self.out_pos += n,
                Err(e) if sys::is_would_block(&e) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }

    /// Post-work bookkeeping shared by every wakeup: journal polling,
    /// flush, interest, the parse deadline, and close-when-drained.
    fn settle(&mut self, ctx: &mut ShardCtx<'_>, eof: bool) -> Action {
        if self.streaming.is_some() {
            let again = self.pump_journal();
            if again && self.journal_timer.is_none() {
                self.journal_timer = Some(ctx.arm_timer(JOURNAL_POLL, TAG_JOURNAL));
            }
        }
        let drained = match self.flush_out() {
            Ok(d) => d,
            Err(_) => return Action::Close,
        };
        if drained && (self.close_after_flush || (eof && self.streaming.is_none())) {
            return Action::Close;
        }
        if !drained && eof {
            // Peer half-closed; keep write interest only to flush.
            self.close_after_flush = true;
        }
        let want_write = !drained;
        if want_write != self.want_write {
            if ctx.set_interest(!eof, want_write).is_err() {
                return Action::Close;
            }
            self.want_write = want_write;
        }
        // The parse deadline tracks the newest partial request.
        if let Some(t) = self.deadline.take() {
            ctx.cancel_timer(t);
        }
        if self.parser.has_partial() && !eof {
            self.deadline = Some(ctx.arm_timer(self.inner.cfg.request_deadline, TAG_DEADLINE));
        }
        Action::Continue
    }
}

impl EventHandler for ConnHandler {
    fn on_register(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        match ctx.register_fd(self.stream.as_raw_fd(), true, false) {
            Ok(()) => Action::Continue,
            Err(_) => Action::Close,
        }
    }

    fn on_ready(&mut self, ctx: &mut ShardCtx<'_>, readable: bool, _writable: bool) -> Action {
        let mut eof = false;
        if readable {
            let mut buf = ctx.take_scratch();
            let outcome = self.read_some(&mut buf);
            ctx.put_scratch(buf);
            match outcome {
                ReadOutcome::KeepOpen => {}
                ReadOutcome::Eof => eof = true,
                ReadOutcome::Close => return Action::Close,
            }
        }
        self.serve_buffered();
        self.settle(ctx, eof)
    }

    fn on_timer(&mut self, ctx: &mut ShardCtx<'_>, tag: u64) -> Action {
        match tag {
            TAG_DEADLINE => {
                self.deadline = None;
                if self.parser.has_partial() {
                    self.inner.rec.counter("portal.http.deadline_408").inc();
                    Response::json(408, "{\"error\":\"request deadline exceeded\"}\n")
                        .write_to(&mut self.out, false);
                    self.close_after_flush = true;
                }
                self.settle(ctx, false)
            }
            TAG_JOURNAL => {
                self.journal_timer = None;
                self.settle(ctx, false)
            }
            _ => Action::Continue,
        }
    }

    fn on_close(&mut self) {
        self.inner.rec.gauge("portal.conns.open").add(-1);
    }
}

fn not_found() -> Response {
    Response::json(404, "{\"error\":\"not found\"}\n")
}

fn method_not_allowed(allow: &'static str) -> Response {
    Response::json(405, "{\"error\":\"method not allowed\"}\n").header("allow", allow)
}

/// `GET /metrics`: one `name value` line per counter/gauge, plus
/// `count`/`mean`/`p50`/`p99` lines per histogram.
pub fn render_metrics(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("{name} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!("{name}.count {}\n", h.count));
        out.push_str(&format!("{name}.mean {:.1}\n", h.mean()));
        out.push_str(&format!("{name}.p50 {}\n", h.quantile_bound(0.5)));
        out.push_str(&format!("{name}.p99 {}\n", h.quantile_bound(0.99)));
    }
    out
}
