//! The bounded admission queue: the portal's front-door backpressure.
//!
//! `POST /jobs` never blocks a connection handler — a submission either
//! takes a slot here or is rejected immediately with `429`/`503`. Two
//! caps apply at admission time:
//!
//! * `max_inflight` bounds queued + executing submissions **in total**,
//!   so a flood of uploads cannot buffer unbounded bodies or starve the
//!   cluster behind the portal.
//! * `per_addr_inflight` bounds queued + executing submissions **per
//!   remote address**, so one flooding client saturates its own cap
//!   while slots remain for everyone else (per-client fairness).
//!
//! Built on `cn_sync` primitives so `cnctl check`'s controlled scheduler
//! owns every interleaving of the handler→worker handoff (the
//! `portal.http_parser` scenario); the `mutations` cargo feature swaps in
//! an injected lost-wakeup bug the mutation suite must catch.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use cn_sync::{Condvar, Mutex};

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Total queued + executing reached `max_inflight` → `503`.
    Full,
    /// This remote address reached `per_addr_inflight` → `429`.
    AddrSaturated,
    /// The portal's backlog crossed half of `max_inflight`, so the
    /// per-address allowance halved and this address is over the reduced
    /// cap → `429`. Heavy senders shed first while light clients keep
    /// their slots.
    Shed,
    /// The portal is shutting down → `503`.
    Closed,
}

impl SubmitError {
    /// The HTTP status this rejection answers with.
    pub fn status(self) -> u16 {
        match self {
            SubmitError::Full | SubmitError::Closed => 503,
            SubmitError::AddrSaturated | SubmitError::Shed => 429,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            SubmitError::Full => "admission queue full",
            SubmitError::AddrSaturated => "too many in-flight submissions from this address",
            SubmitError::Shed => "portal under load: per-address allowance reduced",
            SubmitError::Closed => "portal is shutting down",
        }
    }
}

struct State<T> {
    queue: VecDeque<(u64, T)>,
    /// Executing (popped, not yet finished) per address key.
    executing: HashMap<u64, usize>,
    /// Queued + executing per address key.
    held: HashMap<u64, usize>,
    executing_total: usize,
    closed: bool,
}

/// The bounded, per-address-fair admission queue. `T` is the unit of
/// work (the portal queues compile+submit jobs; the check scenario
/// queues sequence numbers).
pub struct Admission<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    max_inflight: usize,
    per_addr_inflight: usize,
}

impl<T> Admission<T> {
    pub fn new(max_inflight: usize, per_addr_inflight: usize) -> Admission<T> {
        Admission {
            state: Mutex::named(
                "portal.admission",
                State {
                    queue: VecDeque::new(),
                    executing: HashMap::new(),
                    held: HashMap::new(),
                    executing_total: 0,
                    closed: false,
                },
            ),
            cv: Condvar::named("portal.admission.cv"),
            max_inflight: max_inflight.max(1),
            per_addr_inflight: per_addr_inflight.max(1),
        }
    }

    /// Admit one submission from `key` (a hashed remote address), or
    /// reject it without blocking.
    pub fn submit(&self, key: u64, work: T) -> Result<(), SubmitError> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.queue.len() + st.executing_total >= self.max_inflight {
            return Err(SubmitError::Full);
        }
        let held = st.held.get(&key).copied().unwrap_or(0);
        if held >= self.per_addr_inflight {
            return Err(SubmitError::AddrSaturated);
        }
        // Load-aware shedding: once the backlog (queued + executing)
        // crosses half the total cap, the per-address allowance halves, so
        // the addresses holding the most slots are turned away first and
        // the remaining headroom stays spread across light clients.
        let backlog = st.queue.len() + st.executing_total;
        if backlog * 2 >= self.max_inflight && held >= (self.per_addr_inflight / 2).max(1) {
            return Err(SubmitError::Shed);
        }
        *st.held.entry(key).or_insert(0) += 1;
        st.queue.push_back((key, work));
        #[cfg(not(feature = "mutations"))]
        self.cv.notify_one();
        // Injected ordering bug for cn-check: "skip redundant wakeups"
        // with the condition inverted — the wakeup that matters (queue
        // was empty, a worker is parked) is exactly the one skipped.
        #[cfg(feature = "mutations")]
        if st.queue.len() > 1 {
            self.cv.notify_one();
        }
        Ok(())
    }

    /// Take the next admitted submission, waiting up to `timeout` for one
    /// to arrive. `None` on timeout or when closed and drained. The
    /// returned key must be handed back via [`finish`](Admission::finish).
    pub fn next(&self, timeout: Duration) -> Option<(u64, T)> {
        let mut batch = self.next_batch(1, timeout);
        batch.pop()
    }

    /// Drain up to `max` admitted submissions in one wakeup (workers
    /// batch-translate XMI bodies). Empty on timeout or shutdown.
    pub fn next_batch(&self, max: usize, timeout: Duration) -> Vec<(u64, T)> {
        let mut st = self.state.lock();
        if st.queue.is_empty() && !st.closed {
            // One bounded wait; the caller loops. A spurious or timed-out
            // wake just returns empty.
            self.cv.wait_for(&mut st, timeout);
        }
        let mut out = Vec::new();
        while out.len() < max {
            let Some((key, work)) = st.queue.pop_front() else { break };
            *st.executing.entry(key).or_insert(0) += 1;
            st.executing_total += 1;
            out.push((key, work));
        }
        out
    }

    /// Release the slots held by a completed (or failed) submission.
    pub fn finish(&self, key: u64) {
        let mut st = self.state.lock();
        if let Some(n) = st.executing.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                st.executing.remove(&key);
            }
            st.executing_total -= 1;
        }
        if let Some(n) = st.held.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                st.held.remove(&key);
            }
        }
    }

    /// Queued (not yet executing) submissions.
    pub fn depth(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Popped-but-unfinished submissions.
    pub fn executing(&self) -> usize {
        self.state.lock().executing_total
    }

    /// Stop admitting; wake every parked worker so it can exit.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.cv.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cap_rejects_with_full() {
        let q: Admission<u32> = Admission::new(2, 2);
        q.submit(1, 10).unwrap();
        q.submit(2, 20).unwrap();
        assert_eq!(q.submit(3, 30), Err(SubmitError::Full));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn per_addr_cap_rejects_only_the_flooder() {
        let q: Admission<u32> = Admission::new(16, 2);
        q.submit(1, 10).unwrap();
        q.submit(1, 11).unwrap();
        assert_eq!(q.submit(1, 12), Err(SubmitError::AddrSaturated));
        // Another client still gets in.
        q.submit(2, 20).unwrap();
    }

    #[test]
    fn finish_releases_both_caps() {
        let q: Admission<u32> = Admission::new(2, 1);
        q.submit(1, 10).unwrap();
        let (key, work) = q.next(Duration::from_millis(10)).expect("queued item");
        assert_eq!((key, work), (1, 10));
        // Still held while executing.
        assert_eq!(q.submit(1, 11), Err(SubmitError::AddrSaturated));
        q.finish(key);
        q.submit(1, 11).unwrap();
    }

    #[test]
    fn backlog_halves_the_per_addr_allowance() {
        // Cap 8 total / 4 per address; effective per-addr drops to 2 once
        // the backlog reaches 4.
        let q: Admission<u32> = Admission::new(8, 4);
        q.submit(1, 10).unwrap();
        q.submit(1, 11).unwrap();
        q.submit(2, 20).unwrap();
        q.submit(2, 21).unwrap();
        // Backlog is now 4: address 1 is at the reduced cap and sheds,
        // while a fresh address still gets in under the reduced cap.
        assert_eq!(q.submit(1, 12), Err(SubmitError::Shed));
        q.submit(3, 30).unwrap();
        q.submit(3, 31).unwrap();
        assert_eq!(q.submit(3, 32), Err(SubmitError::Shed));
        assert_eq!(SubmitError::Shed.status(), 429);
        // Draining the backlog restores the full allowance.
        while let Some((key, _)) = q.next(Duration::from_millis(1)) {
            q.finish(key);
        }
        q.submit(1, 12).unwrap();
        q.submit(1, 13).unwrap();
        q.submit(1, 14).unwrap();
    }

    #[test]
    fn close_wakes_and_rejects() {
        let q: Admission<u32> = Admission::new(2, 2);
        q.close();
        assert_eq!(q.submit(1, 10), Err(SubmitError::Closed));
        assert!(q.next(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn batch_drain_preserves_fifo() {
        let q: Admission<u32> = Admission::new(16, 8);
        for i in 0..5 {
            q.submit(1, i).unwrap();
        }
        let batch = q.next_batch(3, Duration::from_millis(10));
        assert_eq!(batch.iter().map(|(_, w)| *w).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(q.executing(), 3);
    }
}
