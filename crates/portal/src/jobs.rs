//! Jobs behind the portal: the board (id → status → journal), the
//! compile step (XMI or CNX body → validated descriptor), the runner
//! abstraction (wire cluster, simulated cluster, or a stub), and the
//! submission worker pool that drains the admission queue.
//!
//! Every job executes against its **own** [`Recorder`], so the canonical
//! journal streamed from `GET /jobs/<id>/journal` is exactly
//! [`journal_jsonl_filtered`]`(rec, ["wire"])` of that run — byte-
//! comparable with a simulated run of the same descriptor, the same
//! differential `cnctl submit --journal` pins.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_cluster::NodeSpec;
use cn_cnx::ast::CnxDocument;
use cn_core::spaces::SpaceRegistry;
use cn_core::{
    execute_descriptor_seeded, execute_with_api_seeded, ClientConfig, CnApi, DynamicArgs,
    JobHandle, Neighborhood, NeighborhoodConfig,
};
use cn_observe::{journal_jsonl_filtered, Recorder, LATENCY_BUCKETS_US};
use cn_sync::Mutex;
use cn_transform::xmi2cnx::{xmi_to_cnx_xslt, ClientSettings};
use cn_transform::BatchTransformer;
use cn_wire::{Discovery, FabricHandle, SocketFabric, WireConfig};

use crate::admission::Admission;

pub type JobId = u64;

/// Submission lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

struct Entry {
    state: JobState,
    /// Canonical journal, available once `Done` (or the error rendering
    /// once `Failed`).
    journal: Option<Arc<String>>,
    error: Option<String>,
    tasks: usize,
    /// When the job reached a terminal state — the eviction clock for
    /// [`JobBoard::evict_expired`].
    finished_at: Option<Instant>,
}

/// The job registry: connection handlers and workers share it.
pub struct JobBoard {
    entries: Mutex<HashMap<JobId, Entry>>,
    next_id: AtomicU64,
}

impl Default for JobBoard {
    fn default() -> Self {
        Self::new()
    }
}

impl JobBoard {
    pub fn new() -> JobBoard {
        JobBoard {
            entries: Mutex::named("portal.board", HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Register a fresh submission in `Queued` state.
    pub fn create(&self) -> JobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().insert(
            id,
            Entry {
                state: JobState::Queued,
                journal: None,
                error: None,
                tasks: 0,
                finished_at: None,
            },
        );
        id
    }

    /// Drop an entry that was rejected at admission.
    pub fn discard(&self, id: JobId) {
        self.entries.lock().remove(&id);
    }

    pub fn mark_running(&self, id: JobId) {
        if let Some(e) = self.entries.lock().get_mut(&id) {
            e.state = JobState::Running;
        }
    }

    pub fn complete(&self, id: JobId, journal: String, tasks: usize) {
        if let Some(e) = self.entries.lock().get_mut(&id) {
            e.state = JobState::Done;
            e.journal = Some(Arc::new(journal));
            e.tasks = tasks;
            e.finished_at = Some(Instant::now());
        }
    }

    pub fn fail(&self, id: JobId, error: String) {
        if let Some(e) = self.entries.lock().get_mut(&id) {
            e.state = JobState::Failed;
            e.journal = Some(Arc::new(format!("{{\"error\":{}}}\n", json_string(&error))));
            e.error = Some(error);
            e.finished_at = Some(Instant::now());
        }
    }

    /// Evict terminal entries older than `ttl`, returning how many were
    /// dropped. Queued and running jobs never expire — only finished ones
    /// whose journal has had `ttl` to be collected; after eviction the id
    /// answers `404` like any unknown job. Keeps the board bounded under
    /// a steady submission stream without a background sweeper thread
    /// (the workers call this between jobs).
    pub fn evict_expired(&self, ttl: Duration) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|_, e| e.finished_at.is_none_or(|t| t.elapsed() < ttl));
        before - entries.len()
    }

    pub fn state(&self, id: JobId) -> Option<JobState> {
        self.entries.lock().get(&id).map(|e| e.state)
    }

    /// The streamable journal: `None` until the job reaches a terminal
    /// state, then the full canonical journal (or the error rendering).
    pub fn journal(&self, id: JobId) -> Option<Option<Arc<String>>> {
        self.entries.lock().get(&id).map(|e| e.journal.clone())
    }

    /// The `GET /jobs/<id>` body.
    pub fn status_json(&self, id: JobId) -> Option<String> {
        let entries = self.entries.lock();
        let e = entries.get(&id)?;
        let mut out = format!("{{\"id\":\"j-{id}\",\"state\":\"{}\"", e.state.as_str());
        if e.state == JobState::Done {
            out.push_str(&format!(",\"tasks\":{}", e.tasks));
        }
        if let Some(err) = &e.error {
            out.push_str(&format!(",\"error\":{}", json_string(err)));
        }
        out.push_str("}\n");
        Some(out)
    }
}

/// Minimal JSON string escaping (mirrors `cnctl`'s).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse the wire-format job id (`j-<n>`) out of a request path segment.
pub fn parse_job_id(segment: &str) -> Option<JobId> {
    segment.strip_prefix("j-")?.parse().ok()
}

/// A compiled submission, ready to execute.
pub struct CompiledJob {
    pub descriptor: CnxDocument,
    pub cnx_text: String,
}

/// What a runner reports back for a completed job.
pub struct RunOutcome {
    /// Canonical journal (`journal_jsonl_filtered(rec, ["wire"])`).
    pub journal: String,
    /// Total task results across the descriptor's jobs.
    pub tasks: usize,
}

/// Executes a compiled job against some cluster. The portal is generic
/// over this so the same HTTP front end serves a live wire cluster
/// (production), an in-process simulated neighborhood (self-contained
/// demos), or a stub (benchmarks, tests).
pub trait JobRunner: Send + Sync + 'static {
    fn run(&self, job: &CompiledJob) -> Result<RunOutcome, String>;
}

/// The Figure-3 seeding every front end uses for the transitive-closure
/// example: when the descriptor has the `tctask0`/`tctask999` shape,
/// deposit the deterministic input matrix (same digraph as `cnctl
/// submit`/`trace`, so journals are cross-comparable).
pub fn seed_transitive_closure(job: &mut JobHandle, digraph_seed: u64) {
    let names = job.task_names();
    if names.iter().any(|n| n == "tctask0") && names.iter().any(|n| n == "tctask999") {
        let input = cn_tasks::random_digraph(16, 0.25, 1..9, digraph_seed);
        let worker_names: Vec<String> =
            names.iter().filter(|n| *n != "tctask0" && *n != "tctask999").cloned().collect();
        cn_tasks::seed_input(job, "matrix.txt", &input, &worker_names, "tctask999")
            .expect("seed input");
    }
}

/// Runs jobs over the real socket fabric against `cnctl serve` workers —
/// the production path. Each job gets its own client fabric and recorder,
/// exactly like one `cnctl submit` invocation.
pub struct WireRunner {
    pub discovery: Discovery,
    pub batch: bool,
    pub reactor_shards: usize,
    pub timeout: Duration,
    pub digraph_seed: u64,
}

impl JobRunner for WireRunner {
    fn run(&self, job: &CompiledJob) -> Result<RunOutcome, String> {
        let rec = Recorder::new();
        let cfg = WireConfig {
            discovery: self.discovery.clone(),
            batch: self.batch,
            reactor_shards: self.reactor_shards,
            ..WireConfig::default()
        };
        let fabric =
            SocketFabric::new(cfg, rec.clone()).map_err(|e| format!("client bind: {e}"))?;
        let api = CnApi::over(
            FabricHandle::new(fabric),
            Arc::new(SpaceRegistry::with_recorder(&rec)),
            ClientConfig::default(),
        );
        let seed = self.digraph_seed;
        let reports = execute_with_api_seeded(
            &api,
            &job.descriptor,
            &DynamicArgs::new(),
            self.timeout,
            |job| seed_transitive_closure(job, seed),
        )
        .map_err(|e| format!("execution: {e}"))?;
        Ok(RunOutcome {
            journal: journal_jsonl_filtered(&rec, &["wire"]),
            tasks: reports.iter().map(|r| r.results.len()).sum(),
        })
    }
}

/// Runs jobs on an in-process simulated neighborhood — the self-contained
/// mode (`cnctl portal --sim N`). One deployment per job keeps journals
/// deterministic and byte-identical to a standalone simulated run.
pub struct SimRunner {
    pub nodes: usize,
    pub timeout: Duration,
    pub digraph_seed: u64,
}

impl JobRunner for SimRunner {
    fn run(&self, job: &CompiledJob) -> Result<RunOutcome, String> {
        let rec = Recorder::new();
        let nb = Neighborhood::deploy_with(
            NodeSpec::fleet(self.nodes, 8192, 16),
            NeighborhoodConfig { recorder: rec.clone(), ..NeighborhoodConfig::default() },
        );
        cn_tasks::publish_all_archives(nb.registry());
        let seed = self.digraph_seed;
        let result = execute_descriptor_seeded(
            &nb,
            &job.descriptor,
            &DynamicArgs::new(),
            self.timeout,
            |job| seed_transitive_closure(job, seed),
        );
        nb.shutdown();
        let reports = result.map_err(|e| format!("execution: {e}"))?;
        Ok(RunOutcome {
            journal: journal_jsonl_filtered(&rec, &["wire"]),
            tasks: reports.iter().map(|r| r.results.len()).sum(),
        })
    }
}

/// Validates the descriptor and returns a canned journal without touching
/// any cluster — load tests and HTTP-layer tests use this to keep the
/// front end honest (parse, compile, admission) while execution is free.
pub struct StubRunner {
    pub journal: String,
    pub delay: Duration,
}

impl JobRunner for StubRunner {
    fn run(&self, job: &CompiledJob) -> Result<RunOutcome, String> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        Ok(RunOutcome { journal: self.journal.clone(), tasks: job.descriptor.task_count() })
    }
}

/// Sniff + compile one submission body: XMI goes through the cached
/// XMI2CNX stylesheet, anything else must already be CNX. Both end in
/// parse + validate.
pub fn compile_submission(body: &[u8]) -> Result<CompiledJob, String> {
    let text = std::str::from_utf8(body).map_err(|_| "submission body is not UTF-8".to_string())?;
    let cnx_text = if looks_like_xmi(text) {
        xmi_to_cnx_xslt(text, &ClientSettings::default()).map_err(|e| format!("XMI2CNX: {e}"))?
    } else {
        text.to_string()
    };
    compile_cnx(cnx_text)
}

fn compile_cnx(cnx_text: String) -> Result<CompiledJob, String> {
    let descriptor = cn_cnx::parse_cnx(&cnx_text).map_err(|e| format!("CNX parse: {e}"))?;
    cn_cnx::validate(&descriptor).map_err(|e| format!("CNX validation: {e}"))?;
    Ok(CompiledJob { descriptor, cnx_text })
}

/// Does the body parse as XML with an `XMI` root?
pub fn looks_like_xmi(text: &str) -> bool {
    cn_xml::parse(text)
        .ok()
        .and_then(|doc| {
            let root = doc.root_element()?;
            Some(doc.name(root)?.local() == "XMI")
        })
        .unwrap_or(false)
}

/// One queued unit of work: the job id plus the raw uploaded body.
pub struct JobWork {
    pub id: JobId,
    pub body: Vec<u8>,
}

/// Max submissions one worker wakeup drains (XMI bodies in the same
/// drain share one `BatchTransformer` pass).
const TRANSLATE_BATCH: usize = 8;

/// Spawn the submission workers that drain the admission queue: compile
/// (batched for XMI), execute via the runner, publish the journal on the
/// board, release the admission slots.
pub fn spawn_workers(
    n: usize,
    admission: Arc<Admission<JobWork>>,
    board: Arc<JobBoard>,
    runner: Arc<dyn JobRunner>,
    rec: Recorder,
    board_ttl: Duration,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let admission = Arc::clone(&admission);
            let board = Arc::clone(&board);
            let runner = Arc::clone(&runner);
            let rec = rec.clone();
            std::thread::Builder::new()
                .name(format!("cn-portal-worker-{i}"))
                .spawn(move || worker_loop(&admission, &board, &*runner, &rec, board_ttl))
                .expect("spawn portal worker")
        })
        .collect()
}

fn worker_loop(
    admission: &Admission<JobWork>,
    board: &JobBoard,
    runner: &dyn JobRunner,
    rec: &Recorder,
    board_ttl: Duration,
) {
    loop {
        // Board upkeep rides the worker loop: finished entries past their
        // TTL are dropped before taking on new work, so an idle-but-alive
        // portal keeps its board bounded too.
        let evicted = board.evict_expired(board_ttl);
        if evicted > 0 {
            rec.counter("portal.board_evictions").add(evicted as u64);
        }
        let batch = admission.next_batch(TRANSLATE_BATCH, Duration::from_millis(100));
        if batch.is_empty() {
            if admission.is_closed() {
                return;
            }
            continue;
        }
        rec.counter("portal.worker.batches").inc();
        let compiled = compile_batch(&batch);
        for ((key, work), compiled) in batch.into_iter().zip(compiled) {
            board.mark_running(work.id);
            let started = Instant::now();
            let span = rec.span_start("portal", "job-run", None);
            let outcome = compiled.and_then(|job| runner.run(&job));
            rec.span_end(span);
            rec.histogram("portal.job_us", LATENCY_BUCKETS_US)
                .record(started.elapsed().as_micros() as u64);
            match outcome {
                Ok(out) => {
                    board.complete(work.id, out.journal, out.tasks);
                    rec.counter("portal.jobs.completed").inc();
                }
                Err(e) => {
                    rec.event_with(cn_observe::Severity::Warn, "portal", None, || {
                        format!("job j-{} failed: {e}", work.id)
                    });
                    board.fail(work.id, e);
                    rec.counter("portal.jobs.failed").inc();
                }
            }
            admission.finish(key);
        }
    }
}

/// Compile a drained batch: XMI bodies share one batched XSLT pass, CNX
/// bodies go straight to parse + validate. Result slots line up with the
/// input batch.
fn compile_batch(batch: &[(u64, JobWork)]) -> Vec<Result<CompiledJob, String>> {
    let texts: Vec<Option<&str>> =
        batch.iter().map(|(_, w)| std::str::from_utf8(&w.body).ok()).collect();
    let xmi_idx: Vec<usize> = texts
        .iter()
        .enumerate()
        .filter(|(_, t)| t.map(looks_like_xmi).unwrap_or(false))
        .map(|(i, _)| i)
        .collect();

    let mut xmi_results: HashMap<usize, Result<String, String>> = HashMap::new();
    if xmi_idx.len() > 1 {
        let inputs: Vec<String> =
            xmi_idx.iter().map(|&i| texts[i].unwrap_or_default().to_string()).collect();
        match BatchTransformer::xmi2cnx(xmi_idx.len()) {
            Ok(batcher) => {
                for (&i, cnx) in xmi_idx
                    .iter()
                    .zip(batcher.run_with_settings(&inputs, &ClientSettings::default()))
                {
                    xmi_results.insert(i, cnx.map_err(|e| format!("XMI2CNX: {e}")));
                }
            }
            Err(e) => {
                for &i in &xmi_idx {
                    xmi_results.insert(i, Err(format!("XMI2CNX: {e}")));
                }
            }
        }
    }

    batch
        .iter()
        .enumerate()
        .map(|(i, (_, work))| match xmi_results.remove(&i) {
            Some(cnx) => cnx.and_then(compile_cnx),
            None => compile_submission(&work.body),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2_cnx() -> String {
        cn_cnx::write_cnx(&cn_cnx::ast::figure2_descriptor(2))
    }

    #[test]
    fn board_lifecycle_and_status_json() {
        let board = JobBoard::new();
        let id = board.create();
        assert_eq!(board.state(id), Some(JobState::Queued));
        assert_eq!(board.journal(id), Some(None));
        board.mark_running(id);
        assert!(board.status_json(id).unwrap().contains("\"running\""));
        board.complete(id, "{\"x\":1}\n".to_string(), 4);
        let status = board.status_json(id).unwrap();
        assert!(status.contains("\"done\""), "{status}");
        assert!(status.contains("\"tasks\":4"), "{status}");
        assert_eq!(board.journal(id).unwrap().unwrap().as_str(), "{\"x\":1}\n");
        assert_eq!(board.status_json(999), None);
    }

    #[test]
    fn failed_jobs_surface_the_error_in_both_views() {
        let board = JobBoard::new();
        let id = board.create();
        board.fail(id, "boom \"quoted\"".to_string());
        let status = board.status_json(id).unwrap();
        assert!(status.contains("\"failed\""), "{status}");
        assert!(status.contains("boom \\\"quoted\\\""), "{status}");
        let journal = board.journal(id).unwrap().unwrap();
        assert!(journal.starts_with("{\"error\":"), "{journal}");
    }

    #[test]
    fn eviction_drops_only_expired_terminal_entries() {
        let board = JobBoard::new();
        let queued = board.create();
        let running = board.create();
        board.mark_running(running);
        let done = board.create();
        board.complete(done, "{}\n".to_string(), 1);
        let failed = board.create();
        board.fail(failed, "boom".to_string());

        // A generous TTL keeps everything.
        assert_eq!(board.evict_expired(Duration::from_secs(3600)), 0);
        assert!(board.state(done).is_some());

        // TTL zero expires exactly the terminal entries; live jobs stay.
        assert_eq!(board.evict_expired(Duration::ZERO), 2);
        assert_eq!(board.state(done), None);
        assert_eq!(board.state(failed), None);
        assert_eq!(board.status_json(done), None);
        assert_eq!(board.state(queued), Some(JobState::Queued));
        assert_eq!(board.state(running), Some(JobState::Running));
    }

    #[test]
    fn job_id_round_trips() {
        assert_eq!(parse_job_id("j-42"), Some(42));
        assert_eq!(parse_job_id("42"), None);
        assert_eq!(parse_job_id("j-x"), None);
    }

    #[test]
    fn compile_accepts_cnx_and_rejects_garbage() {
        let ok = compile_submission(figure2_cnx().as_bytes()).unwrap();
        assert!(ok.descriptor.task_count() >= 4);
        let err = match compile_submission(b"definitely not a descriptor") {
            Ok(_) => panic!("garbage compiled"),
            Err(e) => e,
        };
        assert!(err.contains("CNX parse"), "{err}");
    }

    #[test]
    fn compile_accepts_xmi() {
        let xmi = cn_xml::write_document(
            &cn_model::export_xmi(&cn_transform::figure2_model(2)),
            &cn_xml::WriteOptions::xmi(),
        );
        let job = compile_submission(xmi.as_bytes()).unwrap();
        assert!(job.cnx_text.contains("tctask999"), "{}", job.cnx_text);
    }

    #[test]
    fn workers_drain_compile_and_publish() {
        let admission: Arc<Admission<JobWork>> = Arc::new(Admission::new(8, 8));
        let board = Arc::new(JobBoard::new());
        let rec = Recorder::new();
        let runner = Arc::new(StubRunner { journal: "{}\n".to_string(), delay: Duration::ZERO });
        let workers = spawn_workers(
            2,
            Arc::clone(&admission),
            Arc::clone(&board),
            runner,
            rec.clone(),
            Duration::from_secs(300),
        );

        let good = board.create();
        admission.submit(1, JobWork { id: good, body: figure2_cnx().into_bytes() }).unwrap();
        let bad = board.create();
        admission.submit(2, JobWork { id: bad, body: b"junk".to_vec() }).unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        while board.state(good) != Some(JobState::Done)
            || board.state(bad) != Some(JobState::Failed)
        {
            assert!(Instant::now() < deadline, "workers never finished the jobs");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(board.journal(good).unwrap().unwrap().as_str(), "{}\n");
        assert_eq!(rec.counter("portal.jobs.completed").get(), 1);
        assert_eq!(rec.counter("portal.jobs.failed").get(), 1);

        admission.close();
        for w in workers {
            w.join().expect("worker");
        }
    }
}
