//! The Task interface and execution context.
//!
//! "A Task is defined to be a unit of work that the user wants to perform"
//! (paper Section 3). User tasks implement [`Task`], "conforming to the Task
//! interface defined by CN API", and communicate through their
//! [`TaskContext`] — the per-task message queue the TaskManager sets up,
//! plus helpers mirroring the CN API's messaging surface.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use cn_cluster::{Addr, Envelope};
use cn_cnx::Param;
use cn_sync::channel::Receiver;
use cn_wire::FabricHandle;

use crate::message::{CnMessage, JobId, NetMsg, UserData, CLIENT_TASK_NAME};
use crate::tuplespace::TupleSpace;

/// Task failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    pub msg: String,
}

impl TaskError {
    pub fn new(msg: impl Into<String>) -> Self {
        TaskError { msg: msg.into() }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task error: {}", self.msg)
    }
}

impl std::error::Error for TaskError {}

/// The user task interface. `run` executes on a TaskManager thread
/// (`RUN_AS_THREAD_IN_TM`); its return value is reported to the client as
/// the task result.
pub trait Task: Send {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError>;
}

/// Blanket impl so closures can be tasks in tests and examples.
impl<F> Task for F
where
    F: FnMut(&mut TaskContext) -> Result<UserData, TaskError> + Send,
{
    fn run(&mut self, ctx: &mut TaskContext) -> Result<UserData, TaskError> {
        self(ctx)
    }
}

/// Receive failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    Timeout,
    /// The job is shutting down (cancellation).
    Shutdown,
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Shutdown => write!(f, "task was cancelled"),
            RecvError::Disconnected => write!(f, "message queue disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Execution context handed to [`Task::run`].
pub struct TaskContext {
    pub job: JobId,
    /// This task's name within the job.
    pub name: String,
    /// Declared parameters (from CNX `<param>` / tagged values).
    pub params: Vec<Param>,
    pub(crate) net: FabricHandle<NetMsg>,
    pub(crate) addr: Addr,
    pub(crate) rx: Receiver<Envelope<NetMsg>>,
    /// task name → endpoint address, for the whole job (the client is
    /// reachable as [`CLIENT_TASK_NAME`]).
    pub(crate) directory: HashMap<String, Addr>,
    /// Job-wide tuple space (the alternative coordination medium the paper
    /// mentions: "CN also supports communication via tuple spaces").
    pub(crate) space: Arc<TupleSpace>,
    /// Compute-cost multiplier of the hosting node (1.0 at nominal speed;
    /// see `NodeSpec::speed_pct`). [`TaskContext::simulate_work`] applies
    /// it so simulated workloads run slower on straggler nodes.
    pub(crate) work_scale: f64,
    /// Messages that arrived while a selective receive was looking for
    /// something else.
    pub(crate) stash: Vec<CnMessage>,
}

impl TaskContext {
    /// Parameter `i` as an i64, if present and numeric.
    pub fn param_i64(&self, i: usize) -> Option<i64> {
        self.params.get(i).and_then(|p| p.value.trim().parse().ok())
    }

    /// Parameter `i` as a string.
    pub fn param_str(&self, i: usize) -> Option<&str> {
        self.params.get(i).map(|p| p.value.as_str())
    }

    /// Names of all tasks in the job except this one (and the client).
    pub fn peers(&self) -> Vec<String> {
        let mut peers: Vec<String> = self
            .directory
            .keys()
            .filter(|n| n.as_str() != self.name && n.as_str() != CLIENT_TASK_NAME)
            .cloned()
            .collect();
        peers.sort();
        peers
    }

    /// The job-wide tuple space.
    pub fn tuplespace(&self) -> &TupleSpace {
        &self.space
    }

    /// The hosting node's compute-cost multiplier (1.0 = nominal speed).
    pub fn work_scale(&self) -> f64 {
        self.work_scale
    }

    /// Simulate `nominal` worth of compute: sleeps for the duration scaled
    /// by the hosting node's speed, so a `speed_pct: 25` straggler takes
    /// 4x as long. The contention benchmark's tasks are built on this.
    pub fn simulate_work(&self, nominal: Duration) {
        std::thread::sleep(nominal.mul_f64(self.work_scale));
    }

    /// Send a user-defined message to another task by name.
    pub fn send(&self, to_task: &str, tag: &str, data: UserData) -> Result<(), TaskError> {
        let &to = self
            .directory
            .get(to_task)
            .ok_or_else(|| TaskError::new(format!("unknown task {to_task:?}")))?;
        let rec = self.net.recorder();
        if rec.is_enabled() {
            rec.counter("task.msgs_sent").inc();
        }
        self.net
            .send(
                self.addr,
                to,
                NetMsg::User {
                    job: self.job,
                    from_task: self.name.clone(),
                    tag: tag.to_string(),
                    data,
                },
            )
            .map_err(|e| TaskError::new(e.to_string()))
    }

    /// Send a user-defined message to the client.
    pub fn send_to_client(&self, tag: &str, data: UserData) -> Result<(), TaskError> {
        self.send(CLIENT_TASK_NAME, tag, data)
    }

    /// Broadcast a user-defined message to every peer task. The fabric
    /// serializes the message once and fans the encoded bytes out, instead
    /// of cloning the payload per peer.
    pub fn broadcast(&self, tag: &str, data: UserData) -> Result<usize, TaskError> {
        let peers = self.peers();
        let addrs: Vec<Addr> = peers
            .iter()
            .map(|p| *self.directory.get(p).expect("peers come from the directory"))
            .collect();
        let rec = self.net.recorder();
        if rec.is_enabled() {
            rec.counter("task.msgs_sent").add(addrs.len() as u64);
        }
        self.net
            .send_many(
                self.addr,
                &addrs,
                NetMsg::User {
                    job: self.job,
                    from_task: self.name.clone(),
                    tag: tag.to_string(),
                    data,
                },
            )
            .map_err(|e| TaskError::new(e.to_string()))
    }

    fn decode(&self, env: Envelope<NetMsg>) -> Option<CnMessage> {
        match env.msg {
            NetMsg::User { from_task, tag, data, .. } => {
                let rec = self.net.recorder();
                if rec.is_enabled() {
                    rec.counter("task.msgs_received").inc();
                }
                Some(CnMessage::User { from_task, tag, data })
            }
            NetMsg::Shutdown | NetMsg::CancelTask { .. } => Some(CnMessage::Shutdown),
            // Anything else is protocol noise for a task endpoint.
            _ => None,
        }
    }

    /// Batched queue drain: block until at least one decodable message is
    /// stashed, then absorb every envelope already sitting in the channel —
    /// a coalesced flush of N frames costs one condvar wakeup, not N.
    fn fill_stash(&mut self, timeout: Duration) -> Result<(), RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        while self.stash.is_empty() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RecvError::Timeout);
            }
            match self.rx.recv_timeout(remaining) {
                Ok(env) => {
                    if let Some(m) = self.decode(env) {
                        self.stash.push(m);
                    }
                }
                Err(cn_sync::channel::RecvTimeoutError::Timeout) => return Err(RecvError::Timeout),
                Err(cn_sync::channel::RecvTimeoutError::Disconnected) => {
                    return Err(RecvError::Disconnected)
                }
            }
        }
        while let Ok(env) = self.rx.try_recv() {
            if let Some(m) = self.decode(env) {
                self.stash.push(m);
            }
        }
        Ok(())
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<CnMessage, RecvError> {
        if self.stash.is_empty() {
            self.fill_stash(timeout)?;
        }
        match self.stash.remove(0) {
            CnMessage::Shutdown => Err(RecvError::Shutdown),
            m => Ok(m),
        }
    }

    /// Blocking receive with the default (generous) timeout.
    pub fn recv(&mut self) -> Result<CnMessage, RecvError> {
        self.recv_timeout(Duration::from_secs(30))
    }

    /// Receive the next user message whose tag matches, stashing anything
    /// else for later `recv` calls. This is the selective-receive idiom the
    /// transitive-closure tasks use while waiting for "row k".
    pub fn recv_tagged(
        &mut self,
        tag: &str,
        timeout: Duration,
    ) -> Result<(String, UserData), RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // Scan the stash in arrival order: the earliest matching
            // message wins unless a Shutdown arrived before it.
            let shutdown = self.stash.iter().position(|m| matches!(m, CnMessage::Shutdown));
            let matched = self
                .stash
                .iter()
                .position(|m| matches!(m, CnMessage::User { tag: t, .. } if t == tag));
            match (matched, shutdown) {
                (Some(p), s) if s.is_none_or(|s| p < s) => {
                    if let CnMessage::User { from_task, data, .. } = self.stash.remove(p) {
                        return Ok((from_task, data));
                    }
                }
                (_, Some(s)) => {
                    self.stash.remove(s);
                    return Err(RecvError::Shutdown);
                }
                _ => {}
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RecvError::Timeout);
            }
            self.fill_stash(remaining)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cluster::{LatencyModel, Network};

    fn make_ctx(net: &Network<NetMsg>) -> (TaskContext, TaskContext) {
        let net: FabricHandle<NetMsg> = net.clone().into();
        let (a_addr, a_rx) = net.register();
        let (b_addr, b_rx) = net.register();
        let mut directory = HashMap::new();
        directory.insert("a".to_string(), a_addr);
        directory.insert("b".to_string(), b_addr);
        let space = Arc::new(TupleSpace::new());
        let a = TaskContext {
            job: JobId(1),
            name: "a".to_string(),
            params: vec![Param::integer(7), Param::string("file.txt")],
            net: net.clone(),
            addr: a_addr,
            rx: a_rx,
            directory: directory.clone(),
            space: space.clone(),
            work_scale: 1.0,
            stash: Vec::new(),
        };
        let b = TaskContext {
            job: JobId(1),
            name: "b".to_string(),
            params: vec![],
            net: net.clone(),
            addr: b_addr,
            rx: b_rx,
            directory,
            space,
            work_scale: 1.0,
            stash: Vec::new(),
        };
        (a, b)
    }

    #[test]
    fn params_accessors() {
        let net = Network::new(LatencyModel::zero(), 1);
        let (a, _b) = make_ctx(&net);
        assert_eq!(a.param_i64(0), Some(7));
        assert_eq!(a.param_str(1), Some("file.txt"));
        assert_eq!(a.param_i64(1), None);
        assert_eq!(a.param_i64(9), None);
    }

    #[test]
    fn send_and_recv_between_tasks() {
        let net = Network::new(LatencyModel::zero(), 1);
        let (a, mut b) = make_ctx(&net);
        a.send("b", "ping", UserData::I64s(vec![1, 2])).unwrap();
        match b.recv_timeout(Duration::from_secs(1)).unwrap() {
            CnMessage::User { from_task, tag, data } => {
                assert_eq!(from_task, "a");
                assert_eq!(tag, "ping");
                assert_eq!(data, UserData::I64s(vec![1, 2]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn send_to_unknown_task_fails() {
        let net = Network::new(LatencyModel::zero(), 1);
        let (a, _b) = make_ctx(&net);
        assert!(a.send("ghost", "x", UserData::Empty).is_err());
    }

    #[test]
    fn peers_excludes_self_and_client() {
        let net = Network::new(LatencyModel::zero(), 1);
        let (mut a, _b) = make_ctx(&net);
        a.directory.insert(CLIENT_TASK_NAME.to_string(), Addr(999));
        assert_eq!(a.peers(), vec!["b".to_string()]);
    }

    #[test]
    fn broadcast_reaches_peers() {
        let net = Network::new(LatencyModel::zero(), 1);
        let (a, mut b) = make_ctx(&net);
        let n = a.broadcast("k-row", UserData::I64s(vec![0, 5, 2])).unwrap();
        assert_eq!(n, 1);
        assert!(matches!(
            b.recv_timeout(Duration::from_secs(1)).unwrap(),
            CnMessage::User { tag, .. } if tag == "k-row"
        ));
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Network::new(LatencyModel::zero(), 1);
        let (_a, mut b) = make_ctx(&net);
        assert_eq!(b.recv_timeout(Duration::from_millis(10)), Err(RecvError::Timeout));
    }

    #[test]
    fn recv_tagged_stashes_other_messages() {
        let net = Network::new(LatencyModel::zero(), 1);
        let (a, mut b) = make_ctx(&net);
        a.send("b", "other", UserData::Text("first".into())).unwrap();
        a.send("b", "wanted", UserData::Text("second".into())).unwrap();
        let (_, data) = b.recv_tagged("wanted", Duration::from_secs(1)).unwrap();
        assert_eq!(data, UserData::Text("second".into()));
        // The stashed message is still deliverable.
        match b.recv_timeout(Duration::from_secs(1)).unwrap() {
            CnMessage::User { tag, .. } => assert_eq!(tag, "other"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shutdown_surfaces_as_recv_error() {
        let net = Network::new(LatencyModel::zero(), 1);
        let (a, mut b) = make_ctx(&net);
        net.send(a.addr, b.addr, NetMsg::Shutdown).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)), Err(RecvError::Shutdown));
    }

    #[test]
    fn closure_is_a_task() {
        let mut f = |_ctx: &mut TaskContext| Ok(UserData::Text("done".into()));
        // Just type-check the blanket impl.
        fn takes_task<T: Task>(_t: &mut T) {}
        takes_task(&mut f);
    }
}
