//! Wire codec for the CN protocol vocabulary.
//!
//! Implements [`cn_wire::WireEncode`] for [`NetMsg`] and its component
//! types so a [`cn_wire::SocketFabric`] can carry the same protocol the
//! simulated fabric carries in-process. Every variant has a fixed tag
//! byte; unknown tags and malformed fields decode to typed
//! [`WireError`]s, never panics (fuzzed in the workspace proptest suite).

use std::collections::HashMap;

use cn_cluster::Addr;
use cn_cnx::{Param, ParamType, RunModel};
use cn_wire::{Reader, WireEncode, WireError, WireErrorKind, Writer};

use crate::message::{Bid, JobId, JobRequirements, NetMsg, TaskSpec, UserData};
use crate::scheduler::LoadSignal;
use crate::tuplespace::Field;

impl WireEncode for JobId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(JobId(r.get_u64()?))
    }
}

impl WireEncode for UserData {
    fn encode(&self, w: &mut Writer) {
        match self {
            UserData::Empty => w.put_u8(0),
            UserData::Text(s) => {
                w.put_u8(1);
                w.put_str(s);
            }
            UserData::Bytes(b) => {
                w.put_u8(2);
                w.put_bytes(b);
            }
            UserData::I64s(v) => {
                w.put_u8(3);
                w.put_usize(v.len());
                for x in v {
                    w.put_i64(*x);
                }
            }
            UserData::F64s(v) => {
                w.put_u8(4);
                w.put_usize(v.len());
                for x in v {
                    w.put_f64(*x);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(UserData::Empty),
            1 => Ok(UserData::Text(r.get_str()?)),
            2 => Ok(UserData::Bytes(r.get_bytes()?)),
            3 => {
                let n = r.get_len()?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.get_i64()?);
                }
                Ok(UserData::I64s(v))
            }
            4 => {
                let n = r.get_len()?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.get_f64()?);
                }
                Ok(UserData::F64s(v))
            }
            t => Err(WireError::new(WireErrorKind::BadTag, format!("UserData tag {t}"))),
        }
    }
}

impl WireEncode for Field {
    fn encode(&self, w: &mut Writer) {
        match self {
            Field::I(v) => {
                w.put_u8(0);
                w.put_i64(*v);
            }
            Field::F(v) => {
                w.put_u8(1);
                w.put_f64(*v);
            }
            Field::S(s) => {
                w.put_u8(2);
                w.put_str(s);
            }
            Field::B(b) => {
                w.put_u8(3);
                w.put_bytes(b);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Field::I(r.get_i64()?)),
            1 => Ok(Field::F(r.get_f64()?)),
            2 => Ok(Field::S(r.get_str()?)),
            3 => Ok(Field::B(r.get_bytes()?)),
            t => Err(WireError::new(WireErrorKind::BadTag, format!("Field tag {t}"))),
        }
    }
}

impl WireEncode for JobRequirements {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.min_free_memory_mb);
        w.put_usize(self.min_free_slots);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(JobRequirements {
            min_free_memory_mb: r.get_u64()?,
            min_free_slots: r.get_u32()? as usize,
        })
    }
}

impl WireEncode for LoadSignal {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.queue_depth);
        w.put_u32(self.in_flight);
        w.put_u64(self.ewma_dispatch_us);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LoadSignal {
            queue_depth: r.get_u32()?,
            in_flight: r.get_u32()?,
            ewma_dispatch_us: r.get_u64()?,
        })
    }
}

impl WireEncode for Bid {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.server);
        self.addr.encode(w);
        w.put_f64(self.load);
        w.put_u64(self.free_memory_mb);
        w.put_usize(self.free_slots);
        self.signal.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Bid {
            server: r.get_str()?,
            addr: Addr::decode(r)?,
            load: r.get_f64()?,
            free_memory_mb: r.get_u64()?,
            free_slots: r.get_u32()? as usize,
            signal: LoadSignal::decode(r)?,
        })
    }
}

/// `RunModel` on the wire: a tag byte (the CNX string forms are longer
/// and already validated at parse time).
fn put_runmodel(w: &mut Writer, rm: RunModel) {
    w.put_u8(match rm {
        RunModel::RunAsThreadInTm => 0,
        RunModel::RunAsProcess => 1,
    });
}

fn get_runmodel(r: &mut Reader<'_>) -> Result<RunModel, WireError> {
    match r.get_u8()? {
        0 => Ok(RunModel::RunAsThreadInTm),
        1 => Ok(RunModel::RunAsProcess),
        t => Err(WireError::new(WireErrorKind::BadTag, format!("RunModel tag {t}"))),
    }
}

/// `Param` on the wire: type name + value. Source spans are a parse-time
/// artifact and do not cross processes; decoded params carry synthetic
/// spans (`Param` equality already ignores spans).
fn put_param(w: &mut Writer, p: &Param) {
    w.put_str(p.ty.as_str());
    w.put_str(&p.value);
}

fn get_param(r: &mut Reader<'_>) -> Result<Param, WireError> {
    let ty = ParamType::parse(&r.get_str()?);
    let value = r.get_str()?;
    Ok(Param::new(ty, value))
}

impl WireEncode for TaskSpec {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_str(&self.jar);
        w.put_str(&self.class);
        w.put_usize(self.depends.len());
        for d in &self.depends {
            w.put_str(d);
        }
        w.put_u64(self.memory_mb);
        put_runmodel(w, self.runmodel);
        w.put_usize(self.params.len());
        for p in &self.params {
            put_param(w, p);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = r.get_str()?;
        let jar = r.get_str()?;
        let class = r.get_str()?;
        let n = r.get_len()?;
        let mut depends = Vec::with_capacity(n);
        for _ in 0..n {
            depends.push(r.get_str()?);
        }
        let memory_mb = r.get_u64()?;
        let runmodel = get_runmodel(r)?;
        let n = r.get_len()?;
        let mut params = Vec::with_capacity(n);
        for _ in 0..n {
            params.push(get_param(r)?);
        }
        Ok(TaskSpec { name, jar, class, depends, memory_mb, runmodel, params })
    }
}

fn put_opt_addr(w: &mut Writer, a: &Option<Addr>) {
    match a {
        None => w.put_bool(false),
        Some(a) => {
            w.put_bool(true);
            a.encode(w);
        }
    }
}

fn get_opt_addr(r: &mut Reader<'_>) -> Result<Option<Addr>, WireError> {
    Ok(if r.get_bool()? { Some(Addr::decode(r)?) } else { None })
}

/// The task directory is encoded sorted by name so identical directories
/// produce identical bytes regardless of `HashMap` iteration order.
fn put_directory(w: &mut Writer, d: &HashMap<String, Addr>) {
    let mut entries: Vec<(&String, &Addr)> = d.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.put_usize(entries.len());
    for (name, addr) in entries {
        w.put_str(name);
        addr.encode(w);
    }
}

fn get_directory(r: &mut Reader<'_>) -> Result<HashMap<String, Addr>, WireError> {
    let n = r.get_len()?;
    let mut d = HashMap::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        let addr = Addr::decode(r)?;
        d.insert(name, addr);
    }
    Ok(d)
}

fn put_results(w: &mut Writer, results: &[(String, UserData)]) {
    w.put_usize(results.len());
    for (name, data) in results {
        w.put_str(name);
        data.encode(w);
    }
}

fn get_results(r: &mut Reader<'_>) -> Result<Vec<(String, UserData)>, WireError> {
    let n = r.get_len()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        let data = UserData::decode(r)?;
        v.push((name, data));
    }
    Ok(v)
}

impl WireEncode for NetMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            NetMsg::SolicitJobManager { job, requirements, reply_to } => {
                w.put_u8(0);
                job.encode(w);
                requirements.encode(w);
                reply_to.encode(w);
            }
            NetMsg::JobManagerBid { job, bid } => {
                w.put_u8(1);
                job.encode(w);
                bid.encode(w);
            }
            NetMsg::CreateJob { job, client, reply_to } => {
                w.put_u8(2);
                job.encode(w);
                client.encode(w);
                reply_to.encode(w);
            }
            NetMsg::JobAck { job, accepted, reason } => {
                w.put_u8(3);
                job.encode(w);
                w.put_bool(*accepted);
                w.put_str(reason);
            }
            NetMsg::CreateTask { job, spec, reply_to } => {
                w.put_u8(4);
                job.encode(w);
                spec.encode(w);
                reply_to.encode(w);
            }
            NetMsg::TaskAck { job, task, accepted, reason, server, task_addr } => {
                w.put_u8(5);
                job.encode(w);
                w.put_str(task);
                w.put_bool(*accepted);
                w.put_str(reason);
                w.put_str(server);
                put_opt_addr(w, task_addr);
            }
            NetMsg::StartJob { job } => {
                w.put_u8(6);
                job.encode(w);
            }
            NetMsg::CancelJob { job } => {
                w.put_u8(7);
                job.encode(w);
            }
            NetMsg::SolicitTaskManager { job, task, memory_mb, reply_to } => {
                w.put_u8(8);
                job.encode(w);
                w.put_str(task);
                w.put_u64(*memory_mb);
                reply_to.encode(w);
            }
            NetMsg::TaskManagerBid { job, task, bid } => {
                w.put_u8(9);
                job.encode(w);
                w.put_str(task);
                bid.encode(w);
            }
            NetMsg::UploadArchive { jar, size_bytes } => {
                w.put_u8(10);
                w.put_str(jar);
                w.put_u64(*size_bytes);
            }
            NetMsg::AssignTask { job, spec, jm, reply_to } => {
                w.put_u8(11);
                job.encode(w);
                spec.encode(w);
                jm.encode(w);
                reply_to.encode(w);
            }
            NetMsg::AssignAck { job, task, accepted, reason, task_addr } => {
                w.put_u8(12);
                job.encode(w);
                w.put_str(task);
                w.put_bool(*accepted);
                w.put_str(reason);
                put_opt_addr(w, task_addr);
            }
            NetMsg::StartTask { job, task, directory, client } => {
                w.put_u8(13);
                job.encode(w);
                w.put_str(task);
                put_directory(w, directory);
                client.encode(w);
            }
            NetMsg::CancelTask { job, task } => {
                w.put_u8(14);
                job.encode(w);
                w.put_str(task);
            }
            NetMsg::TaskExited { job, task } => {
                w.put_u8(15);
                job.encode(w);
                w.put_str(task);
            }
            NetMsg::TaskStarted { job, task } => {
                w.put_u8(16);
                job.encode(w);
                w.put_str(task);
            }
            NetMsg::TaskCompleted { job, task, result } => {
                w.put_u8(17);
                job.encode(w);
                w.put_str(task);
                result.encode(w);
            }
            NetMsg::TaskFailed { job, task, error } => {
                w.put_u8(18);
                job.encode(w);
                w.put_str(task);
                w.put_str(error);
            }
            NetMsg::JobCompleted { job, results } => {
                w.put_u8(19);
                job.encode(w);
                put_results(w, results);
            }
            NetMsg::JobFailed { job, error } => {
                w.put_u8(20);
                job.encode(w);
                w.put_str(error);
            }
            NetMsg::User { job, from_task, tag, data } => {
                w.put_u8(21);
                job.encode(w);
                w.put_str(from_task);
                w.put_str(tag);
                data.encode(w);
            }
            NetMsg::SeedTuple { job, tuple } => {
                w.put_u8(22);
                job.encode(w);
                w.put_usize(tuple.len());
                for f in tuple {
                    f.encode(w);
                }
            }
            NetMsg::Shutdown => w.put_u8(23),
            NetMsg::LoadReport { server, addr, signal } => {
                w.put_u8(24);
                w.put_str(server);
                addr.encode(w);
                signal.encode(w);
            }
            NetMsg::StealRequest { thief, reply_to, endpoint } => {
                w.put_u8(25);
                w.put_str(thief);
                reply_to.encode(w);
                endpoint.encode(w);
            }
            NetMsg::StealGrant { job, spec, jm, client, directory, victim, old_endpoint } => {
                w.put_u8(26);
                job.encode(w);
                spec.encode(w);
                jm.encode(w);
                client.encode(w);
                put_directory(w, directory);
                w.put_str(victim);
                old_endpoint.encode(w);
            }
            NetMsg::StealReturn { job, task } => {
                w.put_u8(27);
                job.encode(w);
                w.put_str(task);
            }
            NetMsg::TaskMigrated { job, task, server, tm, task_addr } => {
                w.put_u8(28);
                job.encode(w);
                w.put_str(task);
                w.put_str(server);
                tm.encode(w);
                task_addr.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => NetMsg::SolicitJobManager {
                job: JobId::decode(r)?,
                requirements: JobRequirements::decode(r)?,
                reply_to: Addr::decode(r)?,
            },
            1 => NetMsg::JobManagerBid { job: JobId::decode(r)?, bid: Bid::decode(r)? },
            2 => NetMsg::CreateJob {
                job: JobId::decode(r)?,
                client: Addr::decode(r)?,
                reply_to: Addr::decode(r)?,
            },
            3 => NetMsg::JobAck {
                job: JobId::decode(r)?,
                accepted: r.get_bool()?,
                reason: r.get_str()?,
            },
            4 => NetMsg::CreateTask {
                job: JobId::decode(r)?,
                spec: TaskSpec::decode(r)?,
                reply_to: Addr::decode(r)?,
            },
            5 => NetMsg::TaskAck {
                job: JobId::decode(r)?,
                task: r.get_str()?,
                accepted: r.get_bool()?,
                reason: r.get_str()?,
                server: r.get_str()?,
                task_addr: get_opt_addr(r)?,
            },
            6 => NetMsg::StartJob { job: JobId::decode(r)? },
            7 => NetMsg::CancelJob { job: JobId::decode(r)? },
            8 => NetMsg::SolicitTaskManager {
                job: JobId::decode(r)?,
                task: r.get_str()?,
                memory_mb: r.get_u64()?,
                reply_to: Addr::decode(r)?,
            },
            9 => NetMsg::TaskManagerBid {
                job: JobId::decode(r)?,
                task: r.get_str()?,
                bid: Bid::decode(r)?,
            },
            10 => NetMsg::UploadArchive { jar: r.get_str()?, size_bytes: r.get_u64()? },
            11 => NetMsg::AssignTask {
                job: JobId::decode(r)?,
                spec: TaskSpec::decode(r)?,
                jm: Addr::decode(r)?,
                reply_to: Addr::decode(r)?,
            },
            12 => NetMsg::AssignAck {
                job: JobId::decode(r)?,
                task: r.get_str()?,
                accepted: r.get_bool()?,
                reason: r.get_str()?,
                task_addr: get_opt_addr(r)?,
            },
            13 => NetMsg::StartTask {
                job: JobId::decode(r)?,
                task: r.get_str()?,
                directory: get_directory(r)?,
                client: Addr::decode(r)?,
            },
            14 => NetMsg::CancelTask { job: JobId::decode(r)?, task: r.get_str()? },
            15 => NetMsg::TaskExited { job: JobId::decode(r)?, task: r.get_str()? },
            16 => NetMsg::TaskStarted { job: JobId::decode(r)?, task: r.get_str()? },
            17 => NetMsg::TaskCompleted {
                job: JobId::decode(r)?,
                task: r.get_str()?,
                result: UserData::decode(r)?,
            },
            18 => NetMsg::TaskFailed {
                job: JobId::decode(r)?,
                task: r.get_str()?,
                error: r.get_str()?,
            },
            19 => NetMsg::JobCompleted { job: JobId::decode(r)?, results: get_results(r)? },
            20 => NetMsg::JobFailed { job: JobId::decode(r)?, error: r.get_str()? },
            21 => NetMsg::User {
                job: JobId::decode(r)?,
                from_task: r.get_str()?,
                tag: r.get_str()?,
                data: UserData::decode(r)?,
            },
            22 => {
                let job = JobId::decode(r)?;
                let n = r.get_len()?;
                let mut tuple = Vec::with_capacity(n);
                for _ in 0..n {
                    tuple.push(Field::decode(r)?);
                }
                NetMsg::SeedTuple { job, tuple }
            }
            23 => NetMsg::Shutdown,
            24 => NetMsg::LoadReport {
                server: r.get_str()?,
                addr: Addr::decode(r)?,
                signal: LoadSignal::decode(r)?,
            },
            25 => NetMsg::StealRequest {
                thief: r.get_str()?,
                reply_to: Addr::decode(r)?,
                endpoint: Addr::decode(r)?,
            },
            26 => NetMsg::StealGrant {
                job: JobId::decode(r)?,
                spec: TaskSpec::decode(r)?,
                jm: Addr::decode(r)?,
                client: Addr::decode(r)?,
                directory: get_directory(r)?,
                victim: r.get_str()?,
                old_endpoint: Addr::decode(r)?,
            },
            27 => NetMsg::StealReturn { job: JobId::decode(r)?, task: r.get_str()? },
            28 => NetMsg::TaskMigrated {
                job: JobId::decode(r)?,
                task: r.get_str()?,
                server: r.get_str()?,
                tm: Addr::decode(r)?,
                task_addr: Addr::decode(r)?,
            },
            t => return Err(WireError::new(WireErrorKind::BadTag, format!("NetMsg tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cluster::Envelope;
    use cn_wire::codec::{decode_payload, encode_payload};

    fn round_trip(msg: NetMsg) {
        let env = Envelope { from: Addr(11), to: Addr(22), msg };
        let bytes = encode_payload(&env);
        let back: Envelope<NetMsg> = decode_payload(&bytes).expect("round trip");
        assert_eq!(back, env);
    }

    fn sample_spec() -> TaskSpec {
        let mut spec = TaskSpec::new("tctask1", "tctask.jar", "TCTask");
        spec.depends = vec!["tctask0".into()];
        spec.memory_mb = 1000;
        spec.params = vec![Param::integer(3), Param::string("graph.txt")];
        spec
    }

    #[test]
    fn every_variant_round_trips() {
        let bid = Bid {
            server: "node0".into(),
            addr: Addr(42),
            load: 0.25,
            free_memory_mb: 4000,
            free_slots: 4,
            signal: LoadSignal { queue_depth: 3, in_flight: 2, ewma_dispatch_us: 750 },
        };
        let mut directory = HashMap::new();
        directory.insert("t0".to_string(), Addr(5));
        directory.insert("t1".to_string(), Addr(6));
        let steal_directory = directory.clone();
        let msgs = vec![
            NetMsg::SolicitJobManager {
                job: JobId(1),
                requirements: JobRequirements { min_free_memory_mb: 512, min_free_slots: 2 },
                reply_to: Addr(9),
            },
            NetMsg::JobManagerBid { job: JobId(1), bid: bid.clone() },
            NetMsg::CreateJob { job: JobId(1), client: Addr(9), reply_to: Addr(9) },
            NetMsg::JobAck { job: JobId(1), accepted: false, reason: "busy".into() },
            NetMsg::CreateTask { job: JobId(1), spec: sample_spec(), reply_to: Addr(9) },
            NetMsg::TaskAck {
                job: JobId(1),
                task: "t0".into(),
                accepted: true,
                reason: String::new(),
                server: "node0".into(),
                task_addr: Some(Addr(77)),
            },
            NetMsg::StartJob { job: JobId(1) },
            NetMsg::CancelJob { job: JobId(1) },
            NetMsg::SolicitTaskManager {
                job: JobId(1),
                task: "t0".into(),
                memory_mb: 1000,
                reply_to: Addr(3),
            },
            NetMsg::TaskManagerBid { job: JobId(1), task: "t0".into(), bid },
            NetMsg::UploadArchive { jar: "tctask.jar".into(), size_bytes: 4096 },
            NetMsg::AssignTask {
                job: JobId(1),
                spec: sample_spec(),
                jm: Addr(2),
                reply_to: Addr(2),
            },
            NetMsg::AssignAck {
                job: JobId(1),
                task: "t0".into(),
                accepted: false,
                reason: "full".into(),
                task_addr: None,
            },
            NetMsg::StartTask { job: JobId(1), task: "t0".into(), directory, client: Addr(9) },
            NetMsg::CancelTask { job: JobId(1), task: "t0".into() },
            NetMsg::TaskExited { job: JobId(1), task: "t0".into() },
            NetMsg::TaskStarted { job: JobId(1), task: "t0".into() },
            NetMsg::TaskCompleted {
                job: JobId(1),
                task: "t0".into(),
                result: UserData::I64s(vec![1, -2, 3]),
            },
            NetMsg::TaskFailed { job: JobId(1), task: "t0".into(), error: "kaboom".into() },
            NetMsg::JobCompleted {
                job: JobId(1),
                results: vec![
                    ("t0".into(), UserData::Text("done".into())),
                    ("t1".into(), UserData::F64s(vec![1.5])),
                ],
            },
            NetMsg::JobFailed { job: JobId(1), error: "cancelled".into() },
            NetMsg::User {
                job: JobId(1),
                from_task: "t0".into(),
                tag: "k-row".into(),
                data: UserData::Bytes(vec![0, 255, 7]),
            },
            NetMsg::SeedTuple {
                job: JobId(1),
                tuple: vec![
                    Field::S("adj".into()),
                    Field::I(-9),
                    Field::F(2.5),
                    Field::B(vec![1, 2]),
                ],
            },
            NetMsg::Shutdown,
            NetMsg::LoadReport {
                server: "node1".into(),
                addr: Addr(7),
                signal: LoadSignal { queue_depth: 9, in_flight: 1, ewma_dispatch_us: 12_345 },
            },
            NetMsg::StealRequest { thief: "node2".into(), reply_to: Addr(3), endpoint: Addr(88) },
            NetMsg::StealGrant {
                job: JobId(1),
                spec: sample_spec(),
                jm: Addr(2),
                client: Addr(9),
                directory: steal_directory,
                victim: "node0".into(),
                old_endpoint: Addr(77),
            },
            NetMsg::StealReturn { job: JobId(1), task: "t0".into() },
            NetMsg::TaskMigrated {
                job: JobId(1),
                task: "t0".into(),
                server: "node2".into(),
                tm: Addr(3),
                task_addr: Addr(88),
            },
        ];
        for msg in msgs {
            round_trip(msg);
        }
    }

    #[test]
    fn directory_bytes_are_order_independent() {
        let mut w1 = Writer::new();
        let mut w2 = Writer::new();
        let mut d1 = HashMap::new();
        let mut d2 = HashMap::new();
        for i in 0..16 {
            d1.insert(format!("t{i}"), Addr(i));
        }
        for i in (0..16).rev() {
            d2.insert(format!("t{i}"), Addr(i));
        }
        put_directory(&mut w1, &d1);
        put_directory(&mut w2, &d2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn unknown_netmsg_tag_is_typed_error() {
        let mut r = Reader::new(&[200]);
        assert_eq!(NetMsg::decode(&mut r).unwrap_err().kind, WireErrorKind::BadTag);
    }

    #[test]
    fn params_survive_without_spans() {
        let mut w = Writer::new();
        let original = Param::new(ParamType::Other("custom".into()), "v");
        put_param(&mut w, &original);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_param(&mut r).unwrap();
        // Param equality ignores spans by design.
        assert_eq!(back, original);
        assert_eq!(back.ty.as_str(), "custom");
    }
}
