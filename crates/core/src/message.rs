//! The CN messaging model.
//!
//! "CN uses messages as the fundamental information between the CN and the
//! client. CN has well-defined messages that define the Message Request,
//! expected Message Action and expected Message Response. Besides the
//! well-defined messages, CN also allows user-defined messages that only the
//! application (client and its tasks) understands." (paper Section 3)
//!
//! [`NetMsg`] is the well-defined protocol vocabulary carried on the
//! cluster fabric; [`UserData`] is the opaque payload of user-defined
//! messages, for which "CN merely provides a message delivery mechanism".

use std::collections::HashMap;

use cn_cluster::Addr;
use cn_cnx::{Param, RunModel};

/// Job identifier, unique per client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job:{}", self.0)
    }
}

/// Opaque user payload. CN does not interpret it.
#[derive(Debug, Clone, PartialEq)]
pub enum UserData {
    Empty,
    Text(String),
    Bytes(Vec<u8>),
    I64s(Vec<i64>),
    F64s(Vec<f64>),
}

impl UserData {
    /// Approximate wire size, used by the fabric metrics and benches.
    pub fn size_bytes(&self) -> usize {
        match self {
            UserData::Empty => 0,
            UserData::Text(s) => s.len(),
            UserData::Bytes(b) => b.len(),
            UserData::I64s(v) => v.len() * 8,
            UserData::F64s(v) => v.len() * 8,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            UserData::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64s(&self) -> Option<&[i64]> {
        match self {
            UserData::I64s(v) => Some(v),
            _ => None,
        }
    }
}

/// Requirements a client attaches to a job; JobManagers bid only if they can
/// satisfy them ("A JobManager is selected based on User specified Job
/// requirements from the list of willing JobManagers").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRequirements {
    pub min_free_memory_mb: u64,
    pub min_free_slots: usize,
}

impl Default for JobRequirements {
    fn default() -> Self {
        JobRequirements { min_free_memory_mb: 0, min_free_slots: 1 }
    }
}

/// Everything a TaskManager needs to instantiate a task. The runtime
/// counterpart of a CNX `<task>` element.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    pub name: String,
    pub jar: String,
    pub class: String,
    pub depends: Vec<String>,
    pub memory_mb: u64,
    pub runmodel: RunModel,
    pub params: Vec<Param>,
}

impl TaskSpec {
    pub fn new(name: impl Into<String>, jar: impl Into<String>, class: impl Into<String>) -> Self {
        TaskSpec {
            name: name.into(),
            jar: jar.into(),
            class: class.into(),
            depends: Vec::new(),
            memory_mb: 1000,
            runmodel: RunModel::RunAsThreadInTm,
            params: Vec::new(),
        }
    }

    /// Convert from a parsed CNX task element.
    pub fn from_cnx(task: &cn_cnx::Task) -> Self {
        TaskSpec {
            name: task.name.clone(),
            jar: task.jar.clone(),
            class: task.class.clone(),
            depends: task.depends.clone(),
            memory_mb: task.req.memory_mb,
            runmodel: task.req.runmodel,
            params: task.params.clone(),
        }
    }
}

/// A bid from a willing JobManager or TaskManager.
#[derive(Debug, Clone, PartialEq)]
pub struct Bid {
    pub server: String,
    pub addr: Addr,
    pub load: f64,
    pub free_memory_mb: u64,
    pub free_slots: usize,
    /// Live load vector sampled when the bid was made — what
    /// `Policy::LoadAware` ranks on.
    pub signal: crate::scheduler::LoadSignal,
}

/// The well-defined CN protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMsg {
    // -- JobManager discovery (multicast) ------------------------------
    /// Client → discovery group: who is willing to manage this job?
    SolicitJobManager {
        job: JobId,
        requirements: JobRequirements,
        reply_to: Addr,
    },
    /// Willing JobManager → client.
    JobManagerBid {
        job: JobId,
        bid: Bid,
    },

    // -- Job lifecycle (client ↔ selected JobManager) ------------------
    CreateJob {
        job: JobId,
        client: Addr,
        reply_to: Addr,
    },
    JobAck {
        job: JobId,
        accepted: bool,
        reason: String,
    },
    /// Client → JM: create (and place) one task.
    CreateTask {
        job: JobId,
        spec: TaskSpec,
        reply_to: Addr,
    },
    /// JM → client: task placed on `server`, reachable at `task_addr`.
    TaskAck {
        job: JobId,
        task: String,
        accepted: bool,
        reason: String,
        server: String,
        task_addr: Option<Addr>,
    },
    /// Client → JM: start executing (roots first, dependents as
    /// dependencies complete).
    StartJob {
        job: JobId,
    },
    /// Client → JM: cancel the whole job (running tasks are interrupted).
    CancelJob {
        job: JobId,
    },

    // -- Task placement (JM ↔ TaskManagers) ----------------------------
    SolicitTaskManager {
        job: JobId,
        task: String,
        memory_mb: u64,
        reply_to: Addr,
    },
    TaskManagerBid {
        job: JobId,
        task: String,
        bid: Bid,
    },
    /// JM → TM: ship the task archive ("the JobManager will upload the JAR
    /// file to that TaskManager"). `size_bytes` models the transfer cost.
    UploadArchive {
        jar: String,
        size_bytes: u64,
    },
    /// JM → TM: instantiate the task (sets up its message queue).
    AssignTask {
        job: JobId,
        spec: TaskSpec,
        jm: Addr,
        reply_to: Addr,
    },
    AssignAck {
        job: JobId,
        task: String,
        accepted: bool,
        reason: String,
        task_addr: Option<Addr>,
    },
    /// JM → TM: start a previously assigned task thread.
    StartTask {
        job: JobId,
        task: String,
        directory: HashMap<String, Addr>,
        client: Addr,
    },
    /// JM → TM: cancel an assigned (possibly running) task.
    CancelTask {
        job: JobId,
        task: String,
    },
    /// Task thread → its own TaskManager: the task thread has exited and
    /// its bookkeeping entry can be dropped.
    TaskExited {
        job: JobId,
        task: String,
    },

    // -- Task lifecycle (TM → JM, relayed to client) --------------------
    TaskStarted {
        job: JobId,
        task: String,
    },
    TaskCompleted {
        job: JobId,
        task: String,
        result: UserData,
    },
    TaskFailed {
        job: JobId,
        task: String,
        error: String,
    },

    // -- Job completion (JM → client) ------------------------------------
    JobCompleted {
        job: JobId,
        results: Vec<(String, UserData)>,
    },
    JobFailed {
        job: JobId,
        error: String,
    },

    // -- User-defined messages (task ↔ task, task ↔ client) -------------
    User {
        job: JobId,
        from_task: String,
        tag: String,
        data: UserData,
    },

    /// Client → JM (wire mode): deposit a tuple into the job's tuple
    /// space before the job starts. On a shared-memory fabric the client
    /// writes the space directly and this message is never sent; over the
    /// wire the JM deposits it into its own replica and relays it to every
    /// TaskManager assigned a task of the job.
    SeedTuple {
        job: JobId,
        tuple: Vec<crate::tuplespace::Field>,
    },

    // -- Control ----------------------------------------------------------
    Shutdown,

    // -- Load-aware scheduling + work stealing (DESIGN.md §14) ----------
    /// TM → discovery group (or unicast as a steal decline): event-driven
    /// load heartbeat. Sent when the TaskManager's load signal changes,
    /// throttled to one multicast per `StealConfig::heartbeat` interval —
    /// a quiescent cluster sends none, so deterministic single-job runs
    /// stay byte-identical.
    LoadReport {
        server: String,
        addr: Addr,
        signal: crate::scheduler::LoadSignal,
    },
    /// Idle TM → a loaded peer: ask for one queued task. `endpoint` is a
    /// pre-registered task endpoint on the thief, so a grant needs no
    /// extra round-trip before messages can be forwarded.
    StealRequest {
        thief: String,
        reply_to: Addr,
        endpoint: Addr,
    },
    /// Victim TM → thief: at-most-once handoff of one queued, never-started
    /// task. The victim has already dequeued it and released its
    /// reservation; exactly one of {thief commits via `TaskMigrated`,
    /// thief bounces via `StealReturn`} follows.
    StealGrant {
        job: JobId,
        spec: TaskSpec,
        /// The JobManager the task reports lifecycle events to.
        jm: Addr,
        client: Addr,
        directory: HashMap<String, Addr>,
        victim: String,
        /// The task's original endpoint on the victim; peers with stale
        /// directories keep sending here, and the victim forwards.
        old_endpoint: Addr,
    },
    /// Thief → victim: could not host the granted task after all (archive
    /// missing or reservation failed); the victim re-queues it.
    StealReturn {
        job: JobId,
        task: String,
    },
    /// Thief → JobManager *and* thief → victim after a successful steal:
    /// the task now lives on `server` at `task_addr`. The JM updates its
    /// placement table (cancel paths, later directories); the victim
    /// starts forwarding the old endpoint's queue to `task_addr`.
    TaskMigrated {
        job: JobId,
        task: String,
        server: String,
        tm: Addr,
        task_addr: Addr,
    },
}

impl NetMsg {
    /// Short name for tracing/metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            NetMsg::SolicitJobManager { .. } => "SolicitJobManager",
            NetMsg::JobManagerBid { .. } => "JobManagerBid",
            NetMsg::CreateJob { .. } => "CreateJob",
            NetMsg::JobAck { .. } => "JobAck",
            NetMsg::CreateTask { .. } => "CreateTask",
            NetMsg::TaskAck { .. } => "TaskAck",
            NetMsg::StartJob { .. } => "StartJob",
            NetMsg::CancelJob { .. } => "CancelJob",
            NetMsg::SolicitTaskManager { .. } => "SolicitTaskManager",
            NetMsg::TaskManagerBid { .. } => "TaskManagerBid",
            NetMsg::UploadArchive { .. } => "UploadArchive",
            NetMsg::AssignTask { .. } => "AssignTask",
            NetMsg::AssignAck { .. } => "AssignAck",
            NetMsg::StartTask { .. } => "StartTask",
            NetMsg::CancelTask { .. } => "CancelTask",
            NetMsg::TaskExited { .. } => "TaskExited",
            NetMsg::TaskStarted { .. } => "TaskStarted",
            NetMsg::TaskCompleted { .. } => "TaskCompleted",
            NetMsg::TaskFailed { .. } => "TaskFailed",
            NetMsg::JobCompleted { .. } => "JobCompleted",
            NetMsg::JobFailed { .. } => "JobFailed",
            NetMsg::User { .. } => "User",
            NetMsg::SeedTuple { .. } => "SeedTuple",
            NetMsg::Shutdown => "Shutdown",
            NetMsg::LoadReport { .. } => "LoadReport",
            NetMsg::StealRequest { .. } => "StealRequest",
            NetMsg::StealGrant { .. } => "StealGrant",
            NetMsg::StealReturn { .. } => "StealReturn",
            NetMsg::TaskMigrated { .. } => "TaskMigrated",
        }
    }
}

/// A user-visible message delivered to a task or the client, decoded from
/// [`NetMsg`] (the "Get Messages" surface of the CN API).
#[derive(Debug, Clone, PartialEq)]
pub enum CnMessage {
    /// User-defined message from another task (or the client, `from_task`
    /// = `"<client>"`).
    User {
        from_task: String,
        tag: String,
        data: UserData,
    },
    TaskStarted {
        task: String,
    },
    TaskCompleted {
        task: String,
        result: UserData,
    },
    TaskFailed {
        task: String,
        error: String,
    },
    JobCompleted {
        results: Vec<(String, UserData)>,
    },
    JobFailed {
        error: String,
    },
    Shutdown,
}

/// The pseudo-task name used when the *client* originates a user message.
pub const CLIENT_TASK_NAME: &str = "<client>";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_data_sizes() {
        assert_eq!(UserData::Empty.size_bytes(), 0);
        assert_eq!(UserData::Text("abc".into()).size_bytes(), 3);
        assert_eq!(UserData::I64s(vec![1, 2, 3]).size_bytes(), 24);
        assert_eq!(UserData::F64s(vec![1.0]).size_bytes(), 8);
        assert_eq!(UserData::Bytes(vec![0; 10]).size_bytes(), 10);
    }

    #[test]
    fn user_data_accessors() {
        assert_eq!(UserData::Text("x".into()).as_text(), Some("x"));
        assert_eq!(UserData::I64s(vec![5]).as_i64s(), Some(&[5][..]));
        assert_eq!(UserData::Text("x".into()).as_i64s(), None);
    }

    #[test]
    fn task_spec_from_cnx() {
        let doc = cn_cnx::ast::figure2_descriptor(3);
        let t = &doc.client.jobs[0].tasks[1];
        let spec = TaskSpec::from_cnx(t);
        assert_eq!(spec.name, "tctask1");
        assert_eq!(spec.jar, "tctask.jar");
        assert_eq!(spec.depends, vec!["tctask0"]);
        assert_eq!(spec.memory_mb, 1000);
        assert_eq!(spec.params.len(), 1);
    }

    #[test]
    fn kinds_are_stable() {
        let m = NetMsg::StartJob { job: JobId(1) };
        assert_eq!(m.kind(), "StartJob");
        assert_eq!(NetMsg::Shutdown.kind(), "Shutdown");
    }
}
