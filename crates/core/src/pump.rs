//! Message pump: the pending-queue / nested-wait machinery of the CNServer
//! event loop, extracted so `cn-check` can drive it under the model
//! checker without standing up a whole server.
//!
//! The invariant the pump maintains is that a nested wait ([`MsgPump::
//! wait_for`]) consumes *only* the envelope it was waiting for: everything
//! else that arrives meanwhile is stashed and replayed, in order, to the
//! main loop ([`MsgPump::next`]). Losing a stashed envelope loses a
//! protocol message — bids, acks, and task lifecycle events all ride the
//! same queue.

use std::collections::VecDeque;
use std::time::Instant;

use cn_cluster::Envelope;
use cn_sync::channel::Receiver;

/// Pending-queue wrapper around an endpoint's receive channel.
pub struct MsgPump<M> {
    rx: Receiver<Envelope<M>>,
    /// Envelopes stashed during nested waits, replayed FIFO.
    pending: VecDeque<Envelope<M>>,
}

impl<M> MsgPump<M> {
    pub fn new(rx: Receiver<Envelope<M>>) -> MsgPump<M> {
        MsgPump { rx, pending: VecDeque::new() }
    }

    /// Main-loop receive: pending envelopes first, then a blocking receive
    /// that also drains whatever arrived in the same coalesced batch (one
    /// wakeup services the whole flush). `None` means the channel
    /// disconnected.
    #[allow(clippy::should_implement_trait)] // blocking receive, not an Iterator
    pub fn next(&mut self) -> Option<Envelope<M>> {
        if let Some(env) = self.pending.pop_front() {
            return Some(env);
        }
        let env = self.rx.recv().ok()?;
        while let Ok(extra) = self.rx.try_recv() {
            self.pending.push_back(extra);
        }
        Some(env)
    }

    /// Nested receive: wait for an envelope matching `want`, stashing
    /// everything else for the main loop.
    pub fn wait_for(
        &mut self,
        deadline: Instant,
        mut want: impl FnMut(&M) -> bool,
    ) -> Option<Envelope<M>> {
        // The main loop drains coalesced batches into `pending`, so the
        // envelope we want may already be there.
        if let Some(pos) = self.pending.iter().position(|env| want(&env.msg)) {
            return self.pending.remove(pos);
        }
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.rx.recv_timeout(remaining) {
                Ok(env) if want(&env.msg) => return Some(env),
                #[cfg(not(feature = "mutations"))]
                Ok(env) => self.pending.push_back(env),
                // Injected ordering bug for cn-check: a nested wait that
                // discards everything it wasn't waiting for. Any envelope
                // racing the awaited one is silently lost.
                #[cfg(feature = "mutations")]
                Ok(_) => {}
                Err(_) => return None,
            }
        }
    }

    /// Timed receive that bypasses the pending queue (used for windows
    /// that only care about *new* traffic, like bid collection); pair with
    /// [`MsgPump::stash`] for whatever the window is not interested in.
    pub fn recv_deadline(&mut self, deadline: Instant) -> Option<Envelope<M>> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return None;
        }
        self.rx.recv_timeout(remaining).ok()
    }

    /// Stash an envelope for the main loop.
    pub fn stash(&mut self, env: Envelope<M>) {
        self.pending.push_back(env);
    }

    /// Pull every already-delivered envelope matching `pred` out of the
    /// pump (pending queue plus whatever sits unread in the channel),
    /// preserving arrival order among both the taken and the kept. Used by
    /// the server's fair-admission drain so deficit round-robin sees the
    /// whole burst of contending `CreateTask`s, not just the first arrival.
    pub fn take_matching(&mut self, mut pred: impl FnMut(&M) -> bool) -> Vec<Envelope<M>> {
        while let Ok(env) = self.rx.try_recv() {
            self.pending.push_back(env);
        }
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(self.pending.len());
        for env in self.pending.drain(..) {
            if pred(&env.msg) {
                taken.push(env);
            } else {
                kept.push_back(env);
            }
        }
        self.pending = kept;
        taken
    }

    /// Number of stashed envelopes (diagnostic).
    pub fn stashed(&self) -> usize {
        self.pending.len()
    }
}
