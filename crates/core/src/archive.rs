//! Task archives — the CN analogue of the paper's JAR packaging.
//!
//! "A Task is typically packaged as a self-sufficient JAR file that has a
//! class that conforms to the Task interface defined by CN API" (paper
//! Section 3). In this Rust reproduction an archive is a named bundle
//! mapping class names to task factories, with a synthetic byte payload so
//! the "JobManager uploads the JAR to the TaskManager" step has a measurable
//! transfer size. Factories live in a process-wide registry standing in for
//! the class loader; the upload message carries the archive *identity* and
//! size (DESIGN.md §2 documents this substitution).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use cn_sync::RwLock;

use crate::task::Task;

/// Creates a fresh task instance per execution.
pub type TaskFactory = Arc<dyn Fn() -> Box<dyn Task> + Send + Sync>;

/// A named task archive.
#[derive(Clone)]
pub struct TaskArchive {
    /// Archive file name, e.g. `tctask.jar`.
    pub name: String,
    /// Synthetic payload size in bytes (for upload accounting).
    pub size_bytes: u64,
    classes: HashMap<String, TaskFactory>,
}

impl fmt::Debug for TaskArchive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskArchive")
            .field("name", &self.name)
            .field("size_bytes", &self.size_bytes)
            .field("classes", &self.classes.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl TaskArchive {
    pub fn new(name: impl Into<String>) -> Self {
        TaskArchive { name: name.into(), size_bytes: 64 * 1024, classes: HashMap::new() }
    }

    pub fn with_size(mut self, size_bytes: u64) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Register a class (fully-qualified name → factory).
    pub fn class(
        mut self,
        class_name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Task> + Send + Sync + 'static,
    ) -> Self {
        self.classes.insert(class_name.into(), Arc::new(factory));
        self
    }

    /// The manifest: class names in this archive.
    pub fn manifest(&self) -> Vec<String> {
        let mut names: Vec<String> = self.classes.keys().cloned().collect();
        names.sort();
        names
    }

    /// Instantiate a task by class name.
    pub fn instantiate(&self, class_name: &str) -> Option<Box<dyn Task>> {
        self.classes.get(class_name).map(|f| f())
    }
}

/// Archive lookup failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    UnknownArchive(String),
    UnknownClass { archive: String, class: String },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::UnknownArchive(a) => write!(f, "unknown archive {a:?}"),
            ArchiveError::UnknownClass { archive, class } => {
                write!(f, "archive {archive:?} has no class {class:?}")
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

/// The archive registry — the "file store" clients publish jars to and
/// TaskManagers load them from.
#[derive(Default)]
pub struct ArchiveRegistry {
    archives: RwLock<HashMap<String, Arc<TaskArchive>>>,
}

impl fmt::Debug for ArchiveRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArchiveRegistry")
            .field("archives", &self.archives.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ArchiveRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish an archive (replaces any previous version).
    pub fn publish(&self, archive: TaskArchive) {
        self.archives.write().insert(archive.name.clone(), Arc::new(archive));
    }

    pub fn get(&self, name: &str) -> Option<Arc<TaskArchive>> {
        self.archives.read().get(name).cloned()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.archives.read().contains_key(name)
    }

    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.archives.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Instantiate `class` from archive `jar`.
    pub fn instantiate(&self, jar: &str, class: &str) -> Result<Box<dyn Task>, ArchiveError> {
        let archive = self.get(jar).ok_or_else(|| ArchiveError::UnknownArchive(jar.to_string()))?;
        archive.instantiate(class).ok_or_else(|| ArchiveError::UnknownClass {
            archive: jar.to_string(),
            class: class.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::UserData;
    use crate::task::TaskContext;

    fn noop_factory() -> Box<dyn Task> {
        Box::new(|_ctx: &mut TaskContext| Ok(UserData::Empty))
    }

    #[test]
    fn archive_manifest_and_instantiation() {
        let archive = TaskArchive::new("tctask.jar")
            .class("org.jhpc.cn2.trnsclsrtask.TCTask", noop_factory)
            .class("org.jhpc.cn2.trnsclsrtask.Helper", noop_factory);
        assert_eq!(
            archive.manifest(),
            vec!["org.jhpc.cn2.trnsclsrtask.Helper", "org.jhpc.cn2.trnsclsrtask.TCTask"]
        );
        assert!(archive.instantiate("org.jhpc.cn2.trnsclsrtask.TCTask").is_some());
        assert!(archive.instantiate("missing.Class").is_none());
    }

    #[test]
    fn registry_publish_and_lookup() {
        let reg = ArchiveRegistry::new();
        assert!(!reg.contains("a.jar"));
        reg.publish(TaskArchive::new("a.jar").class("A", noop_factory));
        reg.publish(TaskArchive::new("b.jar").class("B", noop_factory));
        assert!(reg.contains("a.jar"));
        assert_eq!(reg.names(), vec!["a.jar", "b.jar"]);
        assert!(reg.instantiate("a.jar", "A").is_ok());
        assert!(matches!(
            reg.instantiate("a.jar", "Z").err().unwrap(),
            ArchiveError::UnknownClass { .. }
        ));
        assert!(matches!(
            reg.instantiate("zzz.jar", "A").err().unwrap(),
            ArchiveError::UnknownArchive(_)
        ));
    }

    #[test]
    fn publish_replaces() {
        let reg = ArchiveRegistry::new();
        reg.publish(TaskArchive::new("a.jar").with_size(100));
        reg.publish(TaskArchive::new("a.jar").with_size(200));
        assert_eq!(reg.get("a.jar").unwrap().size_bytes, 200);
        assert_eq!(reg.names().len(), 1);
    }

    #[test]
    fn default_size_is_nonzero() {
        assert!(TaskArchive::new("x.jar").size_bytes > 0);
    }
}
