//! Direct execution of CNX descriptors, including dynamic invocation.
//!
//! The paper's pipeline generates a client *program* from CNX; this module
//! is the equivalent interpreted path: take a validated [`CnxDocument`],
//! drive the CN API through exactly the call sequence a generated client
//! would make, and return the job reports. The generated Rust client
//! (cn-codegen) makes the same calls — integration tests assert both paths
//! agree.
//!
//! Dynamic invocation (paper Figure 5): a task carrying a `multiplicity`
//! annotation stands for N run-time invocations; "the number of concurrent
//! invocations is determined by a run-time expression that evaluates to a
//! set of actual argument lists, one for each invocation". [`DynamicArgs`]
//! is that set; expansion rewrites the descriptor before execution.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use cn_cnx::{CnxDocument, Param, Task as CnxTask};

use crate::api::{ClientError, CnApi, JobReport};
use crate::message::{JobRequirements, TaskSpec};
use crate::Neighborhood;

/// Run-time argument lists for dynamic tasks: task name → one parameter
/// list per invocation.
#[derive(Debug, Clone, Default)]
pub struct DynamicArgs {
    args: HashMap<String, Vec<Vec<Param>>>,
}

impl DynamicArgs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Provide the argument lists for dynamic task `name`.
    pub fn set(mut self, name: impl Into<String>, invocations: Vec<Vec<Param>>) -> Self {
        self.args.insert(name.into(), invocations);
        self
    }

    pub fn get(&self, name: &str) -> Option<&Vec<Vec<Param>>> {
        self.args.get(name)
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    Validation(String),
    /// A dynamic task had no run-time argument lists.
    MissingDynamicArgs(String),
    /// A fixed multiplicity disagreed with the argument list count.
    MultiplicityMismatch {
        task: String,
        declared: String,
        provided: usize,
    },
    Client(ClientError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Validation(e) => write!(f, "invalid descriptor: {e}"),
            ExecError::MissingDynamicArgs(t) => {
                write!(f, "dynamic task {t:?} has no run-time argument lists")
            }
            ExecError::MultiplicityMismatch { task, declared, provided } => write!(
                f,
                "dynamic task {task:?} declares multiplicity {declared} but {provided} argument lists were provided"
            ),
            ExecError::Client(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ClientError> for ExecError {
    fn from(e: ClientError) -> Self {
        ExecError::Client(e)
    }
}

/// Expand dynamic tasks into concrete instances.
///
/// A task `w` with `multiplicity="*"` (or `"N"`) becomes `w_1 ... w_k`, one
/// per argument list; the instance's params are the base params followed by
/// the invocation's params. Tasks that depended on `w` now depend on every
/// instance; instances inherit `w`'s dependencies.
pub fn expand_dynamic(doc: &CnxDocument, dynamic: &DynamicArgs) -> Result<CnxDocument, ExecError> {
    let mut out = doc.clone();
    for job in &mut out.client.jobs {
        let mut new_tasks: Vec<CnxTask> = Vec::with_capacity(job.tasks.len());
        // old name → instance names (for rewriting depends).
        let mut renames: HashMap<String, Vec<String>> = HashMap::new();
        for task in &job.tasks {
            match &task.multiplicity {
                None => new_tasks.push(task.clone()),
                Some(m) => {
                    let lists = dynamic
                        .get(&task.name)
                        .ok_or_else(|| ExecError::MissingDynamicArgs(task.name.clone()))?;
                    if m != "*" {
                        let declared: usize = m.parse().map_err(|_| {
                            ExecError::Validation(format!(
                                "task {:?}: bad multiplicity {m:?}",
                                task.name
                            ))
                        })?;
                        if declared != lists.len() {
                            return Err(ExecError::MultiplicityMismatch {
                                task: task.name.clone(),
                                declared: m.clone(),
                                provided: lists.len(),
                            });
                        }
                    }
                    let mut instances = Vec::with_capacity(lists.len());
                    for (i, extra) in lists.iter().enumerate() {
                        let mut inst = task.clone();
                        inst.name = format!("{}_{}", task.name, i + 1);
                        inst.multiplicity = None;
                        inst.params.extend(extra.iter().cloned());
                        instances.push(inst.name.clone());
                        new_tasks.push(inst);
                    }
                    renames.insert(task.name.clone(), instances);
                }
            }
        }
        for task in &mut new_tasks {
            let mut deps = Vec::with_capacity(task.depends.len());
            for d in &task.depends {
                match renames.get(d) {
                    Some(instances) => deps.extend(instances.iter().cloned()),
                    None => deps.push(d.clone()),
                }
            }
            task.depends = deps;
        }
        job.tasks = new_tasks;
    }
    Ok(out)
}

/// Execute a descriptor against a deployed neighborhood: validate, expand
/// dynamic tasks, then drive the CN API exactly as a generated client
/// would. Returns one report per job, in declaration order.
pub fn execute_descriptor(
    neighborhood: &Neighborhood,
    doc: &CnxDocument,
    dynamic: &DynamicArgs,
    timeout: Duration,
) -> Result<Vec<JobReport>, ExecError> {
    execute_descriptor_seeded(neighborhood, doc, dynamic, timeout, |_| {})
}

/// Like [`execute_descriptor`], but calls `seed` on each job after its
/// tasks are created and before it starts — the hook where a generated
/// client performs its own setup (e.g. depositing input data into the
/// job's tuple space, the simulated `matrix.txt`).
pub fn execute_descriptor_seeded(
    neighborhood: &Neighborhood,
    doc: &CnxDocument,
    dynamic: &DynamicArgs,
    timeout: Duration,
    seed: impl FnMut(&mut crate::api::JobHandle),
) -> Result<Vec<JobReport>, ExecError> {
    let api = CnApi::initialize(neighborhood);
    execute_with_api_seeded(&api, doc, dynamic, timeout, seed)
}

/// Like [`execute_descriptor_seeded`], but against an already-constructed
/// [`CnApi`] — the entry point when the fabric is a real socket transport
/// and there is no in-process [`Neighborhood`] to borrow (`cnctl submit`).
pub fn execute_with_api_seeded(
    api: &CnApi,
    doc: &CnxDocument,
    dynamic: &DynamicArgs,
    timeout: Duration,
    mut seed: impl FnMut(&mut crate::api::JobHandle),
) -> Result<Vec<JobReport>, ExecError> {
    let expanded = expand_dynamic(doc, dynamic)?;
    cn_cnx::validate(&expanded).map_err(|e| ExecError::Validation(e.to_string()))?;
    let mut reports = Vec::with_capacity(expanded.client.jobs.len());
    for job_decl in &expanded.client.jobs {
        let mut job = api.create_job(&JobRequirements::default())?;
        for task in &job_decl.tasks {
            job.add_task(TaskSpec::from_cnx(task))?;
        }
        let rec = api.recorder();
        let seed_span =
            job.span().and_then(|parent| rec.span_start("client", "seed-input", Some(parent)));
        seed(&mut job);
        rec.span_end(seed_span);
        job.start()?;
        reports.push(job.wait(timeout)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::TaskArchive;
    use crate::message::UserData;
    use crate::task::TaskContext;
    use cn_cluster::NodeSpec;
    use cn_cnx::{Client, Job};

    fn descriptor(tasks: Vec<CnxTask>) -> CnxDocument {
        let mut client = Client::new("Test");
        client.jobs.push(Job { tasks });
        CnxDocument::new(client)
    }

    #[test]
    fn expansion_star_multiplicity() {
        let mut worker = CnxTask::new("w", "w.jar", "W").depends_on(&["split"]);
        worker.multiplicity = Some("*".to_string());
        worker.params.push(Param::string("base"));
        let join = CnxTask::new("join", "j.jar", "J").depends_on(&["w"]);
        let split = CnxTask::new("split", "s.jar", "S");
        let doc = descriptor(vec![split, worker, join]);
        let dynamic = DynamicArgs::new().set(
            "w",
            vec![vec![Param::integer(1)], vec![Param::integer(2)], vec![Param::integer(3)]],
        );
        let out = expand_dynamic(&doc, &dynamic).unwrap();
        let job = &out.client.jobs[0];
        assert_eq!(job.tasks.len(), 5);
        let w2 = job.task("w_2").unwrap();
        assert_eq!(w2.depends, vec!["split"]);
        assert_eq!(w2.params, vec![Param::string("base"), Param::integer(2)]);
        let join = job.task("join").unwrap();
        assert_eq!(join.depends, vec!["w_1", "w_2", "w_3"]);
    }

    #[test]
    fn expansion_fixed_multiplicity_checks_count() {
        let mut worker = CnxTask::new("w", "w.jar", "W");
        worker.multiplicity = Some("2".to_string());
        let doc = descriptor(vec![worker]);
        let dynamic = DynamicArgs::new().set("w", vec![vec![], vec![], vec![]]);
        match expand_dynamic(&doc, &dynamic) {
            Err(ExecError::MultiplicityMismatch { declared, provided, .. }) => {
                assert_eq!(declared, "2");
                assert_eq!(provided, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expansion_requires_args() {
        let mut worker = CnxTask::new("w", "w.jar", "W");
        worker.multiplicity = Some("*".to_string());
        let doc = descriptor(vec![worker]);
        assert_eq!(
            expand_dynamic(&doc, &DynamicArgs::new()).unwrap_err(),
            ExecError::MissingDynamicArgs("w".to_string())
        );
    }

    #[test]
    fn expansion_no_dynamic_tasks_is_identity() {
        let doc = cn_cnx::ast::figure2_descriptor(3);
        let out = expand_dynamic(&doc, &DynamicArgs::new()).unwrap();
        assert_eq!(doc, out);
    }

    #[test]
    fn descriptor_executes_end_to_end() {
        let nb = Neighborhood::deploy(NodeSpec::fleet(2, 8000, 8));
        nb.registry().publish(TaskArchive::new("sum.jar").class("Sum", || {
            Box::new(|ctx: &mut TaskContext| {
                let total: i64 = (0..ctx.params.len()).filter_map(|i| ctx.param_i64(i)).sum();
                Ok(UserData::I64s(vec![total]))
            })
        }));
        let mut a = CnxTask::new("a", "sum.jar", "Sum").with_param(Param::integer(2));
        a.req.memory_mb = 100;
        let mut b =
            CnxTask::new("b", "sum.jar", "Sum").with_param(Param::integer(40)).depends_on(&["a"]);
        b.req.memory_mb = 100;
        let doc = descriptor(vec![a, b]);
        let reports =
            execute_descriptor(&nb, &doc, &DynamicArgs::new(), Duration::from_secs(10)).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].result("a"), Some(&UserData::I64s(vec![2])));
        assert_eq!(reports[0].result("b"), Some(&UserData::I64s(vec![40])));
        nb.shutdown();
    }

    #[test]
    fn dynamic_descriptor_executes_with_runtime_multiplicity() {
        let nb = Neighborhood::deploy(NodeSpec::fleet(2, 8000, 8));
        nb.registry().publish(TaskArchive::new("id.jar").class("Id", || {
            Box::new(|ctx: &mut TaskContext| {
                Ok(UserData::I64s(vec![ctx.param_i64(0).unwrap_or(-1)]))
            })
        }));
        let mut w = CnxTask::new("w", "id.jar", "Id");
        w.multiplicity = Some("*".to_string());
        w.req.memory_mb = 100;
        let doc = descriptor(vec![w]);
        let dynamic =
            DynamicArgs::new().set("w", (1..=4).map(|i| vec![Param::integer(i)]).collect());
        let reports = execute_descriptor(&nb, &doc, &dynamic, Duration::from_secs(10)).unwrap();
        assert_eq!(reports[0].results.len(), 4);
        for i in 1..=4i64 {
            assert_eq!(reports[0].result(&format!("w_{i}")), Some(&UserData::I64s(vec![i])));
        }
        nb.shutdown();
    }

    #[test]
    fn invalid_descriptor_rejected_before_execution() {
        let nb = Neighborhood::deploy(NodeSpec::fleet(1, 1000, 2));
        let doc = descriptor(vec![CnxTask::new("a", "x.jar", "X").depends_on(&["ghost"])]);
        match execute_descriptor(&nb, &doc, &DynamicArgs::new(), Duration::from_secs(5)) {
            Err(ExecError::Validation(_)) => {}
            other => panic!("{other:?}"),
        }
        nb.shutdown();
    }
}
