//! Bid-selection policies.
//!
//! Two selections happen in CN: the client picks a **JobManager** "based on
//! User specified Job requirements from the list of willing JobManagers",
//! and a JobManager picks a **TaskManager** for each task from the willing
//! bidders. Both run the same policy machinery; the policy choice is one of
//! the ablation axes in DESIGN.md.

use crate::message::Bid;

/// How to choose among willing bidders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// First bid received — the latency-optimal but load-blind baseline.
    FirstResponder,
    /// Lowest load factor; ties broken by more free memory, then by name
    /// (deterministic).
    #[default]
    LeastLoaded,
    /// Rotate through bidders (stateful; see [`RoundRobin`]).
    RoundRobin,
}

/// Select a bid per `policy`. `rr_counter` carries round-robin state (pass
/// 0 for stateless policies).
pub fn select(policy: Policy, bids: &[Bid], rr_counter: usize) -> Option<&Bid> {
    if bids.is_empty() {
        return None;
    }
    match policy {
        Policy::FirstResponder => bids.first(),
        Policy::LeastLoaded => bids.iter().min_by(|a, b| {
            a.load
                .partial_cmp(&b.load)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.free_memory_mb.cmp(&a.free_memory_mb))
                .then(a.server.cmp(&b.server))
        }),
        Policy::RoundRobin => {
            // Stable order by server name so rotation is deterministic
            // regardless of bid arrival order.
            let mut ordered: Vec<&Bid> = bids.iter().collect();
            ordered.sort_by(|a, b| a.server.cmp(&b.server));
            Some(ordered[rr_counter % ordered.len()])
        }
    }
}

/// Stateful round-robin selector.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: usize,
}

impl RoundRobin {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn select<'a>(&mut self, bids: &'a [Bid]) -> Option<&'a Bid> {
        let chosen = select(Policy::RoundRobin, bids, self.counter)?;
        self.counter = self.counter.wrapping_add(1);
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cluster::Addr;

    fn bid(server: &str, load: f64, mem: u64) -> Bid {
        Bid { server: server.to_string(), addr: Addr(0), load, free_memory_mb: mem, free_slots: 4 }
    }

    #[test]
    fn empty_bids_select_nothing() {
        assert!(select(Policy::LeastLoaded, &[], 0).is_none());
        assert!(RoundRobin::new().select(&[]).is_none());
    }

    #[test]
    fn first_responder_takes_arrival_order() {
        let bids = vec![bid("late-but-first", 0.9, 10), bid("better", 0.1, 1000)];
        assert_eq!(select(Policy::FirstResponder, &bids, 0).unwrap().server, "late-but-first");
    }

    #[test]
    fn least_loaded_prefers_low_load_then_memory() {
        let bids = vec![bid("a", 0.5, 100), bid("b", 0.25, 100), bid("c", 0.25, 500)];
        assert_eq!(select(Policy::LeastLoaded, &bids, 0).unwrap().server, "c");
    }

    #[test]
    fn least_loaded_ties_break_by_name() {
        let bids = vec![bid("zeta", 0.5, 100), bid("alpha", 0.5, 100)];
        assert_eq!(select(Policy::LeastLoaded, &bids, 0).unwrap().server, "alpha");
    }

    #[test]
    fn round_robin_rotates_deterministically() {
        let bids = vec![bid("b", 0.0, 0), bid("a", 0.0, 0), bid("c", 0.0, 0)];
        let mut rr = RoundRobin::new();
        let picks: Vec<String> = (0..6).map(|_| rr.select(&bids).unwrap().server.clone()).collect();
        assert_eq!(picks, ["a", "b", "c", "a", "b", "c"]);
    }
}
