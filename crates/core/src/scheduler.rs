//! Bid-selection policies, load signals, and fair queuing.
//!
//! Two selections happen in CN: the client picks a **JobManager** "based on
//! User specified Job requirements from the list of willing JobManagers",
//! and a JobManager picks a **TaskManager** for each task from the willing
//! bidders. Both run the same policy machinery; the policy choice is one of
//! the ablation axes in DESIGN.md.
//!
//! PR10 grows this module into the load-aware dynamic scheduler (DESIGN.md
//! §14): [`LoadSignal`] is the live per-TaskManager load vector piggybacked
//! on every bid, [`Policy::LoadAware`] weights placement by it (falling back
//! to round-robin rotation when every bidder reports the same quantized
//! score, so uniform-load runs stay journal-identical to `RoundRobin`),
//! [`FairQueue`] is the deficit-round-robin admission queue that keeps N
//! concurrent clients from starving each other, and [`StealConfig`] shapes
//! the work-stealing protocol between TaskManagers.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use crate::message::Bid;

/// How to choose among willing bidders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// First bid received — the latency-optimal but load-blind baseline.
    FirstResponder,
    /// Lowest load factor; ties broken by more free memory, then by name
    /// (deterministic).
    #[default]
    LeastLoaded,
    /// Rotate through bidders (stateful; see [`RoundRobin`]).
    RoundRobin,
    /// Weight bids by the live [`LoadSignal`] each bidder reports (queue
    /// depth, in-flight count, EWMA dispatch latency). When every bidder's
    /// quantized score ties, selection degrades to the round-robin rotation
    /// — which is what makes uniform-load runs byte-identical to
    /// [`Policy::RoundRobin`] in the journal.
    LoadAware,
}

impl Policy {
    /// Parse the `--sched` CLI spelling.
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "first-responder" => Some(Policy::FirstResponder),
            "least-loaded" => Some(Policy::LeastLoaded),
            "round-robin" => Some(Policy::RoundRobin),
            "load-aware" => Some(Policy::LoadAware),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Policy::FirstResponder => "first-responder",
            Policy::LeastLoaded => "least-loaded",
            Policy::RoundRobin => "round-robin",
            Policy::LoadAware => "load-aware",
        }
    }
}

/// Live load vector a TaskManager reports: sampled into every bid it makes
/// and multicast in `LoadReport` heartbeats while the steal protocol runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadSignal {
    /// Assigned-and-started tasks waiting in the TM run queue for an
    /// execution slot.
    pub queue_depth: u32,
    /// Task threads currently executing.
    pub in_flight: u32,
    /// EWMA of enqueue→launch latency in microseconds (see [`Ewma`]).
    pub ewma_dispatch_us: u64,
}

impl LoadSignal {
    /// Quantized scalar used to rank bidders: queued work dominates,
    /// running work next, dispatch latency (whole milliseconds) last.
    /// Quantizing the latency term keeps sub-millisecond jitter from
    /// breaking score ties on otherwise-idle uniform clusters.
    pub fn score(&self) -> u64 {
        u64::from(self.queue_depth) * 1_000_000
            + u64::from(self.in_flight) * 10_000
            + self.ewma_dispatch_us / 1_000
    }
}

/// Integer exponential weighted moving average (α = 1/8), the classic
/// TCP-RTT smoother. Tracks dispatch latency without floats so scores stay
/// exactly reproducible across runs and architectures.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ewma {
    value: u64,
    seeded: bool,
}

impl Ewma {
    pub fn observe(&mut self, sample: u64) {
        if self.seeded {
            self.value = self.value - self.value / 8 + sample / 8;
        } else {
            self.value = sample;
            self.seeded = true;
        }
    }

    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Work-stealing shape: when a TaskManager goes idle it raids queued tasks
/// from loaded peers (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// A victim grants a steal only while its run-queue depth is at least
    /// this. 0 means every idle peer raids on every task exit (thrashing —
    /// CN059 warns).
    pub threshold: u32,
    /// Minimum interval between `LoadReport` heartbeat multicasts from one
    /// TaskManager. Reports are event-driven (sent when the load signal
    /// changes), so an idle quiescent cluster sends none.
    pub heartbeat: Duration,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig { threshold: 2, heartbeat: Duration::from_millis(50) }
    }
}

/// Select a bid per `policy`. `rr_counter` carries round-robin state (pass
/// 0 for stateless policies). `LoadAware` here is the stateless reference
/// (no rotation fallback); servers use [`select_load_aware`].
pub fn select(policy: Policy, bids: &[Bid], rr_counter: usize) -> Option<&Bid> {
    if bids.is_empty() {
        return None;
    }
    match policy {
        Policy::FirstResponder => bids.first(),
        Policy::LeastLoaded => bids.iter().min_by(|a, b| {
            a.load
                .partial_cmp(&b.load)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.free_memory_mb.cmp(&a.free_memory_mb))
                .then(a.server.cmp(&b.server))
        }),
        Policy::RoundRobin => {
            // Stable order by server name so rotation is deterministic
            // regardless of bid arrival order.
            let mut ordered: Vec<&Bid> = bids.iter().collect();
            ordered.sort_by(|a, b| a.server.cmp(&b.server));
            Some(ordered[rr_counter % ordered.len()])
        }
        Policy::LoadAware => min_by_signal(bids),
    }
}

fn min_by_signal(bids: &[Bid]) -> Option<&Bid> {
    bids.iter().min_by(|a, b| {
        a.signal
            .score()
            .cmp(&b.signal.score())
            .then(b.free_memory_mb.cmp(&a.free_memory_mb))
            .then(a.server.cmp(&b.server))
    })
}

/// The stateful load-aware selection servers run: rank by quantized
/// [`LoadSignal::score`], but when every bidder ties (an idle or uniformly
/// loaded neighborhood) hand the pick to the round-robin rotation so the
/// placement sequence — and therefore the journal — is identical to
/// [`Policy::RoundRobin`].
pub fn select_load_aware<'a>(rr: &mut RoundRobin, bids: &'a [Bid]) -> Option<&'a Bid> {
    let first = bids.first()?.signal.score();
    if bids.iter().all(|b| b.signal.score() == first) {
        rr.select(bids)
    } else {
        min_by_signal(bids)
    }
}

/// Stateful round-robin selector.
///
/// The rotation order (server names, sorted) is computed once per *round* —
/// i.e. once per distinct bidder set — and reused across calls while the
/// set is unchanged, instead of re-sorting a fresh allocation on every
/// selection. Bidding rounds in a stable neighborhood produce the same
/// willing set task after task, so steady-state selection does no sorting
/// and no allocation.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: usize,
    /// Sorted server names from the last round; the cached rotation order.
    order: Vec<String>,
}

impl RoundRobin {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn select<'a>(&mut self, bids: &'a [Bid]) -> Option<&'a Bid> {
        if bids.is_empty() {
            return None;
        }
        // The cache is valid iff it holds exactly this bidder set. Names in
        // `order` are sorted, so membership is a binary search — no
        // allocation on the steady-state path.
        let unchanged = self.order.len() == bids.len()
            && bids.iter().all(|b| self.order.binary_search(&b.server).is_ok());
        if !unchanged {
            self.order = bids.iter().map(|b| b.server.clone()).collect();
            self.order.sort();
        }
        let name = &self.order[self.counter % self.order.len()];
        let chosen = bids.iter().find(|b| &b.server == name)?;
        self.counter = self.counter.wrapping_add(1);
        Some(chosen)
    }
}

/// Deficit-round-robin fair queue over per-client sub-queues (Shreedhar &
/// Varghese). Each visit to a client's queue grants it `quantum` cost
/// units of deficit; an item is served only when the accumulated deficit
/// covers its cost, so a client submitting heavyweight tasks cannot crowd
/// out one submitting light tasks — over any window each active client
/// drains ~the same total cost. A single-client queue degenerates to FIFO
/// (the property the uniform-load differential tests pin).
#[derive(Debug)]
pub struct FairQueue<T> {
    quantum: u64,
    queues: HashMap<u64, ClientQueue<T>>,
    /// Visit order: clients in first-arrival order, rotated as visits end.
    active: VecDeque<u64>,
    len: usize,
}

#[derive(Debug)]
struct ClientQueue<T> {
    deficit: u64,
    items: VecDeque<(u64, T)>,
}

impl<T> FairQueue<T> {
    /// `quantum` is the cost credit per visit. Costs are caller-defined
    /// (the server uses task `memory_mb`); a quantum below the largest
    /// single cost still makes progress (deficit accumulates across
    /// rounds) but serves that client in bursts — CN059 warns.
    pub fn new(quantum: u64) -> Self {
        FairQueue {
            quantum: quantum.max(1),
            queues: HashMap::new(),
            active: VecDeque::new(),
            len: 0,
        }
    }

    pub fn push(&mut self, client: u64, cost: u64, item: T) {
        if let std::collections::hash_map::Entry::Vacant(v) = self.queues.entry(client) {
            v.insert(ClientQueue { deficit: 0, items: VecDeque::new() });
            self.active.push_back(client);
        }
        let q = self.queues.get_mut(&client).expect("just inserted");
        q.items.push_back((cost.max(1), item));
        self.len += 1;
    }

    /// Next item in DRR order. A client whose queue drains is forgotten
    /// (its deficit resets to zero — idle clients earn no credit).
    pub fn pop(&mut self) -> Option<T> {
        loop {
            let client = *self.active.front()?;
            let q = self.queues.get_mut(&client).expect("active implies queued");
            match q.items.front() {
                None => {
                    self.queues.remove(&client);
                    self.active.pop_front();
                }
                Some(&(cost, _)) if q.deficit >= cost => {
                    let (cost, item) = q.items.pop_front().expect("front exists");
                    q.deficit -= cost;
                    self.len -= 1;
                    if q.items.is_empty() {
                        self.queues.remove(&client);
                        self.active.pop_front();
                    }
                    return Some(item);
                }
                Some(_) => {
                    // Visit ends unserved: grant a quantum, move to the
                    // back, and let the deficit accumulate across rounds.
                    q.deficit += self.quantum;
                    self.active.rotate_left(1);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cluster::Addr;

    fn bid(server: &str, load: f64, mem: u64) -> Bid {
        Bid {
            server: server.to_string(),
            addr: Addr(0),
            load,
            free_memory_mb: mem,
            free_slots: 4,
            signal: LoadSignal::default(),
        }
    }

    fn bid_sig(server: &str, queue: u32, inflight: u32, ewma: u64) -> Bid {
        Bid {
            signal: LoadSignal { queue_depth: queue, in_flight: inflight, ewma_dispatch_us: ewma },
            ..bid(server, 0.0, 100)
        }
    }

    #[test]
    fn empty_bids_select_nothing() {
        assert!(select(Policy::LeastLoaded, &[], 0).is_none());
        assert!(RoundRobin::new().select(&[]).is_none());
        assert!(select_load_aware(&mut RoundRobin::new(), &[]).is_none());
    }

    #[test]
    fn first_responder_takes_arrival_order() {
        let bids = vec![bid("late-but-first", 0.9, 10), bid("better", 0.1, 1000)];
        assert_eq!(select(Policy::FirstResponder, &bids, 0).unwrap().server, "late-but-first");
    }

    #[test]
    fn least_loaded_prefers_low_load_then_memory() {
        let bids = vec![bid("a", 0.5, 100), bid("b", 0.25, 100), bid("c", 0.25, 500)];
        assert_eq!(select(Policy::LeastLoaded, &bids, 0).unwrap().server, "c");
    }

    #[test]
    fn least_loaded_ties_break_by_name() {
        let bids = vec![bid("zeta", 0.5, 100), bid("alpha", 0.5, 100)];
        assert_eq!(select(Policy::LeastLoaded, &bids, 0).unwrap().server, "alpha");
    }

    #[test]
    fn round_robin_rotates_deterministically() {
        let bids = vec![bid("b", 0.0, 0), bid("a", 0.0, 0), bid("c", 0.0, 0)];
        let mut rr = RoundRobin::new();
        let picks: Vec<String> = (0..6).map(|_| rr.select(&bids).unwrap().server.clone()).collect();
        assert_eq!(picks, ["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn round_robin_matches_stateless_reference() {
        let bids = vec![bid("d", 0.1, 8), bid("b", 0.9, 2), bid("a", 0.4, 4), bid("c", 0.2, 1)];
        let mut rr = RoundRobin::new();
        for i in 0..10 {
            assert_eq!(
                rr.select(&bids).unwrap().server,
                select(Policy::RoundRobin, &bids, i).unwrap().server
            );
        }
    }

    #[test]
    fn round_robin_resorts_when_bidders_change() {
        let mut rr = RoundRobin::new();
        let bids = vec![bid("a", 0.0, 0), bid("b", 0.0, 0)];
        assert_eq!(rr.select(&bids).unwrap().server, "a");
        // A bidder joins: the cached order is invalid and must rebuild.
        let bids = vec![bid("a", 0.0, 0), bid("b", 0.0, 0), bid("0-new", 0.0, 0)];
        assert_eq!(rr.select(&bids).unwrap().server, "a", "counter=1 → second of sorted");
        // One leaves: rebuild again, arrival order irrelevant.
        let bids = vec![bid("b", 0.0, 0), bid("a", 0.0, 0)];
        assert_eq!(rr.select(&bids).unwrap().server, "a", "counter=2 → wraps to first");
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in
            [Policy::FirstResponder, Policy::LeastLoaded, Policy::RoundRobin, Policy::LoadAware]
        {
            assert_eq!(Policy::parse(p.as_str()), Some(p));
        }
        assert_eq!(Policy::parse("fastest"), None);
    }

    #[test]
    fn load_signal_score_orders_queue_over_inflight_over_latency() {
        let queued = LoadSignal { queue_depth: 1, in_flight: 0, ewma_dispatch_us: 0 };
        let busy = LoadSignal { queue_depth: 0, in_flight: 3, ewma_dispatch_us: 0 };
        let slow = LoadSignal { queue_depth: 0, in_flight: 0, ewma_dispatch_us: 900_000 };
        assert!(queued.score() > busy.score());
        assert!(busy.score() > slow.score());
        // Sub-millisecond latency jitter does not perturb the score.
        let a = LoadSignal { ewma_dispatch_us: 400, ..LoadSignal::default() };
        let b = LoadSignal { ewma_dispatch_us: 900, ..LoadSignal::default() };
        assert_eq!(a.score(), b.score());
    }

    #[test]
    fn load_aware_prefers_least_loaded_signal() {
        let bids =
            vec![bid_sig("a", 3, 2, 5_000), bid_sig("b", 0, 1, 2_000), bid_sig("c", 1, 0, 1_000)];
        let mut rr = RoundRobin::new();
        assert_eq!(select_load_aware(&mut rr, &bids).unwrap().server, "b");
        assert_eq!(select(Policy::LoadAware, &bids, 0).unwrap().server, "b");
    }

    #[test]
    fn load_aware_ties_fall_back_to_round_robin_rotation() {
        let bids = vec![bid_sig("b", 0, 0, 0), bid_sig("a", 0, 0, 0), bid_sig("c", 0, 0, 0)];
        let mut la = RoundRobin::new();
        let mut rr = RoundRobin::new();
        for _ in 0..6 {
            assert_eq!(
                select_load_aware(&mut la, &bids).unwrap().server,
                rr.select(&bids).unwrap().server,
                "uniform signals must reproduce the round-robin sequence"
            );
        }
    }

    #[test]
    fn ewma_smooths_toward_samples() {
        let mut e = Ewma::default();
        assert_eq!(e.get(), 0);
        e.observe(800);
        assert_eq!(e.get(), 800, "first sample seeds the average");
        for _ in 0..64 {
            e.observe(0);
        }
        assert!(e.get() < 800 / 8, "decays toward zero: {}", e.get());
        for _ in 0..64 {
            e.observe(1_000);
        }
        assert!(e.get() > 800, "climbs toward the new plateau: {}", e.get());
    }

    #[test]
    fn fair_queue_single_client_is_fifo() {
        let mut q = FairQueue::new(10);
        for i in 0..5 {
            q.push(7, 25, i); // cost > quantum: deficit must span rounds
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, [0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn fair_queue_interleaves_equal_cost_clients() {
        let mut q = FairQueue::new(1);
        for i in 0..3 {
            q.push(1, 1, format!("a{i}"));
        }
        for i in 0..3 {
            q.push(2, 1, format!("b{i}"));
        }
        let drained: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, ["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn fair_queue_balances_cost_not_item_count() {
        // Client 1 submits heavy items (cost 4), client 2 light ones
        // (cost 1). DRR serves ~equal total cost per round: each heavy
        // item lets four light items through.
        let mut q = FairQueue::new(4);
        for i in 0..2 {
            q.push(1, 4, format!("heavy{i}"));
        }
        for i in 0..8 {
            q.push(2, 1, format!("light{i}"));
        }
        let drained: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        let first_heavy = drained.iter().position(|s| s == "heavy0").unwrap();
        let second_heavy = drained.iter().position(|s| s == "heavy1").unwrap();
        let lights_between =
            drained[first_heavy..second_heavy].iter().filter(|s| s.starts_with("light")).count();
        assert_eq!(drained.len(), 10);
        assert_eq!(lights_between, 4, "equal cost share per round: {drained:?}");
    }

    #[test]
    fn fair_queue_zero_cost_items_still_progress() {
        let mut q = FairQueue::new(0); // quantum clamps to 1
        q.push(1, 0, "x"); // cost clamps to 1
        assert_eq!(q.pop(), Some("x"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fair_queue_forgets_drained_clients() {
        let mut q = FairQueue::new(100);
        q.push(1, 1, "a");
        assert_eq!(q.pop(), Some("a"));
        // Client 1 drained; its banked deficit must not survive.
        q.push(1, 1, "b");
        q.push(2, 1, "c");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
    }
}
