//! Bid-selection policies.
//!
//! Two selections happen in CN: the client picks a **JobManager** "based on
//! User specified Job requirements from the list of willing JobManagers",
//! and a JobManager picks a **TaskManager** for each task from the willing
//! bidders. Both run the same policy machinery; the policy choice is one of
//! the ablation axes in DESIGN.md.

use crate::message::Bid;

/// How to choose among willing bidders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// First bid received — the latency-optimal but load-blind baseline.
    FirstResponder,
    /// Lowest load factor; ties broken by more free memory, then by name
    /// (deterministic).
    #[default]
    LeastLoaded,
    /// Rotate through bidders (stateful; see [`RoundRobin`]).
    RoundRobin,
}

/// Select a bid per `policy`. `rr_counter` carries round-robin state (pass
/// 0 for stateless policies).
pub fn select(policy: Policy, bids: &[Bid], rr_counter: usize) -> Option<&Bid> {
    if bids.is_empty() {
        return None;
    }
    match policy {
        Policy::FirstResponder => bids.first(),
        Policy::LeastLoaded => bids.iter().min_by(|a, b| {
            a.load
                .partial_cmp(&b.load)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.free_memory_mb.cmp(&a.free_memory_mb))
                .then(a.server.cmp(&b.server))
        }),
        Policy::RoundRobin => {
            // Stable order by server name so rotation is deterministic
            // regardless of bid arrival order.
            let mut ordered: Vec<&Bid> = bids.iter().collect();
            ordered.sort_by(|a, b| a.server.cmp(&b.server));
            Some(ordered[rr_counter % ordered.len()])
        }
    }
}

/// Stateful round-robin selector.
///
/// The rotation order (server names, sorted) is computed once per *round* —
/// i.e. once per distinct bidder set — and reused across calls while the
/// set is unchanged, instead of re-sorting a fresh allocation on every
/// selection. Bidding rounds in a stable neighborhood produce the same
/// willing set task after task, so steady-state selection does no sorting
/// and no allocation.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: usize,
    /// Sorted server names from the last round; the cached rotation order.
    order: Vec<String>,
}

impl RoundRobin {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn select<'a>(&mut self, bids: &'a [Bid]) -> Option<&'a Bid> {
        if bids.is_empty() {
            return None;
        }
        // The cache is valid iff it holds exactly this bidder set. Names in
        // `order` are sorted, so membership is a binary search — no
        // allocation on the steady-state path.
        let unchanged = self.order.len() == bids.len()
            && bids.iter().all(|b| self.order.binary_search(&b.server).is_ok());
        if !unchanged {
            self.order = bids.iter().map(|b| b.server.clone()).collect();
            self.order.sort();
        }
        let name = &self.order[self.counter % self.order.len()];
        let chosen = bids.iter().find(|b| &b.server == name)?;
        self.counter = self.counter.wrapping_add(1);
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_cluster::Addr;

    fn bid(server: &str, load: f64, mem: u64) -> Bid {
        Bid { server: server.to_string(), addr: Addr(0), load, free_memory_mb: mem, free_slots: 4 }
    }

    #[test]
    fn empty_bids_select_nothing() {
        assert!(select(Policy::LeastLoaded, &[], 0).is_none());
        assert!(RoundRobin::new().select(&[]).is_none());
    }

    #[test]
    fn first_responder_takes_arrival_order() {
        let bids = vec![bid("late-but-first", 0.9, 10), bid("better", 0.1, 1000)];
        assert_eq!(select(Policy::FirstResponder, &bids, 0).unwrap().server, "late-but-first");
    }

    #[test]
    fn least_loaded_prefers_low_load_then_memory() {
        let bids = vec![bid("a", 0.5, 100), bid("b", 0.25, 100), bid("c", 0.25, 500)];
        assert_eq!(select(Policy::LeastLoaded, &bids, 0).unwrap().server, "c");
    }

    #[test]
    fn least_loaded_ties_break_by_name() {
        let bids = vec![bid("zeta", 0.5, 100), bid("alpha", 0.5, 100)];
        assert_eq!(select(Policy::LeastLoaded, &bids, 0).unwrap().server, "alpha");
    }

    #[test]
    fn round_robin_rotates_deterministically() {
        let bids = vec![bid("b", 0.0, 0), bid("a", 0.0, 0), bid("c", 0.0, 0)];
        let mut rr = RoundRobin::new();
        let picks: Vec<String> = (0..6).map(|_| rr.select(&bids).unwrap().server.clone()).collect();
        assert_eq!(picks, ["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn round_robin_matches_stateless_reference() {
        let bids = vec![bid("d", 0.1, 8), bid("b", 0.9, 2), bid("a", 0.4, 4), bid("c", 0.2, 1)];
        let mut rr = RoundRobin::new();
        for i in 0..10 {
            assert_eq!(
                rr.select(&bids).unwrap().server,
                select(Policy::RoundRobin, &bids, i).unwrap().server
            );
        }
    }

    #[test]
    fn round_robin_resorts_when_bidders_change() {
        let mut rr = RoundRobin::new();
        let bids = vec![bid("a", 0.0, 0), bid("b", 0.0, 0)];
        assert_eq!(rr.select(&bids).unwrap().server, "a");
        // A bidder joins: the cached order is invalid and must rebuild.
        let bids = vec![bid("a", 0.0, 0), bid("b", 0.0, 0), bid("0-new", 0.0, 0)];
        assert_eq!(rr.select(&bids).unwrap().server, "a", "counter=1 → second of sorted");
        // One leaves: rebuild again, arrival order irrelevant.
        let bids = vec![bid("b", 0.0, 0), bid("a", 0.0, 0)];
        assert_eq!(rr.select(&bids).unwrap().server, "a", "counter=2 → wraps to first");
    }
}
