//! Tuple-space coordination.
//!
//! "CN also supports communication via tuple spaces" (paper Section 2,
//! parenthetical). This is the classic Linda model: `out` deposits a tuple,
//! `rd` copies a matching tuple, `in` removes one; both blocking and
//! non-blocking forms are provided. One space exists per job and is
//! reachable from every task via [`crate::TaskContext::tuplespace`].

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_observe::Counter;
use cn_sync::{Condvar, Mutex};

/// One field of a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    I(i64),
    F(f64),
    S(String),
    B(Vec<u8>),
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::S(v.to_string())
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F(v)
    }
}

/// A tuple: a non-empty sequence of fields.
pub type Tuple = Vec<Field>;

/// A match pattern: `Some(field)` matches exactly, `None` is a wildcard.
pub type Pattern = Vec<Option<Field>>;

/// Build a pattern from exact fields (no wildcards).
pub fn exact(fields: &[Field]) -> Pattern {
    fields.iter().cloned().map(Some).collect()
}

fn matches(tuple: &Tuple, pattern: &Pattern) -> bool {
    tuple.len() == pattern.len()
        && tuple.iter().zip(pattern).all(|(f, p)| match p {
            Some(want) => f == want,
            None => true,
        })
}

/// A Linda-style tuple space.
///
/// Tuples are bucketed by arity: a pattern can only match tuples of its own
/// length, so `rd`/`in` scan one bucket instead of the whole space, and an
/// `out` of an N-tuple wakes only waiters blocked on arity-N patterns
/// (matrix-row traffic no longer wakes barrier waiters, and vice versa).
#[derive(Debug)]
pub struct TupleSpace {
    buckets: Mutex<HashMap<usize, VecDeque<Tuple>>>,
    /// One condvar per arity, created on first wait or deposit for that
    /// arity. All condvars pair with the `buckets` mutex.
    arity_cvs: Mutex<HashMap<usize, Arc<Condvar>>>,
    /// Operation counters (`out` / `rd`-family / `in`-family). Standalone
    /// atomics by default; [`TupleSpace::with_counters`] shares them with a
    /// metrics registry.
    out_ops: Counter,
    rd_ops: Counter,
    in_ops: Counter,
}

impl Default for TupleSpace {
    fn default() -> Self {
        Self::with_counters(Counter::standalone(), Counter::standalone(), Counter::standalone())
    }
}

impl TupleSpace {
    pub fn new() -> Self {
        Self::default()
    }

    /// A space whose operation counters are shared (e.g. registry-backed).
    pub fn with_counters(out_ops: Counter, rd_ops: Counter, in_ops: Counter) -> Self {
        Self {
            buckets: Mutex::named("ts.buckets", HashMap::new()),
            arity_cvs: Mutex::named("ts.arity_cvs", HashMap::new()),
            out_ops,
            rd_ops,
            in_ops,
        }
    }

    /// `(out, rd, in)` operation counts observed by this space's counters.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.out_ops.get(), self.rd_ops.get(), self.in_ops.get())
    }

    /// The wakeup channel for one arity. Taken *before* the bucket lock —
    /// never while holding it — so lock order is always cvs → buckets.
    fn cv_for(&self, arity: usize) -> Arc<Condvar> {
        Arc::clone(
            self.arity_cvs
                .lock()
                .entry(arity)
                .or_insert_with(|| Arc::new(Condvar::named("ts.arity_cv"))),
        )
    }

    /// Deposit a tuple (`out` in Linda terms).
    pub fn out(&self, tuple: Tuple) {
        assert!(!tuple.is_empty(), "tuples must be non-empty");
        self.out_ops.inc();
        let arity = tuple.len();
        let cv = self.cv_for(arity);
        self.buckets.lock().entry(arity).or_default().push_back(tuple);
        cv.notify_all();
    }

    /// Non-blocking read: copy a matching tuple if present.
    pub fn try_rd(&self, pattern: &Pattern) -> Option<Tuple> {
        self.rd_ops.inc();
        let buckets = self.buckets.lock();
        buckets.get(&pattern.len())?.iter().find(|t| matches(t, pattern)).cloned()
    }

    /// Non-blocking take: remove and return a matching tuple if present.
    pub fn try_in(&self, pattern: &Pattern) -> Option<Tuple> {
        self.in_ops.inc();
        let mut buckets = self.buckets.lock();
        let bucket = buckets.get_mut(&pattern.len())?;
        let pos = bucket.iter().position(|t| matches(t, pattern))?;
        bucket.remove(pos)
    }

    /// Blocking read with timeout.
    pub fn rd(&self, pattern: &Pattern, timeout: Duration) -> Option<Tuple> {
        self.rd_ops.inc();
        let arity = pattern.len();
        let cv = self.cv_for(arity);
        let deadline = Instant::now() + timeout;
        let mut buckets = self.buckets.lock();
        loop {
            let hit =
                buckets.get(&arity).and_then(|b| b.iter().find(|t| matches(t, pattern)).cloned());
            if hit.is_some() {
                return hit;
            }
            if Instant::now() >= deadline {
                return None;
            }
            if cv.wait_until(&mut buckets, deadline).timed_out() {
                return buckets
                    .get(&arity)
                    .and_then(|b| b.iter().find(|t| matches(t, pattern)).cloned());
            }
        }
    }

    /// Blocking take with timeout.
    pub fn take(&self, pattern: &Pattern, timeout: Duration) -> Option<Tuple> {
        self.in_ops.inc();
        let arity = pattern.len();
        let cv = self.cv_for(arity);
        let deadline = Instant::now() + timeout;
        let mut buckets = self.buckets.lock();
        loop {
            if let Some(bucket) = buckets.get_mut(&arity) {
                if let Some(pos) = bucket.iter().position(|t| matches(t, pattern)) {
                    return bucket.remove(pos);
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            if cv.wait_until(&mut buckets, deadline).timed_out() {
                let bucket = buckets.get_mut(&arity)?;
                let pos = bucket.iter().position(|t| matches(t, pattern))?;
                return bucket.remove(pos);
            }
        }
    }

    /// Number of tuples currently in the space.
    pub fn len(&self) -> usize {
        self.buckets.lock().values().map(VecDeque::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn out_rd_in_basics() {
        let ts = TupleSpace::new();
        ts.out(vec![Field::S("row".into()), Field::I(3), Field::B(vec![1, 2])]);
        let pat: Pattern = vec![Some(Field::S("row".into())), Some(Field::I(3)), None];
        let copy = ts.try_rd(&pat).unwrap();
        assert_eq!(copy[2], Field::B(vec![1, 2]));
        assert_eq!(ts.len(), 1, "rd does not remove");
        let taken = ts.try_in(&pat).unwrap();
        assert_eq!(taken, copy);
        assert!(ts.is_empty());
        assert!(ts.try_in(&pat).is_none());
    }

    #[test]
    fn wildcards_match_any_value() {
        let ts = TupleSpace::new();
        ts.out(vec![Field::S("k".into()), Field::I(1)]);
        ts.out(vec![Field::S("k".into()), Field::I(2)]);
        let pat: Pattern = vec![Some(Field::S("k".into())), None];
        assert!(ts.try_rd(&pat).is_some());
        // Arity must match exactly.
        let wrong_arity: Pattern = vec![Some(Field::S("k".into()))];
        assert!(ts.try_rd(&wrong_arity).is_none());
    }

    #[test]
    fn blocking_take_wakes_on_out() {
        let ts = Arc::new(TupleSpace::new());
        let producer = {
            let ts = ts.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                ts.out(vec![Field::I(42)]);
            })
        };
        let got = ts.take(&vec![None], Duration::from_secs(2)).unwrap();
        assert_eq!(got, vec![Field::I(42)]);
        producer.join().unwrap();
    }

    #[test]
    fn take_times_out() {
        let ts = TupleSpace::new();
        let start = Instant::now();
        assert!(ts.take(&vec![None], Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn no_tuple_taken_twice() {
        // N producers deposit one tuple each; N consumers each take exactly
        // one; nothing is lost or duplicated.
        let ts = Arc::new(TupleSpace::new());
        let n = 16;
        let producers: Vec<_> = (0..n)
            .map(|i| {
                let ts = ts.clone();
                std::thread::spawn(move || ts.out(vec![Field::I(i as i64)]))
            })
            .collect();
        let consumers: Vec<_> = (0..n)
            .map(|_| {
                let ts = ts.clone();
                std::thread::spawn(move || {
                    let t = ts.take(&vec![None], Duration::from_secs(5)).expect("a tuple");
                    match t[0] {
                        Field::I(v) => v,
                        _ => unreachable!(),
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen: Vec<i64> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n as i64).collect::<Vec<_>>());
        assert!(ts.is_empty());
    }

    #[test]
    fn arity_buckets_stay_disjoint() {
        let ts = TupleSpace::new();
        ts.out(vec![Field::I(1)]);
        ts.out(vec![Field::I(1), Field::I(2)]);
        assert_eq!(ts.len(), 2);
        assert!(ts.try_in(&vec![None, None]).is_some());
        assert!(ts.try_in(&vec![None]).is_some());
        assert!(ts.is_empty());
    }

    #[test]
    fn waiter_survives_traffic_of_other_arities() {
        // A take blocked on a 2-field pattern must see the 2-tuple even
        // while 1-tuples are being deposited concurrently.
        let ts = Arc::new(TupleSpace::new());
        let producer = {
            let ts = ts.clone();
            std::thread::spawn(move || {
                for i in 0..50 {
                    ts.out(vec![Field::I(i)]);
                }
                std::thread::sleep(Duration::from_millis(10));
                ts.out(vec![Field::S("pair".into()), Field::I(7)]);
            })
        };
        let got = ts
            .take(&vec![Some(Field::S("pair".into())), None], Duration::from_secs(2))
            .expect("2-tuple arrives");
        assert_eq!(got[1], Field::I(7));
        assert_eq!(ts.len(), 50, "unrelated 1-tuples untouched");
        producer.join().unwrap();
    }

    #[test]
    fn field_conversions() {
        assert_eq!(Field::from(5i64), Field::I(5));
        assert_eq!(Field::from("x"), Field::S("x".into()));
        assert_eq!(Field::from(2.5), Field::F(2.5));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_tuple_rejected() {
        TupleSpace::new().out(vec![]);
    }
}
