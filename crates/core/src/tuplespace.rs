//! Tuple-space coordination.
//!
//! "CN also supports communication via tuple spaces" (paper Section 2,
//! parenthetical). This is the classic Linda model: `out` deposits a tuple,
//! `rd` copies a matching tuple, `in` removes one; both blocking and
//! non-blocking forms are provided. One space exists per job and is
//! reachable from every task via [`crate::TaskContext::tuplespace`].

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// One field of a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    I(i64),
    F(f64),
    S(String),
    B(Vec<u8>),
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::S(v.to_string())
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F(v)
    }
}

/// A tuple: a non-empty sequence of fields.
pub type Tuple = Vec<Field>;

/// A match pattern: `Some(field)` matches exactly, `None` is a wildcard.
pub type Pattern = Vec<Option<Field>>;

/// Build a pattern from exact fields (no wildcards).
pub fn exact(fields: &[Field]) -> Pattern {
    fields.iter().cloned().map(Some).collect()
}

fn matches(tuple: &Tuple, pattern: &Pattern) -> bool {
    tuple.len() == pattern.len()
        && tuple.iter().zip(pattern).all(|(f, p)| match p {
            Some(want) => f == want,
            None => true,
        })
}

/// A Linda-style tuple space.
#[derive(Debug, Default)]
pub struct TupleSpace {
    tuples: Mutex<Vec<Tuple>>,
    cv: Condvar,
}

impl TupleSpace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a tuple (`out` in Linda terms).
    pub fn out(&self, tuple: Tuple) {
        assert!(!tuple.is_empty(), "tuples must be non-empty");
        self.tuples.lock().push(tuple);
        self.cv.notify_all();
    }

    /// Non-blocking read: copy a matching tuple if present.
    pub fn try_rd(&self, pattern: &Pattern) -> Option<Tuple> {
        let tuples = self.tuples.lock();
        tuples.iter().find(|t| matches(t, pattern)).cloned()
    }

    /// Non-blocking take: remove and return a matching tuple if present.
    pub fn try_in(&self, pattern: &Pattern) -> Option<Tuple> {
        let mut tuples = self.tuples.lock();
        let pos = tuples.iter().position(|t| matches(t, pattern))?;
        Some(tuples.remove(pos))
    }

    /// Blocking read with timeout.
    pub fn rd(&self, pattern: &Pattern, timeout: Duration) -> Option<Tuple> {
        let deadline = Instant::now() + timeout;
        let mut tuples = self.tuples.lock();
        loop {
            if let Some(t) = tuples.iter().find(|t| matches(t, pattern)) {
                return Some(t.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.cv.wait_until(&mut tuples, deadline).timed_out() {
                return tuples.iter().find(|t| matches(t, pattern)).cloned();
            }
        }
    }

    /// Blocking take with timeout.
    pub fn take(&self, pattern: &Pattern, timeout: Duration) -> Option<Tuple> {
        let deadline = Instant::now() + timeout;
        let mut tuples = self.tuples.lock();
        loop {
            if let Some(pos) = tuples.iter().position(|t| matches(t, pattern)) {
                return Some(tuples.remove(pos));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.cv.wait_until(&mut tuples, deadline).timed_out() {
                let pos = tuples.iter().position(|t| matches(t, pattern))?;
                return Some(tuples.remove(pos));
            }
        }
    }

    /// Number of tuples currently in the space.
    pub fn len(&self) -> usize {
        self.tuples.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn out_rd_in_basics() {
        let ts = TupleSpace::new();
        ts.out(vec![Field::S("row".into()), Field::I(3), Field::B(vec![1, 2])]);
        let pat: Pattern = vec![Some(Field::S("row".into())), Some(Field::I(3)), None];
        let copy = ts.try_rd(&pat).unwrap();
        assert_eq!(copy[2], Field::B(vec![1, 2]));
        assert_eq!(ts.len(), 1, "rd does not remove");
        let taken = ts.try_in(&pat).unwrap();
        assert_eq!(taken, copy);
        assert!(ts.is_empty());
        assert!(ts.try_in(&pat).is_none());
    }

    #[test]
    fn wildcards_match_any_value() {
        let ts = TupleSpace::new();
        ts.out(vec![Field::S("k".into()), Field::I(1)]);
        ts.out(vec![Field::S("k".into()), Field::I(2)]);
        let pat: Pattern = vec![Some(Field::S("k".into())), None];
        assert!(ts.try_rd(&pat).is_some());
        // Arity must match exactly.
        let wrong_arity: Pattern = vec![Some(Field::S("k".into()))];
        assert!(ts.try_rd(&wrong_arity).is_none());
    }

    #[test]
    fn blocking_take_wakes_on_out() {
        let ts = Arc::new(TupleSpace::new());
        let producer = {
            let ts = ts.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                ts.out(vec![Field::I(42)]);
            })
        };
        let got = ts.take(&vec![None], Duration::from_secs(2)).unwrap();
        assert_eq!(got, vec![Field::I(42)]);
        producer.join().unwrap();
    }

    #[test]
    fn take_times_out() {
        let ts = TupleSpace::new();
        let start = Instant::now();
        assert!(ts.take(&vec![None], Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn no_tuple_taken_twice() {
        // N producers deposit one tuple each; N consumers each take exactly
        // one; nothing is lost or duplicated.
        let ts = Arc::new(TupleSpace::new());
        let n = 16;
        let producers: Vec<_> = (0..n)
            .map(|i| {
                let ts = ts.clone();
                std::thread::spawn(move || ts.out(vec![Field::I(i as i64)]))
            })
            .collect();
        let consumers: Vec<_> = (0..n)
            .map(|_| {
                let ts = ts.clone();
                std::thread::spawn(move || {
                    let t = ts.take(&vec![None], Duration::from_secs(5)).expect("a tuple");
                    match t[0] {
                        Field::I(v) => v,
                        _ => unreachable!(),
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen: Vec<i64> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n as i64).collect::<Vec<_>>());
        assert!(ts.is_empty());
    }

    #[test]
    fn field_conversions() {
        assert_eq!(Field::from(5i64), Field::I(5));
        assert_eq!(Field::from("x"), Field::S("x".into()));
        assert_eq!(Field::from(2.5), Field::F(2.5));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_tuple_rejected() {
        TupleSpace::new().out(vec![]);
    }
}
