//! Per-job tuple-space registry, shared by every server and client in a
//! neighborhood (the simulated analogue of a cluster-wide tuple-space
//! service).

use std::collections::HashMap;
use std::sync::Arc;

use cn_observe::{Counter, Recorder};
use cn_sync::Mutex;

use crate::message::JobId;
use crate::tuplespace::TupleSpace;

/// Lazily creates one [`TupleSpace`] per job.
#[derive(Debug, Default)]
pub struct SpaceRegistry {
    spaces: Mutex<HashMap<JobId, Arc<TupleSpace>>>,
    /// Neighborhood-wide `space.out` / `space.rd` / `space.in` counters,
    /// shared by every job's space. `None` for standalone registries.
    counters: Option<(Counter, Counter, Counter)>,
}

impl SpaceRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry whose spaces report tuple-space operation counts into the
    /// recorder's metrics registry (`space.out`, `space.rd`, `space.in`).
    pub fn with_recorder(rec: &Recorder) -> Self {
        let m = rec.metrics();
        Self {
            spaces: Mutex::named("spaces.registry", HashMap::new()),
            counters: Some((m.counter("space.out"), m.counter("space.rd"), m.counter("space.in"))),
        }
    }

    pub fn get_or_create(&self, job: JobId) -> Arc<TupleSpace> {
        Arc::clone(self.spaces.lock().entry(job).or_insert_with(|| {
            Arc::new(match &self.counters {
                Some((o, r, i)) => TupleSpace::with_counters(o.clone(), r.clone(), i.clone()),
                None => TupleSpace::new(),
            })
        }))
    }

    /// Drop a job's space (when the job completes).
    pub fn remove(&self, job: JobId) {
        self.spaces.lock().remove(&job);
    }

    pub fn len(&self) -> usize {
        self.spaces.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.spaces.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuplespace::Field;

    #[test]
    fn same_job_same_space() {
        let reg = SpaceRegistry::new();
        let a = reg.get_or_create(JobId(1));
        let b = reg.get_or_create(JobId(1));
        a.out(vec![Field::I(1)]);
        assert_eq!(b.len(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_jobs_isolated() {
        let reg = SpaceRegistry::new();
        let a = reg.get_or_create(JobId(1));
        let b = reg.get_or_create(JobId(2));
        a.out(vec![Field::I(1)]);
        assert!(b.is_empty());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn recorder_backed_registry_counts_ops_across_jobs() {
        let rec = cn_observe::Recorder::new();
        let reg = SpaceRegistry::with_recorder(&rec);
        let a = reg.get_or_create(JobId(1));
        let b = reg.get_or_create(JobId(2));
        a.out(vec![Field::I(1)]);
        b.out(vec![Field::I(2)]);
        let _ = a.try_rd(&vec![None]);
        let _ = b.try_in(&vec![None]);
        assert_eq!(rec.metrics().counter("space.out").get(), 2);
        assert_eq!(rec.metrics().counter("space.rd").get(), 1);
        assert_eq!(rec.metrics().counter("space.in").get(), 1);
    }

    #[test]
    fn remove_clears_entry() {
        let reg = SpaceRegistry::new();
        let a = reg.get_or_create(JobId(1));
        a.out(vec![Field::I(1)]);
        reg.remove(JobId(1));
        // A fresh space is created on next access.
        let b = reg.get_or_create(JobId(1));
        assert!(b.is_empty());
    }
}
