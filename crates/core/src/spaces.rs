//! Per-job tuple-space registry, shared by every server and client in a
//! neighborhood (the simulated analogue of a cluster-wide tuple-space
//! service).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::message::JobId;
use crate::tuplespace::TupleSpace;

/// Lazily creates one [`TupleSpace`] per job.
#[derive(Debug, Default)]
pub struct SpaceRegistry {
    spaces: Mutex<HashMap<JobId, Arc<TupleSpace>>>,
}

impl SpaceRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn get_or_create(&self, job: JobId) -> Arc<TupleSpace> {
        Arc::clone(self.spaces.lock().entry(job).or_default())
    }

    /// Drop a job's space (when the job completes).
    pub fn remove(&self, job: JobId) {
        self.spaces.lock().remove(&job);
    }

    pub fn len(&self) -> usize {
        self.spaces.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.spaces.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuplespace::Field;

    #[test]
    fn same_job_same_space() {
        let reg = SpaceRegistry::new();
        let a = reg.get_or_create(JobId(1));
        let b = reg.get_or_create(JobId(1));
        a.out(vec![Field::I(1)]);
        assert_eq!(b.len(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_jobs_isolated() {
        let reg = SpaceRegistry::new();
        let a = reg.get_or_create(JobId(1));
        let b = reg.get_or_create(JobId(2));
        a.out(vec![Field::I(1)]);
        assert!(b.is_empty());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn remove_clears_entry() {
        let reg = SpaceRegistry::new();
        let a = reg.get_or_create(JobId(1));
        a.out(vec![Field::I(1)]);
        reg.remove(JobId(1));
        // A fresh space is created on next access.
        let b = reg.get_or_create(JobId(1));
        assert!(b.is_empty());
    }
}
