//! The Computational Neighborhood (CN) runtime.
//!
//! "CN provides a modular framework comprising four main components: Job,
//! Task, JobManager and TaskManager. ... The Job and Task creation, control
//! and coordination is all done using CN API (a factory)." (paper Section 3)
//!
//! This crate is the runtime half of the reproduction:
//!
//! * [`api`] — the client-facing CN API factory ([`CnApi`], [`JobHandle`]),
//! * [`server`] — the CNServer servant (JobManager + TaskManager),
//! * [`task`] — the [`Task`] interface and [`TaskContext`] message surface,
//! * [`message`] — well-defined protocol messages + opaque user messages,
//! * [`archive`] — JAR-analogue task packaging,
//! * [`scheduler`] — bid-selection policies (JobManager & TaskManager),
//! * [`tuplespace`] / [`spaces`] — the alternative coordination medium,
//! * [`exec`] — direct execution of CNX descriptors, including dynamic
//!   invocation expansion (paper Figure 5).
//!
//! [`Neighborhood`] bootstraps a deployment: a set of simulated nodes (from
//! [`cn_cluster`]), one CNServer per node, a shared archive registry, and
//! the multicast fabric that clients discover JobManagers through.

pub mod api;
pub mod archive;
pub mod exec;
pub mod message;
pub mod pump;
pub mod scheduler;
pub mod server;
pub mod spaces;
pub mod task;
pub mod tuplespace;
pub mod wire;

pub use api::{ClientConfig, ClientError, CnApi, JobHandle, JobReport};
pub use archive::{ArchiveRegistry, TaskArchive};
pub use exec::{
    execute_descriptor, execute_descriptor_seeded, execute_with_api_seeded, DynamicArgs, ExecError,
};
pub use message::{CnMessage, JobId, JobRequirements, NetMsg, TaskSpec, UserData};
pub use scheduler::{LoadSignal, Policy, StealConfig};
pub use server::{CnServer, ServerConfig};
pub use task::{RecvError, Task, TaskContext, TaskError};
pub use tuplespace::{Field, Pattern, Tuple, TupleSpace};

use std::sync::Arc;

use cn_cluster::{LatencyModel, Network, NodeHandle, NodeSpec};
use cn_observe::Recorder;
use spaces::SpaceRegistry;

/// Configuration for a neighborhood deployment.
#[derive(Debug, Clone)]
pub struct NeighborhoodConfig {
    pub latency: LatencyModel,
    pub seed: u64,
    pub server: ServerConfig,
    /// Observability handle shared by the fabric, every server, every task
    /// context, and the client API. Disabled by default: span/event call
    /// sites then cost one atomic load (DESIGN.md §8).
    pub recorder: Recorder,
}

impl Default for NeighborhoodConfig {
    fn default() -> Self {
        NeighborhoodConfig {
            latency: LatencyModel::zero(),
            seed: 7,
            server: ServerConfig::default(),
            recorder: Recorder::disabled(),
        }
    }
}

/// A deployed CN: CNServers on every node of a (simulated) cluster.
///
/// "One could install CN servers on all the machines of a subnet and a user
/// could run their client programs from any machine on the subnet."
pub struct Neighborhood {
    net: Network<NetMsg>,
    nodes: Vec<NodeHandle>,
    servers: Vec<CnServer>,
    registry: Arc<ArchiveRegistry>,
    spaces: Arc<SpaceRegistry>,
}

impl Neighborhood {
    /// Deploy CNServers on `specs` nodes with default config.
    pub fn deploy(specs: Vec<NodeSpec>) -> Neighborhood {
        Neighborhood::deploy_with(specs, NeighborhoodConfig::default())
    }

    /// Deploy with explicit configuration.
    pub fn deploy_with(specs: Vec<NodeSpec>, config: NeighborhoodConfig) -> Neighborhood {
        let net: Network<NetMsg> =
            Network::with_recorder(config.latency, config.seed, config.recorder.clone());
        let registry = Arc::new(ArchiveRegistry::new());
        let spaces = Arc::new(SpaceRegistry::with_recorder(&config.recorder));
        let mut nodes = Vec::with_capacity(specs.len());
        let mut servers = Vec::with_capacity(specs.len());
        for spec in specs {
            let name = spec.name.clone();
            let node = NodeHandle::new(spec);
            servers.push(CnServer::spawn(
                name,
                node.clone(),
                net.clone().into(),
                Arc::clone(&registry),
                Arc::clone(&spaces),
                config.server.clone(),
            ));
            nodes.push(node);
        }
        Neighborhood { net, nodes, servers, registry, spaces }
    }

    /// The shared archive registry ("file store") clients publish jars to.
    pub fn registry(&self) -> &Arc<ArchiveRegistry> {
        &self.registry
    }

    pub fn network(&self) -> &Network<NetMsg> {
        &self.net
    }

    /// The deployment's transport as a [`FabricHandle`] — the abstraction
    /// `CnApi`/`CnServer` actually talk to. For a simulated neighborhood
    /// this wraps the in-process [`Network`]; `cnctl serve`/`submit` build
    /// the same handle over a [`cn_wire::SocketFabric`] instead.
    pub fn fabric(&self) -> cn_wire::FabricHandle<NetMsg> {
        self.net.clone().into()
    }

    pub fn spaces(&self) -> Arc<SpaceRegistry> {
        Arc::clone(&self.spaces)
    }

    /// Node handle by name (failure injection).
    pub fn node(&self, name: &str) -> Option<&NodeHandle> {
        self.nodes.iter().find(|n| n.name() == name)
    }

    pub fn nodes(&self) -> &[NodeHandle] {
        &self.nodes
    }

    /// Server endpoint address by name (for partitioning).
    pub fn server_addr(&self, name: &str) -> Option<cn_cluster::Addr> {
        self.servers.iter().find(|s| s.name == name).map(|s| s.addr)
    }

    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Network metrics snapshot.
    pub fn metrics(&self) -> cn_cluster::MetricsSnapshot {
        self.net.metrics()
    }

    /// The observability handle this deployment records into (the one from
    /// [`NeighborhoodConfig::recorder`]; disabled unless one was supplied).
    pub fn recorder(&self) -> &Recorder {
        self.net.recorder()
    }

    /// Stop all servers and wait for their threads. Any active network
    /// partitions are healed first so the shutdown control messages can
    /// reach their servers.
    pub fn shutdown(mut self) {
        self.net.heal_all();
        for server in self.servers.drain(..) {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn echo_archive() -> TaskArchive {
        TaskArchive::new("echo.jar").class("Echo", || {
            Box::new(|ctx: &mut TaskContext| {
                Ok(UserData::Text(format!("echo:{}", ctx.param_str(0).unwrap_or(""))))
            })
        })
    }

    fn deploy(n: usize) -> Neighborhood {
        let nb = Neighborhood::deploy(NodeSpec::fleet(n, 4000, 4));
        nb.registry().publish(echo_archive());
        nb
    }

    #[test]
    fn single_task_job_runs_to_completion() {
        let nb = deploy(2);
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        let mut spec = TaskSpec::new("t0", "echo.jar", "Echo");
        spec.params.push(cn_cnx::Param::string("hello"));
        job.add_task(spec).unwrap();
        job.start().unwrap();
        let report = job.wait(Duration::from_secs(10)).unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.result("t0"), Some(&UserData::Text("echo:hello".into())));
        nb.shutdown();
    }

    #[test]
    fn dependencies_run_in_order() {
        let nb = deploy(3);
        // An archive whose tasks deposit their start order in the tuple space.
        nb.registry().publish(TaskArchive::new("order.jar").class("Order", || {
            Box::new(|ctx: &mut TaskContext| {
                let ts = ctx.tuplespace();
                let seq = ts.len() as i64;
                ts.out(vec![Field::S(ctx.name.clone()), Field::I(seq)]);
                Ok(UserData::Empty)
            })
        }));
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        let mut a = TaskSpec::new("a", "order.jar", "Order");
        let mut b = TaskSpec::new("b", "order.jar", "Order");
        b.depends = vec!["a".into()];
        let mut c = TaskSpec::new("c", "order.jar", "Order");
        c.depends = vec!["b".into()];
        a.memory_mb = 100;
        b.memory_mb = 100;
        c.memory_mb = 100;
        let space = {
            job.add_task(a).unwrap();
            job.add_task(b).unwrap();
            job.add_task(c).unwrap();
            job.tuplespace().clone()
        };
        job.start().unwrap();
        job.wait(Duration::from_secs(10)).unwrap();
        let order = |name: &str| -> i64 {
            let t = space
                .try_rd(&vec![Some(Field::S(name.into())), None])
                .unwrap_or_else(|| panic!("{name} not recorded"));
            match t[1] {
                Field::I(v) => v,
                _ => unreachable!(),
            }
        };
        assert!(order("a") < order("b"));
        assert!(order("b") < order("c"));
        nb.shutdown();
    }

    #[test]
    fn no_jobmanager_when_requirements_unmeetable() {
        let nb = deploy(2);
        let api = CnApi::initialize(&nb);
        let req = JobRequirements { min_free_memory_mb: 1_000_000, min_free_slots: 1 };
        assert!(matches!(api.create_job(&req).err().unwrap(), ClientError::NoJobManagers));
        nb.shutdown();
    }

    #[test]
    fn placement_fails_when_memory_exhausted() {
        let nb = Neighborhood::deploy(NodeSpec::fleet(1, 1000, 8));
        nb.registry().publish(echo_archive());
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        let mut big = TaskSpec::new("big", "echo.jar", "Echo");
        big.memory_mb = 900;
        job.add_task(big).unwrap();
        let mut too_big = TaskSpec::new("too_big", "echo.jar", "Echo");
        too_big.memory_mb = 900;
        let err = job.add_task(too_big).unwrap_err();
        assert!(matches!(err, ClientError::PlacementFailed { .. }), "{err:?}");
        nb.shutdown();
    }

    #[test]
    fn missing_archive_is_rejected_at_assignment() {
        let nb = deploy(1);
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        let err = job.add_task(TaskSpec::new("x", "ghost.jar", "Nope")).unwrap_err();
        assert!(matches!(err, ClientError::PlacementFailed { .. }), "{err:?}");
        nb.shutdown();
    }

    #[test]
    fn failing_task_fails_the_job() {
        let nb = deploy(2);
        nb.registry()
            .publish(TaskArchive::new("bad.jar").class("Boom", || {
                Box::new(|_ctx: &mut TaskContext| Err(TaskError::new("kaboom")))
            }));
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        job.add_task(TaskSpec::new("boom", "bad.jar", "Boom")).unwrap();
        job.start().unwrap();
        match job.wait(Duration::from_secs(10)) {
            Err(ClientError::JobFailed(e)) => assert!(e.contains("kaboom"), "{e}"),
            other => panic!("{other:?}"),
        }
        nb.shutdown();
    }

    #[test]
    fn tasks_exchange_user_messages() {
        let nb = deploy(2);
        nb.registry().publish(
            TaskArchive::new("pingpong.jar")
                .class("Ping", || {
                    Box::new(|ctx: &mut TaskContext| {
                        ctx.send("pong", "ping", UserData::I64s(vec![1]))?;
                        let (_, data) = ctx
                            .recv_tagged("pong", Duration::from_secs(5))
                            .map_err(|e| TaskError::new(e.to_string()))?;
                        Ok(data)
                    })
                })
                .class("Pong", || {
                    Box::new(|ctx: &mut TaskContext| {
                        let (from, data) = ctx
                            .recv_tagged("ping", Duration::from_secs(5))
                            .map_err(|e| TaskError::new(e.to_string()))?;
                        let mut v = data.as_i64s().unwrap_or(&[]).to_vec();
                        v.push(2);
                        ctx.send(&from, "pong", UserData::I64s(v))?;
                        Ok(UserData::Empty)
                    })
                }),
        );
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        let mut ping = TaskSpec::new("ping", "pingpong.jar", "Ping");
        let mut pong = TaskSpec::new("pong", "pingpong.jar", "Pong");
        ping.memory_mb = 100;
        pong.memory_mb = 100;
        job.add_task(ping).unwrap();
        job.add_task(pong).unwrap();
        job.start().unwrap();
        let report = job.wait(Duration::from_secs(10)).unwrap();
        assert_eq!(report.result("ping"), Some(&UserData::I64s(vec![1, 2])));
        nb.shutdown();
    }

    #[test]
    fn client_messages_flow_both_ways() {
        let nb = deploy(1);
        nb.registry().publish(TaskArchive::new("chat.jar").class("Chat", || {
            Box::new(|ctx: &mut TaskContext| {
                ctx.send_to_client("hello", UserData::Text("hi client".into()))?;
                let (_, data) = ctx
                    .recv_tagged("reply", Duration::from_secs(5))
                    .map_err(|e| TaskError::new(e.to_string()))?;
                Ok(data)
            })
        }));
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        job.add_task(TaskSpec::new("chat", "chat.jar", "Chat")).unwrap();
        job.start().unwrap();
        // Get Messages from Tasks.
        let mut greeted = false;
        for _ in 0..10 {
            match job.recv_message(Duration::from_secs(5)).unwrap() {
                CnMessage::User { tag, data, .. } => {
                    assert_eq!(tag, "hello");
                    assert_eq!(data, UserData::Text("hi client".into()));
                    greeted = true;
                    break;
                }
                _ => continue,
            }
        }
        assert!(greeted);
        // Send Messages to Tasks.
        job.send_to_task("chat", "reply", UserData::Text("hi task".into())).unwrap();
        let report = job.wait(Duration::from_secs(10)).unwrap();
        assert_eq!(report.result("chat"), Some(&UserData::Text("hi task".into())));
        nb.shutdown();
    }

    #[test]
    fn jobs_distribute_across_servers_least_loaded() {
        let nb = deploy(4);
        nb.registry().publish(
            TaskArchive::new("where.jar")
                .class("Where", || Box::new(|_ctx: &mut TaskContext| Ok(UserData::Empty))),
        );
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        // 8 tasks across 4 nodes of 4 slots each: with LeastLoaded placement
        // every node should get about two.
        for i in 0..8 {
            let mut s = TaskSpec::new(format!("t{i}"), "where.jar", "Where");
            s.memory_mb = 100;
            job.add_task(s).unwrap();
        }
        job.start().unwrap();
        job.wait(Duration::from_secs(10)).unwrap();
        nb.shutdown();
    }

    #[test]
    fn crashed_node_is_avoided() {
        let nb = deploy(2);
        nb.node("node0").unwrap().crash();
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        // Everything must land on node1.
        for i in 0..3 {
            let mut s = TaskSpec::new(format!("t{i}"), "echo.jar", "Echo");
            s.memory_mb = 100;
            job.add_task(s).unwrap();
        }
        assert_eq!(job.manager(), "node1");
        job.start().unwrap();
        job.wait(Duration::from_secs(10)).unwrap();
        nb.shutdown();
    }

    #[test]
    fn client_can_cancel_a_running_job() {
        let nb = deploy(2);
        // A task that blocks waiting for a message that never arrives; it
        // observes Shutdown when cancelled.
        nb.registry().publish(TaskArchive::new("wait.jar").class("Waiter", || {
            Box::new(|ctx: &mut TaskContext| match ctx.recv_timeout(Duration::from_secs(30)) {
                Err(crate::RecvError::Shutdown) => Err(TaskError::new("interrupted")),
                other => Err(TaskError::new(format!("unexpected: {other:?}"))),
            })
        }));
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        let mut spec = TaskSpec::new("w", "wait.jar", "Waiter");
        spec.memory_mb = 64;
        job.add_task(spec).unwrap();
        job.start().unwrap();
        let t0 = std::time::Instant::now();
        job.cancel(Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "cancel must not wait out the task");
        nb.shutdown();
    }

    #[test]
    fn cancel_after_completion_is_ok() {
        let nb = deploy(1);
        let api = CnApi::initialize(&nb);
        let mut job = api.create_job(&JobRequirements::default()).unwrap();
        let mut spec = TaskSpec::new("t", "echo.jar", "Echo");
        spec.memory_mb = 64;
        job.add_task(spec).unwrap();
        job.start().unwrap();
        // Give the (instant) job time to finish, then cancel.
        std::thread::sleep(Duration::from_millis(50));
        job.cancel(Duration::from_secs(5)).unwrap();
        nb.shutdown();
    }

    #[test]
    fn all_nodes_down_means_no_managers() {
        let nb = deploy(2);
        nb.node("node0").unwrap().crash();
        nb.node("node1").unwrap().crash();
        let api = CnApi::initialize(&nb);
        assert!(matches!(
            api.create_job(&JobRequirements::default()).err().unwrap(),
            ClientError::NoJobManagers
        ));
        nb.shutdown();
    }
}
