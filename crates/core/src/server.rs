//! The CNServer servant: one process per node hosting both a JobManager and
//! a TaskManager.
//!
//! "JobManager and the TaskManager are part of the same process, CNServer,
//! which is a servant (since it acts as a client and a server). The
//! JobManager can support multiple Jobs." (paper Section 3)
//!
//! Each server runs an event loop on its own thread, joined to the CN
//! discovery multicast group. The JobManager half answers solicitations,
//! manages job DAGs and relays task lifecycle messages to the client; the
//! TaskManager half bids for tasks, receives archive uploads, sets up
//! per-task message queues and runs each task in its own thread
//! (`RUN_AS_THREAD_IN_TM`).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_cluster::{Addr, Envelope, NodeHandle};
use cn_observe::{Counter, Recorder, Severity};
use cn_sync::channel::Receiver;
use cn_sync::thread::JoinHandle;
use cn_wire::FabricHandle;

use crate::archive::ArchiveRegistry;
use crate::message::{Bid, JobId, NetMsg, TaskSpec, UserData, CLIENT_TASK_NAME};
use crate::pump::MsgPump;
use crate::scheduler::{select, Policy, RoundRobin};
use crate::spaces::SpaceRegistry;
use crate::task::TaskContext;
use crate::tuplespace::Tuple;

/// Tunables for a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long the JobManager collects TaskManager bids before selecting.
    pub bid_window: Duration,
    /// How long the JobManager waits for an AssignAck from a remote TM.
    pub assign_timeout: Duration,
    /// Bid selection policy for task placement.
    pub policy: Policy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bid_window: Duration::from_millis(5),
            assign_timeout: Duration::from_secs(2),
            policy: Policy::LeastLoaded,
        }
    }
}

/// Handle to a running CNServer.
pub struct CnServer {
    pub name: String,
    pub addr: Addr,
    net: FabricHandle<NetMsg>,
    thread: Option<JoinHandle<()>>,
}

impl CnServer {
    /// Spawn a server for `node`, joined to the discovery group. The
    /// fabric decides the deployment shape: the simulated network hosts a
    /// whole neighborhood in one process, a socket fabric puts this
    /// server on the wire (`cnctl serve`).
    pub fn spawn(
        name: impl Into<String>,
        node: NodeHandle,
        net: FabricHandle<NetMsg>,
        registry: Arc<ArchiveRegistry>,
        spaces: Arc<SpaceRegistry>,
        config: ServerConfig,
    ) -> CnServer {
        let name = name.into();
        let (addr, rx) = net.register();
        net.join_group(addr, cn_cluster::DISCOVERY_GROUP);
        let rec = net.recorder().clone();
        let state = ServerState {
            name: name.clone(),
            addr,
            pump: MsgPump::new(rx),
            node,
            registry,
            spaces,
            config,
            jm_jobs: HashMap::new(),
            tm_tasks: HashMap::new(),
            uploaded: HashSet::new(),
            rr: RoundRobin::new(),
            task_threads: Vec::new(),
            c_jm_bids: rec.counter("server.jm_bids_sent"),
            c_tm_bids: rec.counter("server.tm_bids_sent"),
            c_task_solicits: rec.counter("server.task_solicitations"),
            c_tasks_started: rec.counter("server.tasks_started"),
            c_tasks_completed: rec.counter("server.tasks_completed"),
            c_tasks_failed: rec.counter("server.tasks_failed"),
            rec,
            net: net.clone(),
        };
        let thread = cn_sync::thread::Builder::new()
            .name(format!("cnserver-{name}"))
            .spawn(move || state.run())
            .expect("spawn server thread");
        CnServer { name, addr, net, thread: Some(thread) }
    }

    /// Ask the server to stop and wait for its event loop to exit.
    pub fn shutdown(mut self) {
        let _ = self.net.send(self.addr, self.addr, NetMsg::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CnServer {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = self.net.send(self.addr, self.addr, NetMsg::Shutdown);
            let _ = t.join();
        }
    }
}

/// JobManager-side record of a job.
struct JmJob {
    client: Addr,
    specs: Vec<TaskSpec>,
    /// task name → (tm server addr, task endpoint, server name).
    assigned: HashMap<String, (Addr, Addr, String)>,
    completed: HashMap<String, UserData>,
    started: HashSet<String>,
    job_started: bool,
    failed: bool,
}

/// TaskManager-side record of an assigned task.
struct TmTask {
    spec: TaskSpec,
    /// The JobManager this task reports lifecycle events to.
    jm: Addr,
    endpoint: Addr,
    rx: Option<Receiver<Envelope<NetMsg>>>,
    reservation: Option<cn_cluster::node::Reservation>,
    started: bool,
}

struct ServerState {
    name: String,
    addr: Addr,
    net: FabricHandle<NetMsg>,
    pump: MsgPump<NetMsg>,
    node: NodeHandle,
    registry: Arc<ArchiveRegistry>,
    spaces: Arc<SpaceRegistry>,
    config: ServerConfig,
    jm_jobs: HashMap<JobId, JmJob>,
    tm_tasks: HashMap<(JobId, String), TmTask>,
    /// Jars this TaskManager has received.
    uploaded: HashSet<String>,
    rr: RoundRobin,
    task_threads: Vec<JoinHandle<()>>,
    rec: Recorder,
    c_jm_bids: Counter,
    c_tm_bids: Counter,
    c_task_solicits: Counter,
    c_tasks_started: Counter,
    c_tasks_completed: Counter,
    c_tasks_failed: Counter,
}

impl ServerState {
    fn run(mut self) {
        // `None` from the pump means the network is gone.
        while let Some(env) = self.pump.next() {
            if matches!(env.msg, NetMsg::Shutdown) {
                break;
            }
            self.handle(env);
        }
        // Task threads are detached on shutdown: they hold their own clones
        // of the network/registry and exit once their (timeout-bounded)
        // receives return. Joining here would block shutdown behind a task
        // stuck waiting for input that will never arrive.
        self.task_threads.clear();
        self.net.unregister(self.addr);
    }

    fn send(&self, to: Addr, msg: NetMsg) {
        let _ = self.net.send(self.addr, to, msg);
    }

    /// Nested receive: wait for an envelope matching `want`, stashing
    /// everything else for the main loop.
    fn wait_for(
        &mut self,
        deadline: Instant,
        want: impl FnMut(&NetMsg) -> bool,
    ) -> Option<Envelope<NetMsg>> {
        self.pump.wait_for(deadline, want)
    }

    fn handle(&mut self, env: Envelope<NetMsg>) {
        match env.msg {
            // ---- JobManager: discovery --------------------------------
            NetMsg::SolicitJobManager { job, requirements, reply_to } => {
                let willing = self.node.is_alive()
                    && self.node.free_memory_mb() >= requirements.min_free_memory_mb
                    && self.node.free_slots() >= requirements.min_free_slots;
                if willing {
                    self.c_jm_bids.inc();
                    self.send(reply_to, NetMsg::JobManagerBid { job, bid: self.own_bid() });
                }
            }

            // ---- JobManager: job lifecycle ----------------------------
            NetMsg::CreateJob { job, client, reply_to } => {
                let accepted = !self.jm_jobs.contains_key(&job);
                if accepted {
                    self.jm_jobs.insert(
                        job,
                        JmJob {
                            client,
                            specs: Vec::new(),
                            assigned: HashMap::new(),
                            completed: HashMap::new(),
                            started: HashSet::new(),
                            job_started: false,
                            failed: false,
                        },
                    );
                }
                self.send(
                    reply_to,
                    NetMsg::JobAck {
                        job,
                        accepted,
                        reason: if accepted { String::new() } else { "job already exists".into() },
                    },
                );
            }
            NetMsg::CreateTask { job, spec, reply_to } => {
                let result = self.place_task(job, spec.clone());
                match result {
                    Ok((tm_addr, task_addr, server)) => {
                        if let Some(j) = self.jm_jobs.get_mut(&job) {
                            j.specs.push(spec.clone());
                            j.assigned
                                .insert(spec.name.clone(), (tm_addr, task_addr, server.clone()));
                        }
                        self.send(
                            reply_to,
                            NetMsg::TaskAck {
                                job,
                                task: spec.name,
                                accepted: true,
                                reason: String::new(),
                                server,
                                task_addr: Some(task_addr),
                            },
                        );
                    }
                    Err(reason) => {
                        self.send(
                            reply_to,
                            NetMsg::TaskAck {
                                job,
                                task: spec.name,
                                accepted: false,
                                reason,
                                server: String::new(),
                                task_addr: None,
                            },
                        );
                    }
                }
            }
            NetMsg::StartJob { job } => self.jm_start_ready(job),
            NetMsg::CancelJob { job } => self.jm_cancel_job(job),

            // ---- TaskManager: placement -------------------------------
            NetMsg::SolicitTaskManager { job, task, memory_mb, reply_to }
                if self.node.can_host(memory_mb) =>
            {
                self.c_tm_bids.inc();
                self.send(reply_to, NetMsg::TaskManagerBid { job, task, bid: self.own_bid() });
            }
            NetMsg::UploadArchive { jar, .. } => self.tm_upload(&jar),
            NetMsg::AssignTask { job, spec, jm, reply_to } => {
                let task = spec.name.clone();
                match self.tm_assign(job, spec, jm) {
                    Ok(task_addr) => self.send(
                        reply_to,
                        NetMsg::AssignAck {
                            job,
                            task,
                            accepted: true,
                            reason: String::new(),
                            task_addr: Some(task_addr),
                        },
                    ),
                    Err(reason) => self.send(
                        reply_to,
                        NetMsg::AssignAck { job, task, accepted: false, reason, task_addr: None },
                    ),
                }
            }
            NetMsg::StartTask { job, task, directory, client } => {
                self.tm_start(job, &task, directory, client)
            }
            NetMsg::CancelTask { job, task } => self.tm_cancel(job, &task),
            NetMsg::TaskExited { job, task } => {
                self.tm_tasks.remove(&(job, task));
                // Wire mode: this process owns a private replica of the
                // job's tuple space; drop it once the last local task of
                // the job is gone. (On a shared-memory fabric the client's
                // JobHandle owns that cleanup — removing here would hand
                // later tasks of the same job a fresh empty space.)
                if !self.net.shared_memory() && !self.tm_tasks.keys().any(|(j, _)| *j == job) {
                    self.spaces.remove(job);
                }
            }

            // ---- Tuple seeding (wire mode) ----------------------------
            NetMsg::SeedTuple { job, tuple } => self.seed_tuple(job, tuple),

            // ---- JobManager: task lifecycle from TMs -------------------
            NetMsg::TaskStarted { job, task } => {
                if let Some(j) = self.jm_jobs.get(&job) {
                    let client = j.client;
                    self.send(client, NetMsg::TaskStarted { job, task });
                }
            }
            NetMsg::TaskCompleted { job, task, result } => {
                self.jm_task_completed(job, task, result)
            }
            NetMsg::TaskFailed { job, task, error } => self.jm_task_failed(job, task, error),

            // Not for the server: ignore.
            _ => {}
        }
    }

    /// Wire-mode tuple seeding: deposit into this process's replica of
    /// the job's space and, if we are the job's JobManager, relay to every
    /// distinct remote TaskManager assigned one of its tasks. Per-peer
    /// FIFO ordering on the socket fabric guarantees the relayed tuple
    /// lands before any later `StartTask` to the same TaskManager.
    fn seed_tuple(&mut self, job: JobId, tuple: Tuple) {
        self.spaces.get_or_create(job).out(tuple.clone());
        let Some(j) = self.jm_jobs.get(&job) else { return };
        let mut relayed: HashSet<Addr> = HashSet::new();
        let targets: Vec<Addr> = j
            .assigned
            .values()
            .map(|(tm, _, _)| *tm)
            .filter(|tm| *tm != self.addr && relayed.insert(*tm))
            .collect();
        for tm in targets {
            self.send(tm, NetMsg::SeedTuple { job, tuple: tuple.clone() });
        }
    }

    fn own_bid(&self) -> Bid {
        Bid {
            server: self.name.clone(),
            addr: self.addr,
            load: self.node.load(),
            free_memory_mb: self.node.free_memory_mb(),
            free_slots: self.node.free_slots(),
        }
    }

    // ---- JobManager internals ------------------------------------------

    /// Place one task: solicit TaskManagers (including our own, evaluated
    /// locally — JM and TM share this process), select per policy, upload
    /// the archive, assign.
    fn place_task(&mut self, job: JobId, spec: TaskSpec) -> Result<(Addr, Addr, String), String> {
        match self.jm_jobs.get(&job) {
            None => return Err(format!("no such job {job}")),
            Some(j) if j.assigned.contains_key(&spec.name) => {
                return Err(format!("task name {:?} already exists in {job}", spec.name))
            }
            Some(_) => {}
        }
        // Multicast solicitation (the paper's "JobManager solicits
        // TaskManager for the Tasks").
        self.c_task_solicits.inc();
        self.net.multicast(
            self.addr,
            cn_cluster::DISCOVERY_GROUP,
            NetMsg::SolicitTaskManager {
                job,
                task: spec.name.clone(),
                memory_mb: spec.memory_mb,
                reply_to: self.addr,
            },
        );
        let mut bids: Vec<Bid> = Vec::new();
        // Our own TM is evaluated locally (multicast excludes the sender).
        if self.node.can_host(spec.memory_mb) {
            bids.push(self.own_bid());
        }
        let deadline = Instant::now() + self.config.bid_window;
        while let Some(env) = self.pump.recv_deadline(deadline) {
            match env.msg {
                NetMsg::TaskManagerBid { job: bjob, task, bid }
                    if bjob == job && task == spec.name =>
                {
                    bids.push(bid)
                }
                _ => self.pump.stash(env),
            }
        }
        // Try bidders in policy order: a TaskManager may still reject (its
        // state can change between bid and assignment) or time out, in
        // which case the JobManager falls back to the next-best bidder.
        self.rec.event_with(Severity::Debug, "job", Some(job.0), || {
            format!("[{}] task {:?} drew {} TaskManager bid(s)", self.name, spec.name, bids.len())
        });
        let mut failures: Vec<String> = Vec::new();
        let mut remaining = bids;
        while !remaining.is_empty() {
            let chosen = match self.config.policy {
                Policy::RoundRobin => self.rr.select(&remaining).cloned(),
                p => select(p, &remaining, 0).cloned(),
            }
            .expect("remaining is non-empty");
            remaining.retain(|b| b.addr != chosen.addr);
            match self.try_assign(job, &spec, &chosen) {
                Ok(task_addr) => return Ok((chosen.addr, task_addr, chosen.server)),
                Err(reason) => failures.push(format!("{}: {reason}", chosen.server)),
            }
        }
        if failures.is_empty() {
            Err(format!("no willing TaskManager for task {:?}", spec.name))
        } else {
            Err(format!(
                "every willing TaskManager failed for task {:?}: {}",
                spec.name,
                failures.join("; ")
            ))
        }
    }

    /// Attempt one assignment on a specific bidder.
    fn try_assign(&mut self, job: JobId, spec: &TaskSpec, chosen: &Bid) -> Result<Addr, String> {
        if chosen.addr == self.addr {
            // Local fast path: same process.
            self.tm_upload(&spec.jar);
            return self.tm_assign(job, spec.clone(), self.addr);
        }
        let size = self.registry.get(&spec.jar).map(|a| a.size_bytes).unwrap_or(0);
        self.send(chosen.addr, NetMsg::UploadArchive { jar: spec.jar.clone(), size_bytes: size });
        self.send(
            chosen.addr,
            NetMsg::AssignTask { job, spec: spec.clone(), jm: self.addr, reply_to: self.addr },
        );
        let deadline = Instant::now() + self.config.assign_timeout;
        let task_name = spec.name.clone();
        let tm_addr = chosen.addr;
        // Match on the sender too: a late ack from a previously timed-out
        // bidder must not be attributed to this attempt.
        let ack = self.wait_for(deadline, |m| {
            matches!(m, NetMsg::AssignAck { job: j, task, .. } if *j == job && *task == task_name)
        });
        let Some(ack) = ack else {
            // The TM may have accepted after we gave up; tell it to release
            // the assignment (best effort — idempotent on the TM side).
            self.rec.event_with(Severity::Warn, "job", Some(job.0), || {
                format!(
                    "[{}] AssignAck timeout from {} for {:?}",
                    self.name, chosen.server, spec.name
                )
            });
            self.send(tm_addr, NetMsg::CancelTask { job, task: task_name });
            return Err("AssignAck timeout".to_string());
        };
        if ack.from != tm_addr {
            // Stale ack from an earlier bidder: release whatever it set up
            // and report this attempt as failed.
            self.rec.event_with(Severity::Warn, "job", Some(job.0), || {
                format!("[{}] stale AssignAck from {} for {:?}", self.name, ack.from, spec.name)
            });
            self.send(ack.from, NetMsg::CancelTask { job, task: task_name });
            return Err(format!("stale AssignAck from {}", ack.from));
        }
        match ack.msg {
            NetMsg::AssignAck { accepted: true, task_addr: Some(addr), .. } => Ok(addr),
            NetMsg::AssignAck { reason, .. } => Err(format!("rejected: {reason}")),
            _ => unreachable!("wait_for filtered on AssignAck"),
        }
    }

    /// Start every not-yet-started task whose dependencies are complete.
    fn jm_start_ready(&mut self, job: JobId) {
        let Some(j) = self.jm_jobs.get_mut(&job) else { return };
        j.job_started = true;
        if j.failed {
            return;
        }
        if j.specs.is_empty() {
            // A job with no tasks is vacuously complete.
            let client = j.client;
            self.jm_jobs.remove(&job);
            self.send(client, NetMsg::JobCompleted { job, results: Vec::new() });
            return;
        }
        // Build the full directory once per call (client included).
        let mut directory: HashMap<String, Addr> =
            j.assigned.iter().map(|(name, (_, task_addr, _))| (name.clone(), *task_addr)).collect();
        directory.insert(CLIENT_TASK_NAME.to_string(), j.client);
        let client = j.client;
        let ready: Vec<(String, Addr)> = j
            .specs
            .iter()
            .filter(|s| {
                !j.started.contains(&s.name)
                    && !j.completed.contains_key(&s.name)
                    && s.depends.iter().all(|d| j.completed.contains_key(d))
            })
            .filter_map(|s| j.assigned.get(&s.name).map(|(tm, _, _)| (s.name.clone(), *tm)))
            .collect();
        for (task, _) in &ready {
            j.started.insert(task.clone());
        }
        for (task, tm_addr) in ready {
            if tm_addr == self.addr {
                self.tm_start(job, &task, directory.clone(), client);
            } else {
                self.send(
                    tm_addr,
                    NetMsg::StartTask { job, task, directory: directory.clone(), client },
                );
            }
        }
    }

    fn jm_task_completed(&mut self, job: JobId, task: String, result: UserData) {
        let Some(j) = self.jm_jobs.get_mut(&job) else { return };
        j.completed.insert(task.clone(), result.clone());
        let client = j.client;
        let all_done = j.completed.len() == j.specs.len();
        let results: Vec<(String, UserData)> = if all_done {
            j.specs
                .iter()
                .map(|s| {
                    (s.name.clone(), j.completed.get(&s.name).cloned().unwrap_or(UserData::Empty))
                })
                .collect()
        } else {
            Vec::new()
        };
        let job_started = j.job_started;
        self.send(client, NetMsg::TaskCompleted { job, task, result });
        if all_done {
            // The job is finished; drop its JobManager state (and, in wire
            // mode, its local tuple-space replica — client job ids restart
            // per process, so a stale space could leak into a later job).
            self.jm_jobs.remove(&job);
            if !self.net.shared_memory() {
                self.spaces.remove(job);
            }
            self.send(client, NetMsg::JobCompleted { job, results });
        } else if job_started {
            self.jm_start_ready(job);
        }
    }

    /// Client-requested cancellation: interrupt everything in flight and
    /// report the job as failed.
    fn jm_cancel_job(&mut self, job: JobId) {
        let Some(j) = self.jm_jobs.get_mut(&job) else { return };
        if j.failed {
            return;
        }
        j.failed = true;
        let client = j.client;
        self.rec.event_with(Severity::Warn, "job", Some(job.0), || {
            format!("[{}] job cancelled by client", self.name)
        });
        // Everything assigned and not yet complete is cancelled — including
        // tasks that never started (their reservations must be released).
        let to_cancel: Vec<(String, Addr)> = j
            .assigned
            .iter()
            .filter(|(t, _)| !j.completed.contains_key(*t))
            .map(|(t, (tm, _, _))| (t.clone(), *tm))
            .collect();
        for (t, tm_addr) in to_cancel {
            if tm_addr == self.addr {
                self.tm_cancel(job, &t);
            } else {
                self.send(tm_addr, NetMsg::CancelTask { job, task: t });
            }
        }
        self.jm_jobs.remove(&job);
        if !self.net.shared_memory() {
            self.spaces.remove(job);
        }
        self.send(client, NetMsg::JobFailed { job, error: "cancelled by client".to_string() });
    }

    fn jm_task_failed(&mut self, job: JobId, task: String, error: String) {
        let Some(j) = self.jm_jobs.get_mut(&job) else { return };
        let first_failure = !j.failed;
        j.failed = true;
        let client = j.client;
        self.rec.event_with(Severity::Error, "job", Some(job.0), || {
            format!("[{}] task {task:?} failed: {error}; cancelling the job", self.name)
        });
        // Cancel everything assigned and not complete — running tasks are
        // interrupted, never-started ones release their reservations.
        let to_cancel: Vec<(String, Addr)> = j
            .assigned
            .iter()
            .filter(|(t, _)| !j.completed.contains_key(*t) && **t != task)
            .map(|(t, (tm, _, _))| (t.clone(), *tm))
            .collect();
        for (t, tm_addr) in to_cancel {
            if tm_addr == self.addr {
                self.tm_cancel(job, &t);
            } else {
                self.send(tm_addr, NetMsg::CancelTask { job, task: t });
            }
        }
        self.send(client, NetMsg::TaskFailed { job, task: task.clone(), error: error.clone() });
        if first_failure {
            self.jm_jobs.remove(&job);
            if !self.net.shared_memory() {
                self.spaces.remove(job);
            }
            self.send(
                client,
                NetMsg::JobFailed { job, error: format!("task {task:?} failed: {error}") },
            );
        }
    }

    // ---- TaskManager internals ------------------------------------------

    fn tm_upload(&mut self, jar: &str) {
        self.uploaded.insert(jar.to_string());
    }

    /// Reserve resources and set up the task's message queue.
    fn tm_assign(&mut self, job: JobId, spec: TaskSpec, jm: Addr) -> Result<Addr, String> {
        if !self.uploaded.contains(&spec.jar) {
            return Err(format!("archive {:?} was not uploaded", spec.jar));
        }
        if !self.registry.contains(&spec.jar) {
            return Err(format!("archive {:?} not present in the registry", spec.jar));
        }
        let reservation = self.node.reserve(spec.memory_mb).map_err(|e| e.to_string())?;
        let (endpoint, rx) = self.net.register();
        let key = (job, spec.name.clone());
        self.tm_tasks.insert(
            key,
            TmTask {
                spec,
                jm,
                endpoint,
                rx: Some(rx),
                reservation: Some(reservation),
                started: false,
            },
        );
        Ok(endpoint)
    }

    /// Run an assigned task on its own thread.
    fn tm_start(
        &mut self,
        job: JobId,
        task: &str,
        directory: HashMap<String, Addr>,
        _client: Addr,
    ) {
        let Some(t) = self.tm_tasks.get_mut(&(job, task.to_string())) else { return };
        if t.started {
            return;
        }
        t.started = true;
        let Some(rx) = t.rx.take() else { return };
        let reservation = t.reservation.take();
        let spec = t.spec.clone();
        let endpoint = t.endpoint;
        let net = self.net.clone();
        let jm = t.jm;
        let local_tm = self.addr;
        let registry = Arc::clone(&self.registry);
        let space = self.spaces.get_or_create(job);
        let server_name = self.name.clone();
        let rec = self.rec.clone();
        let c_started = self.c_tasks_started.clone();
        let c_completed = self.c_tasks_completed.clone();
        let c_failed = self.c_tasks_failed.clone();
        let handle = cn_sync::thread::Builder::new()
            .name(format!("task-{}-{}", job.0, spec.name))
            .spawn(move || {
                let mut instance = match registry.instantiate(&spec.jar, &spec.class) {
                    Ok(i) => i,
                    Err(e) => {
                        // Release capacity before reporting: a client that
                        // observes the failure may immediately inspect nodes.
                        drop(reservation);
                        c_failed.inc();
                        rec.event_with(Severity::Error, "task", Some(job.0), || {
                            format!("[{server_name}] could not instantiate {:?}: {e}", spec.name)
                        });
                        let _ = net.send(
                            endpoint,
                            jm,
                            NetMsg::TaskFailed {
                                job,
                                task: spec.name.clone(),
                                error: format!("[{server_name}] {e}"),
                            },
                        );
                        let _ = net.send(
                            endpoint,
                            local_tm,
                            NetMsg::TaskExited { job, task: spec.name.clone() },
                        );
                        net.unregister(endpoint);
                        return;
                    }
                };
                let _ =
                    net.send(endpoint, jm, NetMsg::TaskStarted { job, task: spec.name.clone() });
                c_started.inc();
                let span = rec.span_start_job(
                    "task",
                    &spec.name,
                    rec.job_span(job.0),
                    Some(job.0),
                    Some(&spec.name),
                );
                let mut ctx = TaskContext {
                    job,
                    name: spec.name.clone(),
                    params: spec.params.clone(),
                    net: net.clone(),
                    addr: endpoint,
                    rx,
                    directory,
                    space,
                    stash: Vec::new(),
                };
                let outcome = instance.run(&mut ctx);
                // The task span must close before TaskCompleted/TaskFailed is
                // sent: the JobManager forwards completion to the client, which
                // may immediately close the enclosing job span.
                rec.span_end(span);
                // Release the node reservation before TaskCompleted goes out:
                // the client unblocks on JobCompleted and may assert that all
                // slots/memory are free, so the release must happen first.
                drop(reservation);
                let msg = match outcome {
                    Ok(result) => {
                        c_completed.inc();
                        NetMsg::TaskCompleted { job, task: spec.name.clone(), result }
                    }
                    Err(e) => {
                        c_failed.inc();
                        rec.event_with(Severity::Error, "task", Some(job.0), || {
                            format!("[{server_name}] task {:?} failed: {}", spec.name, e.msg)
                        });
                        NetMsg::TaskFailed { job, task: spec.name.clone(), error: e.msg }
                    }
                };
                let _ = net.send(endpoint, jm, msg);
                let _ = net.send(
                    endpoint,
                    local_tm,
                    NetMsg::TaskExited { job, task: spec.name.clone() },
                );
                net.unregister(endpoint);
            })
            .expect("spawn task thread");
        self.task_threads.push(handle);
    }

    fn tm_cancel(&mut self, job: JobId, task: &str) {
        let key = (job, task.to_string());
        let Some(t) = self.tm_tasks.get(&key) else { return };
        if t.started {
            // Poke the task's queue; it sees Shutdown at its next recv. The
            // bookkeeping entry is dropped when the thread reports
            // TaskExited.
            let _ = self.net.send(self.addr, t.endpoint, NetMsg::Shutdown);
        } else {
            // Never started: release the reservation and the queue.
            let t = self.tm_tasks.remove(&key).expect("checked above");
            self.net.unregister(t.endpoint);
            drop(t); // reservation released here
        }
    }
}
