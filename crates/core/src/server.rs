//! The CNServer servant: one process per node hosting both a JobManager and
//! a TaskManager.
//!
//! "JobManager and the TaskManager are part of the same process, CNServer,
//! which is a servant (since it acts as a client and a server). The
//! JobManager can support multiple Jobs." (paper Section 3)
//!
//! Each server runs an event loop on its own thread, joined to the CN
//! discovery multicast group. The JobManager half answers solicitations,
//! manages job DAGs and relays task lifecycle messages to the client; the
//! TaskManager half bids for tasks, receives archive uploads, sets up
//! per-task message queues and runs each task in its own thread
//! (`RUN_AS_THREAD_IN_TM`).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_cluster::{Addr, Envelope, NodeHandle};
use cn_observe::{Counter, Gauge, Recorder, Severity};
use cn_sync::channel::Receiver;
use cn_sync::thread::JoinHandle;
use cn_wire::FabricHandle;

use crate::archive::ArchiveRegistry;
use crate::message::{Bid, JobId, NetMsg, TaskSpec, UserData, CLIENT_TASK_NAME};
use crate::pump::MsgPump;
use crate::scheduler::{
    select, select_load_aware, Ewma, FairQueue, LoadSignal, Policy, RoundRobin, StealConfig,
};
use crate::spaces::SpaceRegistry;
use crate::task::TaskContext;
use crate::tuplespace::Tuple;

/// Tunables for a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long the JobManager collects TaskManager bids before selecting.
    pub bid_window: Duration,
    /// How long the JobManager waits for an AssignAck from a remote TM.
    pub assign_timeout: Duration,
    /// Bid selection policy for task placement.
    pub policy: Policy,
    /// Maximum task threads running concurrently on this TaskManager.
    /// `None` keeps the historical behavior (every started task launches
    /// immediately); with a cap, started tasks beyond it wait in the run
    /// queue — the queue that feeds [`LoadSignal`] and the steal protocol.
    pub exec_slots: Option<usize>,
    /// Work-stealing shape; `None` disables stealing entirely (no
    /// `LoadReport` heartbeats, no raids), which also keeps the sim
    /// journal free of steal events.
    pub steal: Option<StealConfig>,
    /// Deficit-round-robin quantum (in task `memory_mb` cost units) for
    /// per-client fair admission of `CreateTask` bursts.
    pub fair_quantum_mb: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bid_window: Duration::from_millis(5),
            assign_timeout: Duration::from_secs(2),
            policy: Policy::LeastLoaded,
            exec_slots: None,
            steal: None,
            fair_quantum_mb: 1024,
        }
    }
}

/// Handle to a running CNServer.
pub struct CnServer {
    pub name: String,
    pub addr: Addr,
    net: FabricHandle<NetMsg>,
    thread: Option<JoinHandle<()>>,
}

impl CnServer {
    /// Spawn a server for `node`, joined to the discovery group. The
    /// fabric decides the deployment shape: the simulated network hosts a
    /// whole neighborhood in one process, a socket fabric puts this
    /// server on the wire (`cnctl serve`).
    pub fn spawn(
        name: impl Into<String>,
        node: NodeHandle,
        net: FabricHandle<NetMsg>,
        registry: Arc<ArchiveRegistry>,
        spaces: Arc<SpaceRegistry>,
        config: ServerConfig,
    ) -> CnServer {
        let name = name.into();
        let (addr, rx) = net.register();
        net.join_group(addr, cn_cluster::DISCOVERY_GROUP);
        let rec = net.recorder().clone();
        let fair_quantum = config.fair_quantum_mb;
        let state = ServerState {
            name: name.clone(),
            addr,
            pump: MsgPump::new(rx),
            node,
            registry,
            spaces,
            config,
            jm_jobs: HashMap::new(),
            tm_tasks: HashMap::new(),
            uploaded: HashSet::new(),
            rr: RoundRobin::new(),
            task_threads: Vec::new(),
            fairq: FairQueue::new(fair_quantum),
            draining: false,
            run_queue: VecDeque::new(),
            running: 0,
            dispatch_ewma: Ewma::default(),
            peer_loads: HashMap::new(),
            steal_pending: None,
            steal_endpoint: None,
            last_reported: None,
            last_report_at: None,
            c_jm_bids: rec.counter("server.jm_bids_sent"),
            c_tm_bids: rec.counter("server.tm_bids_sent"),
            c_task_solicits: rec.counter("server.task_solicitations"),
            c_tasks_started: rec.counter("server.tasks_started"),
            c_tasks_completed: rec.counter("server.tasks_completed"),
            c_tasks_failed: rec.counter("server.tasks_failed"),
            c_steals: rec.counter("server.steals"),
            c_steal_requests: rec.counter("server.steal_requests"),
            c_steal_returns: rec.counter("server.steal_returns"),
            g_queue_depth: rec.gauge("server.run_queue_depth"),
            g_inflight: rec.gauge("server.tasks_inflight"),
            rec,
            net: net.clone(),
        };
        let thread = cn_sync::thread::Builder::new()
            .name(format!("cnserver-{name}"))
            .spawn(move || state.run())
            .expect("spawn server thread");
        CnServer { name, addr, net, thread: Some(thread) }
    }

    /// Ask the server to stop and wait for its event loop to exit.
    pub fn shutdown(mut self) {
        let _ = self.net.send(self.addr, self.addr, NetMsg::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CnServer {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = self.net.send(self.addr, self.addr, NetMsg::Shutdown);
            let _ = t.join();
        }
    }
}

/// JobManager-side record of a job.
struct JmJob {
    client: Addr,
    specs: Vec<TaskSpec>,
    /// task name → (tm server addr, task endpoint, server name).
    assigned: HashMap<String, (Addr, Addr, String)>,
    completed: HashMap<String, UserData>,
    started: HashSet<String>,
    job_started: bool,
    failed: bool,
}

/// TaskManager-side record of an assigned task.
struct TmTask {
    spec: TaskSpec,
    /// The JobManager this task reports lifecycle events to.
    jm: Addr,
    endpoint: Addr,
    rx: Option<Receiver<Envelope<NetMsg>>>,
    reservation: Option<cn_cluster::node::Reservation>,
    /// `StartTask` received (dedup guard).
    started: bool,
    /// Task thread spawned. `started && !launched` means the task sits in
    /// the run queue waiting for an execution slot.
    launched: bool,
    /// Directory + client held while the task waits in the run queue.
    start_info: Option<(HashMap<String, Addr>, Addr)>,
    /// When the task entered the run queue (feeds the dispatch EWMA).
    enqueued_at: Option<Instant>,
    /// A `StealGrant` is outstanding: the reservation is released and the
    /// task is off the run queue until `TaskMigrated` commits the handoff
    /// or `StealReturn` bounces it back.
    migrated: bool,
    /// Thief side: the task's old endpoint at the victim, told to shut its
    /// forwarder down when the stolen task exits.
    stolen_from: Option<Addr>,
}

struct ServerState {
    name: String,
    addr: Addr,
    net: FabricHandle<NetMsg>,
    pump: MsgPump<NetMsg>,
    node: NodeHandle,
    registry: Arc<ArchiveRegistry>,
    spaces: Arc<SpaceRegistry>,
    config: ServerConfig,
    jm_jobs: HashMap<JobId, JmJob>,
    tm_tasks: HashMap<(JobId, String), TmTask>,
    /// Jars this TaskManager has received.
    uploaded: HashSet<String>,
    rr: RoundRobin,
    task_threads: Vec<JoinHandle<()>>,
    /// Per-client deficit-round-robin admission queue for `CreateTask`.
    fairq: FairQueue<(JobId, TaskSpec, Addr)>,
    /// Whether the fair-admission drain loop is already on the stack
    /// (placement recurses into `handle` via nested waits).
    draining: bool,
    /// Started-but-not-launched tasks waiting for an execution slot.
    run_queue: VecDeque<(JobId, String)>,
    /// Task threads currently executing (launched, not yet exited).
    running: usize,
    /// Enqueue→launch latency smoother; third component of [`LoadSignal`].
    dispatch_ewma: Ewma,
    /// Last load signal heard from each peer server (steal mode only).
    peer_loads: HashMap<Addr, (String, LoadSignal)>,
    /// Outstanding steal request: victim addr + when it was sent. Cleared
    /// by any `LoadReport` from the victim (the decline path) or by the
    /// grant; the timestamp is a staleness escape hatch.
    steal_pending: Option<(Addr, Instant)>,
    /// Pre-registered endpoint reused across steal requests.
    steal_endpoint: Option<(Addr, Receiver<Envelope<NetMsg>>)>,
    /// Throttle state for `LoadReport` multicasts.
    last_reported: Option<LoadSignal>,
    last_report_at: Option<Instant>,
    rec: Recorder,
    c_jm_bids: Counter,
    c_tm_bids: Counter,
    c_task_solicits: Counter,
    c_tasks_started: Counter,
    c_tasks_completed: Counter,
    c_tasks_failed: Counter,
    c_steals: Counter,
    c_steal_requests: Counter,
    c_steal_returns: Counter,
    g_queue_depth: Gauge,
    g_inflight: Gauge,
}

impl ServerState {
    fn run(mut self) {
        // `None` from the pump means the network is gone.
        while let Some(env) = self.pump.next() {
            if matches!(env.msg, NetMsg::Shutdown) {
                break;
            }
            self.handle(env);
        }
        // Task threads are detached on shutdown: they hold their own clones
        // of the network/registry and exit once their (timeout-bounded)
        // receives return. Joining here would block shutdown behind a task
        // stuck waiting for input that will never arrive.
        self.task_threads.clear();
        self.net.unregister(self.addr);
    }

    fn send(&self, to: Addr, msg: NetMsg) {
        let _ = self.net.send(self.addr, to, msg);
    }

    /// Nested receive: wait for an envelope matching `want`, stashing
    /// everything else for the main loop.
    fn wait_for(
        &mut self,
        deadline: Instant,
        want: impl FnMut(&NetMsg) -> bool,
    ) -> Option<Envelope<NetMsg>> {
        self.pump.wait_for(deadline, want)
    }

    fn handle(&mut self, env: Envelope<NetMsg>) {
        match env.msg {
            // ---- JobManager: discovery --------------------------------
            NetMsg::SolicitJobManager { job, requirements, reply_to } => {
                let willing = self.node.is_alive()
                    && self.node.free_memory_mb() >= requirements.min_free_memory_mb
                    && self.node.free_slots() >= requirements.min_free_slots;
                if willing {
                    self.c_jm_bids.inc();
                    self.send(reply_to, NetMsg::JobManagerBid { job, bid: self.own_bid() });
                }
            }

            // ---- JobManager: job lifecycle ----------------------------
            NetMsg::CreateJob { job, client, reply_to } => {
                let accepted = !self.jm_jobs.contains_key(&job);
                if accepted {
                    self.jm_jobs.insert(
                        job,
                        JmJob {
                            client,
                            specs: Vec::new(),
                            assigned: HashMap::new(),
                            completed: HashMap::new(),
                            started: HashSet::new(),
                            job_started: false,
                            failed: false,
                        },
                    );
                }
                self.send(
                    reply_to,
                    NetMsg::JobAck {
                        job,
                        accepted,
                        reason: if accepted { String::new() } else { "job already exists".into() },
                    },
                );
            }
            NetMsg::CreateTask { job, spec, reply_to } => {
                // Admission is deficit-round-robin over per-client queues:
                // a client flooding heavyweight tasks cannot starve one
                // submitting light ones. A lone client degenerates to FIFO,
                // so single-client placement order (and the journal) is
                // unchanged.
                let cost = spec.memory_mb;
                self.fairq.push(reply_to.0, cost, (job, spec, reply_to));
                self.drain_fair_queue();
            }
            NetMsg::StartJob { job } => self.jm_start_ready(job),
            NetMsg::CancelJob { job } => self.jm_cancel_job(job),

            // ---- TaskManager: placement -------------------------------
            NetMsg::SolicitTaskManager { job, task, memory_mb, reply_to }
                if self.node.can_host(memory_mb) =>
            {
                self.c_tm_bids.inc();
                self.send(reply_to, NetMsg::TaskManagerBid { job, task, bid: self.own_bid() });
            }
            NetMsg::UploadArchive { jar, .. } => self.tm_upload(&jar),
            NetMsg::AssignTask { job, spec, jm, reply_to } => {
                let task = spec.name.clone();
                match self.tm_assign(job, spec, jm) {
                    Ok(task_addr) => self.send(
                        reply_to,
                        NetMsg::AssignAck {
                            job,
                            task,
                            accepted: true,
                            reason: String::new(),
                            task_addr: Some(task_addr),
                        },
                    ),
                    Err(reason) => self.send(
                        reply_to,
                        NetMsg::AssignAck { job, task, accepted: false, reason, task_addr: None },
                    ),
                }
            }
            NetMsg::StartTask { job, task, directory, client } => {
                self.tm_start(job, &task, directory, client)
            }
            NetMsg::CancelTask { job, task } => self.tm_cancel(job, &task),
            NetMsg::TaskExited { job, task } => self.tm_task_exited(job, task),

            // ---- Load-aware scheduling & work stealing -----------------
            NetMsg::LoadReport { server, addr, signal } if addr != self.addr => {
                // A report from the pending victim doubles as the decline
                // signal: clear the outstanding request so the thief may
                // retry (possibly at a different victim).
                if self.steal_pending.is_some_and(|(v, _)| v == addr) {
                    self.steal_pending = None;
                }
                self.peer_loads.insert(addr, (server, signal));
                self.maybe_steal();
            }
            NetMsg::LoadReport { .. } => {}
            NetMsg::StealRequest { thief, reply_to, endpoint } => {
                self.tm_steal_request(thief, reply_to, endpoint)
            }
            NetMsg::StealGrant { job, spec, jm, client, directory, victim, old_endpoint } => self
                .tm_steal_grant(env.from, job, spec, jm, client, directory, victim, old_endpoint),
            NetMsg::StealReturn { job, task } => self.tm_steal_return(job, task),
            NetMsg::TaskMigrated { job, task, server, tm, task_addr } => {
                self.task_migrated(job, task, server, tm, task_addr)
            }

            // ---- Tuple seeding (wire mode) ----------------------------
            NetMsg::SeedTuple { job, tuple } => self.seed_tuple(job, tuple),

            // ---- JobManager: task lifecycle from TMs -------------------
            NetMsg::TaskStarted { job, task } => {
                if let Some(j) = self.jm_jobs.get(&job) {
                    let client = j.client;
                    self.send(client, NetMsg::TaskStarted { job, task });
                }
            }
            NetMsg::TaskCompleted { job, task, result } => {
                self.jm_task_completed(job, task, result)
            }
            NetMsg::TaskFailed { job, task, error } => self.jm_task_failed(job, task, error),

            // Not for the server: ignore.
            _ => {}
        }
    }

    /// Wire-mode tuple seeding: deposit into this process's replica of
    /// the job's space and, if we are the job's JobManager, relay to every
    /// distinct remote TaskManager assigned one of its tasks. Per-peer
    /// FIFO ordering on the socket fabric guarantees the relayed tuple
    /// lands before any later `StartTask` to the same TaskManager.
    fn seed_tuple(&mut self, job: JobId, tuple: Tuple) {
        self.spaces.get_or_create(job).out(tuple.clone());
        let Some(j) = self.jm_jobs.get(&job) else { return };
        let mut relayed: HashSet<Addr> = HashSet::new();
        let targets: Vec<Addr> = j
            .assigned
            .values()
            .map(|(tm, _, _)| *tm)
            .filter(|tm| *tm != self.addr && relayed.insert(*tm))
            .collect();
        for tm in targets {
            self.send(tm, NetMsg::SeedTuple { job, tuple: tuple.clone() });
        }
    }

    /// The live load vector this TaskManager advertises: run-queue depth,
    /// in-flight task threads, smoothed dispatch latency. Piggybacked on
    /// every bid and multicast in `LoadReport` heartbeats.
    fn load_signal(&self) -> LoadSignal {
        LoadSignal {
            queue_depth: self.run_queue.len() as u32,
            in_flight: self.running as u32,
            ewma_dispatch_us: self.dispatch_ewma.get(),
        }
    }

    fn own_bid(&self) -> Bid {
        Bid {
            server: self.name.clone(),
            addr: self.addr,
            load: self.node.load(),
            free_memory_mb: self.node.free_memory_mb(),
            free_slots: self.node.free_slots(),
            signal: self.load_signal(),
        }
    }

    // ---- JobManager internals ------------------------------------------

    /// Place one task: solicit TaskManagers (including our own, evaluated
    /// locally — JM and TM share this process), select per policy, upload
    /// the archive, assign.
    fn place_task(&mut self, job: JobId, spec: TaskSpec) -> Result<(Addr, Addr, String), String> {
        match self.jm_jobs.get(&job) {
            None => return Err(format!("no such job {job}")),
            Some(j) if j.assigned.contains_key(&spec.name) => {
                return Err(format!("task name {:?} already exists in {job}", spec.name))
            }
            Some(_) => {}
        }
        // Multicast solicitation (the paper's "JobManager solicits
        // TaskManager for the Tasks").
        self.c_task_solicits.inc();
        self.net.multicast(
            self.addr,
            cn_cluster::DISCOVERY_GROUP,
            NetMsg::SolicitTaskManager {
                job,
                task: spec.name.clone(),
                memory_mb: spec.memory_mb,
                reply_to: self.addr,
            },
        );
        let mut bids: Vec<Bid> = Vec::new();
        // Our own TM is evaluated locally (multicast excludes the sender).
        if self.node.can_host(spec.memory_mb) {
            bids.push(self.own_bid());
        }
        let deadline = Instant::now() + self.config.bid_window;
        while let Some(env) = self.pump.recv_deadline(deadline) {
            match env.msg {
                NetMsg::TaskManagerBid { job: bjob, task, bid }
                    if bjob == job && task == spec.name =>
                {
                    bids.push(bid)
                }
                _ => self.pump.stash(env),
            }
        }
        // Try bidders in policy order: a TaskManager may still reject (its
        // state can change between bid and assignment) or time out, in
        // which case the JobManager falls back to the next-best bidder.
        self.rec.event_with(Severity::Debug, "job", Some(job.0), || {
            format!("[{}] task {:?} drew {} TaskManager bid(s)", self.name, spec.name, bids.len())
        });
        let mut failures: Vec<String> = Vec::new();
        let mut remaining = bids;
        while !remaining.is_empty() {
            let chosen = match self.config.policy {
                Policy::RoundRobin => self.rr.select(&remaining).cloned(),
                // Load-aware shares the round-robin rotation state so a
                // uniformly loaded neighborhood places identically to
                // `RoundRobin` (the journal-differential property).
                Policy::LoadAware => select_load_aware(&mut self.rr, &remaining).cloned(),
                p => select(p, &remaining, 0).cloned(),
            }
            .expect("remaining is non-empty");
            remaining.retain(|b| b.addr != chosen.addr);
            match self.try_assign(job, &spec, &chosen) {
                Ok(task_addr) => return Ok((chosen.addr, task_addr, chosen.server)),
                Err(reason) => failures.push(format!("{}: {reason}", chosen.server)),
            }
        }
        if failures.is_empty() {
            Err(format!("no willing TaskManager for task {:?}", spec.name))
        } else {
            Err(format!(
                "every willing TaskManager failed for task {:?}: {}",
                spec.name,
                failures.join("; ")
            ))
        }
    }

    /// Attempt one assignment on a specific bidder.
    fn try_assign(&mut self, job: JobId, spec: &TaskSpec, chosen: &Bid) -> Result<Addr, String> {
        if chosen.addr == self.addr {
            // Local fast path: same process.
            self.tm_upload(&spec.jar);
            return self.tm_assign(job, spec.clone(), self.addr);
        }
        let size = self.registry.get(&spec.jar).map(|a| a.size_bytes).unwrap_or(0);
        self.send(chosen.addr, NetMsg::UploadArchive { jar: spec.jar.clone(), size_bytes: size });
        self.send(
            chosen.addr,
            NetMsg::AssignTask { job, spec: spec.clone(), jm: self.addr, reply_to: self.addr },
        );
        let deadline = Instant::now() + self.config.assign_timeout;
        let task_name = spec.name.clone();
        let tm_addr = chosen.addr;
        // Match on the sender too: a late ack from a previously timed-out
        // bidder must not be attributed to this attempt.
        let ack = self.wait_for(deadline, |m| {
            matches!(m, NetMsg::AssignAck { job: j, task, .. } if *j == job && *task == task_name)
        });
        let Some(ack) = ack else {
            // The TM may have accepted after we gave up; tell it to release
            // the assignment (best effort — idempotent on the TM side).
            self.rec.event_with(Severity::Warn, "job", Some(job.0), || {
                format!(
                    "[{}] AssignAck timeout from {} for {:?}",
                    self.name, chosen.server, spec.name
                )
            });
            self.send(tm_addr, NetMsg::CancelTask { job, task: task_name });
            return Err("AssignAck timeout".to_string());
        };
        if ack.from != tm_addr {
            // Stale ack from an earlier bidder: release whatever it set up
            // and report this attempt as failed.
            self.rec.event_with(Severity::Warn, "job", Some(job.0), || {
                format!("[{}] stale AssignAck from {} for {:?}", self.name, ack.from, spec.name)
            });
            self.send(ack.from, NetMsg::CancelTask { job, task: task_name });
            return Err(format!("stale AssignAck from {}", ack.from));
        }
        match ack.msg {
            NetMsg::AssignAck { accepted: true, task_addr: Some(addr), .. } => Ok(addr),
            NetMsg::AssignAck { reason, .. } => Err(format!("rejected: {reason}")),
            _ => unreachable!("wait_for filtered on AssignAck"),
        }
    }

    /// Start every not-yet-started task whose dependencies are complete.
    fn jm_start_ready(&mut self, job: JobId) {
        let Some(j) = self.jm_jobs.get_mut(&job) else { return };
        j.job_started = true;
        if j.failed {
            return;
        }
        if j.specs.is_empty() {
            // A job with no tasks is vacuously complete.
            let client = j.client;
            self.jm_jobs.remove(&job);
            self.send(client, NetMsg::JobCompleted { job, results: Vec::new() });
            return;
        }
        // Build the full directory once per call (client included).
        let mut directory: HashMap<String, Addr> =
            j.assigned.iter().map(|(name, (_, task_addr, _))| (name.clone(), *task_addr)).collect();
        directory.insert(CLIENT_TASK_NAME.to_string(), j.client);
        let client = j.client;
        let ready: Vec<(String, Addr)> = j
            .specs
            .iter()
            .filter(|s| {
                !j.started.contains(&s.name)
                    && !j.completed.contains_key(&s.name)
                    && s.depends.iter().all(|d| j.completed.contains_key(d))
            })
            .filter_map(|s| j.assigned.get(&s.name).map(|(tm, _, _)| (s.name.clone(), *tm)))
            .collect();
        for (task, _) in &ready {
            j.started.insert(task.clone());
        }
        for (task, tm_addr) in ready {
            if tm_addr == self.addr {
                self.tm_start(job, &task, directory.clone(), client);
            } else {
                self.send(
                    tm_addr,
                    NetMsg::StartTask { job, task, directory: directory.clone(), client },
                );
            }
        }
    }

    fn jm_task_completed(&mut self, job: JobId, task: String, result: UserData) {
        let Some(j) = self.jm_jobs.get_mut(&job) else { return };
        j.completed.insert(task.clone(), result.clone());
        let client = j.client;
        let all_done = j.completed.len() == j.specs.len();
        let results: Vec<(String, UserData)> = if all_done {
            j.specs
                .iter()
                .map(|s| {
                    (s.name.clone(), j.completed.get(&s.name).cloned().unwrap_or(UserData::Empty))
                })
                .collect()
        } else {
            Vec::new()
        };
        let job_started = j.job_started;
        self.send(client, NetMsg::TaskCompleted { job, task, result });
        if all_done {
            // The job is finished; drop its JobManager state (and, in wire
            // mode, its local tuple-space replica — client job ids restart
            // per process, so a stale space could leak into a later job).
            self.jm_jobs.remove(&job);
            if !self.net.shared_memory() {
                self.spaces.remove(job);
            }
            self.send(client, NetMsg::JobCompleted { job, results });
        } else if job_started {
            self.jm_start_ready(job);
        }
    }

    /// Client-requested cancellation: interrupt everything in flight and
    /// report the job as failed.
    fn jm_cancel_job(&mut self, job: JobId) {
        let Some(j) = self.jm_jobs.get_mut(&job) else { return };
        if j.failed {
            return;
        }
        j.failed = true;
        let client = j.client;
        self.rec.event_with(Severity::Warn, "job", Some(job.0), || {
            format!("[{}] job cancelled by client", self.name)
        });
        // Everything assigned and not yet complete is cancelled — including
        // tasks that never started (their reservations must be released).
        let to_cancel: Vec<(String, Addr)> = j
            .assigned
            .iter()
            .filter(|(t, _)| !j.completed.contains_key(*t))
            .map(|(t, (tm, _, _))| (t.clone(), *tm))
            .collect();
        for (t, tm_addr) in to_cancel {
            if tm_addr == self.addr {
                self.tm_cancel(job, &t);
            } else {
                self.send(tm_addr, NetMsg::CancelTask { job, task: t });
            }
        }
        self.jm_jobs.remove(&job);
        if !self.net.shared_memory() {
            self.spaces.remove(job);
        }
        self.send(client, NetMsg::JobFailed { job, error: "cancelled by client".to_string() });
    }

    fn jm_task_failed(&mut self, job: JobId, task: String, error: String) {
        let Some(j) = self.jm_jobs.get_mut(&job) else { return };
        let first_failure = !j.failed;
        j.failed = true;
        let client = j.client;
        self.rec.event_with(Severity::Error, "job", Some(job.0), || {
            format!("[{}] task {task:?} failed: {error}; cancelling the job", self.name)
        });
        // Cancel everything assigned and not complete — running tasks are
        // interrupted, never-started ones release their reservations.
        let to_cancel: Vec<(String, Addr)> = j
            .assigned
            .iter()
            .filter(|(t, _)| !j.completed.contains_key(*t) && **t != task)
            .map(|(t, (tm, _, _))| (t.clone(), *tm))
            .collect();
        for (t, tm_addr) in to_cancel {
            if tm_addr == self.addr {
                self.tm_cancel(job, &t);
            } else {
                self.send(tm_addr, NetMsg::CancelTask { job, task: t });
            }
        }
        self.send(client, NetMsg::TaskFailed { job, task: task.clone(), error: error.clone() });
        if first_failure {
            self.jm_jobs.remove(&job);
            if !self.net.shared_memory() {
                self.spaces.remove(job);
            }
            self.send(
                client,
                NetMsg::JobFailed { job, error: format!("task {task:?} failed: {error}") },
            );
        }
    }

    // ---- TaskManager internals ------------------------------------------

    fn tm_upload(&mut self, jar: &str) {
        self.uploaded.insert(jar.to_string());
    }

    /// Reserve resources and set up the task's message queue.
    fn tm_assign(&mut self, job: JobId, spec: TaskSpec, jm: Addr) -> Result<Addr, String> {
        if !self.uploaded.contains(&spec.jar) {
            return Err(format!("archive {:?} was not uploaded", spec.jar));
        }
        if !self.registry.contains(&spec.jar) {
            return Err(format!("archive {:?} not present in the registry", spec.jar));
        }
        let reservation = self.node.reserve(spec.memory_mb).map_err(|e| e.to_string())?;
        let (endpoint, rx) = self.net.register();
        let key = (job, spec.name.clone());
        self.tm_tasks.insert(
            key,
            TmTask {
                spec,
                jm,
                endpoint,
                rx: Some(rx),
                reservation: Some(reservation),
                started: false,
                launched: false,
                start_info: None,
                enqueued_at: None,
                migrated: false,
                stolen_from: None,
            },
        );
        Ok(endpoint)
    }

    /// Admit a started task: launch immediately while an execution slot is
    /// free, otherwise park it in the run queue (where it becomes steal
    /// bait). With `exec_slots: None` every task launches immediately —
    /// the historical behavior.
    fn tm_start(&mut self, job: JobId, task: &str, directory: HashMap<String, Addr>, client: Addr) {
        let key = (job, task.to_string());
        let Some(t) = self.tm_tasks.get_mut(&key) else { return };
        if t.started {
            return;
        }
        t.started = true;
        let cap = self.config.exec_slots.unwrap_or(usize::MAX);
        if self.running < cap {
            self.launch_task(job, task, directory, Instant::now());
        } else {
            t.start_info = Some((directory, client));
            t.enqueued_at = Some(Instant::now());
            self.run_queue.push_back(key);
            self.g_queue_depth.add(1);
            self.load_changed();
        }
    }

    /// Launch the next queued task(s) while execution slots are free.
    fn launch_next_queued(&mut self) {
        let cap = self.config.exec_slots.unwrap_or(usize::MAX);
        while self.running < cap {
            let Some((job, task)) = self.run_queue.pop_front() else { break };
            self.g_queue_depth.add(-1);
            let Some(t) = self.tm_tasks.get_mut(&(job, task.clone())) else { continue };
            let Some((directory, _client)) = t.start_info.take() else { continue };
            let since = t.enqueued_at.take().unwrap_or_else(Instant::now);
            self.launch_task(job, &task, directory, since);
        }
    }

    /// Run an assigned task on its own thread.
    fn launch_task(
        &mut self,
        job: JobId,
        task: &str,
        directory: HashMap<String, Addr>,
        queued_since: Instant,
    ) {
        let Some(t) = self.tm_tasks.get_mut(&(job, task.to_string())) else { return };
        if t.launched {
            return;
        }
        t.launched = true;
        let Some(rx) = t.rx.take() else { return };
        self.dispatch_ewma.observe(queued_since.elapsed().as_micros() as u64);
        self.running += 1;
        self.g_inflight.add(1);
        let t = self.tm_tasks.get_mut(&(job, task.to_string())).expect("present above");
        let reservation = t.reservation.take();
        let spec = t.spec.clone();
        let endpoint = t.endpoint;
        let net = self.net.clone();
        let jm = t.jm;
        let work_scale = self.node.work_scale();
        let local_tm = self.addr;
        let registry = Arc::clone(&self.registry);
        let space = self.spaces.get_or_create(job);
        let server_name = self.name.clone();
        let rec = self.rec.clone();
        let c_started = self.c_tasks_started.clone();
        let c_completed = self.c_tasks_completed.clone();
        let c_failed = self.c_tasks_failed.clone();
        let handle = cn_sync::thread::Builder::new()
            .name(format!("task-{}-{}", job.0, spec.name))
            .spawn(move || {
                let mut instance = match registry.instantiate(&spec.jar, &spec.class) {
                    Ok(i) => i,
                    Err(e) => {
                        // Release capacity before reporting: a client that
                        // observes the failure may immediately inspect nodes.
                        drop(reservation);
                        c_failed.inc();
                        rec.event_with(Severity::Error, "task", Some(job.0), || {
                            format!("[{server_name}] could not instantiate {:?}: {e}", spec.name)
                        });
                        let _ = net.send(
                            endpoint,
                            jm,
                            NetMsg::TaskFailed {
                                job,
                                task: spec.name.clone(),
                                error: format!("[{server_name}] {e}"),
                            },
                        );
                        let _ = net.send(
                            endpoint,
                            local_tm,
                            NetMsg::TaskExited { job, task: spec.name.clone() },
                        );
                        net.unregister(endpoint);
                        return;
                    }
                };
                let _ =
                    net.send(endpoint, jm, NetMsg::TaskStarted { job, task: spec.name.clone() });
                c_started.inc();
                let span = rec.span_start_job(
                    "task",
                    &spec.name,
                    rec.job_span(job.0),
                    Some(job.0),
                    Some(&spec.name),
                );
                let mut ctx = TaskContext {
                    job,
                    name: spec.name.clone(),
                    params: spec.params.clone(),
                    net: net.clone(),
                    addr: endpoint,
                    rx,
                    directory,
                    space,
                    stash: Vec::new(),
                    work_scale,
                };
                let outcome = instance.run(&mut ctx);
                // The task span must close before TaskCompleted/TaskFailed is
                // sent: the JobManager forwards completion to the client, which
                // may immediately close the enclosing job span.
                rec.span_end(span);
                // Release the node reservation before TaskCompleted goes out:
                // the client unblocks on JobCompleted and may assert that all
                // slots/memory are free, so the release must happen first.
                drop(reservation);
                let msg = match outcome {
                    Ok(result) => {
                        c_completed.inc();
                        NetMsg::TaskCompleted { job, task: spec.name.clone(), result }
                    }
                    Err(e) => {
                        c_failed.inc();
                        rec.event_with(Severity::Error, "task", Some(job.0), || {
                            format!("[{server_name}] task {:?} failed: {}", spec.name, e.msg)
                        });
                        NetMsg::TaskFailed { job, task: spec.name.clone(), error: e.msg }
                    }
                };
                let _ = net.send(endpoint, jm, msg);
                let _ = net.send(
                    endpoint,
                    local_tm,
                    NetMsg::TaskExited { job, task: spec.name.clone() },
                );
                net.unregister(endpoint);
            })
            .expect("spawn task thread");
        self.task_threads.push(handle);
    }

    fn tm_cancel(&mut self, job: JobId, task: &str) {
        let key = (job, task.to_string());
        let Some(t) = self.tm_tasks.get(&key) else { return };
        if t.launched {
            // Poke the task's queue; it sees Shutdown at its next recv. The
            // bookkeeping entry is dropped when the thread reports
            // TaskExited.
            let _ = self.net.send(self.addr, t.endpoint, NetMsg::Shutdown);
        } else {
            // Never launched: release the reservation and the queue (and
            // the run-queue slot, if it was parked waiting to execute).
            let t = self.tm_tasks.remove(&key).expect("checked above");
            if self.run_queue.contains(&key) {
                self.run_queue.retain(|k| *k != key);
                self.g_queue_depth.add(-1);
            }
            self.net.unregister(t.endpoint);
            drop(t); // reservation released here
            self.load_changed();
        }
    }

    /// A task thread finished (completed, failed, or was cancelled): free
    /// its slot, launch queued work, and — now that we may be idle — go
    /// raiding.
    fn tm_task_exited(&mut self, job: JobId, task: String) {
        if let Some(t) = self.tm_tasks.remove(&(job, task)) {
            if t.launched {
                self.running = self.running.saturating_sub(1);
                self.g_inflight.add(-1);
            }
            // Thief side of a migration: the victim keeps a forwarder
            // thread alive on the task's old endpoint; shut it down now
            // that nothing will ever answer there.
            if let Some(old_endpoint) = t.stolen_from {
                self.send(old_endpoint, NetMsg::Shutdown);
            }
        }
        // Wire mode: this process owns a private replica of the job's
        // tuple space; drop it once the last local task of the job is
        // gone. (On a shared-memory fabric the client's JobHandle owns
        // that cleanup — removing here would hand later tasks of the same
        // job a fresh empty space.)
        if !self.net.shared_memory() && !self.tm_tasks.keys().any(|(j, _)| *j == job) {
            self.spaces.remove(job);
        }
        self.launch_next_queued();
        self.load_changed();
        self.maybe_steal();
    }

    // ---- Fair admission -------------------------------------------------

    /// Serve queued `CreateTask`s in deficit-round-robin order. Before
    /// each pick, envelopes that already arrived (coalesced bursts from
    /// other clients, or stashed during the previous placement's bid
    /// window) are absorbed into the fair queue so every contender is
    /// visible to DRR — not just the first arrival.
    fn drain_fair_queue(&mut self) {
        if self.draining {
            // Placement nests into the pump, which can re-enter handle();
            // the outer drain loop will pick up whatever gets queued.
            return;
        }
        self.draining = true;
        loop {
            for env in self.pump.take_matching(|m| matches!(m, NetMsg::CreateTask { .. })) {
                if let NetMsg::CreateTask { job, spec, reply_to } = env.msg {
                    let cost = spec.memory_mb;
                    self.fairq.push(reply_to.0, cost, (job, spec, reply_to));
                }
            }
            let Some((job, spec, reply_to)) = self.fairq.pop() else { break };
            self.jm_create_task(job, spec, reply_to);
        }
        self.draining = false;
    }

    /// Place one admitted task and ack the client.
    fn jm_create_task(&mut self, job: JobId, spec: TaskSpec, reply_to: Addr) {
        match self.place_task(job, spec.clone()) {
            Ok((tm_addr, task_addr, server)) => {
                if let Some(j) = self.jm_jobs.get_mut(&job) {
                    j.specs.push(spec.clone());
                    j.assigned.insert(spec.name.clone(), (tm_addr, task_addr, server.clone()));
                }
                self.send(
                    reply_to,
                    NetMsg::TaskAck {
                        job,
                        task: spec.name,
                        accepted: true,
                        reason: String::new(),
                        server,
                        task_addr: Some(task_addr),
                    },
                );
            }
            Err(reason) => {
                self.send(
                    reply_to,
                    NetMsg::TaskAck {
                        job,
                        task: spec.name,
                        accepted: false,
                        reason,
                        server: String::new(),
                        task_addr: None,
                    },
                );
            }
        }
    }

    // ---- Work stealing --------------------------------------------------

    /// Multicast a `LoadReport` when the load signal changed, throttled to
    /// the configured heartbeat — except that the edge *into* stealable
    /// territory is always reported immediately so idle peers learn about
    /// new prey promptly. No-op unless stealing is enabled, which keeps
    /// non-stealing runs free of extra traffic.
    fn load_changed(&mut self) {
        let Some(steal) = self.config.steal else { return };
        let sig = self.load_signal();
        if self.last_reported == Some(sig) {
            return;
        }
        let now = Instant::now();
        let due = self.last_report_at.is_none_or(|at| now.duration_since(at) >= steal.heartbeat);
        let threshold = steal.threshold.max(1);
        let crossing = sig.queue_depth >= threshold
            && self.last_reported.is_none_or(|s| s.queue_depth < threshold);
        if !due && !crossing {
            return;
        }
        self.last_reported = Some(sig);
        self.last_report_at = Some(now);
        self.net.multicast(
            self.addr,
            cn_cluster::DISCOVERY_GROUP,
            NetMsg::LoadReport { server: self.name.clone(), addr: self.addr, signal: sig },
        );
    }

    /// Thief side: if we have a free execution slot and an empty run
    /// queue, raid the most-loaded peer whose last report meets the steal
    /// threshold. At most one request is in flight at a time; a
    /// `LoadReport` from the victim (decline) or a grant clears it, and a
    /// staleness timeout lets us re-arm if the victim vanished.
    fn maybe_steal(&mut self) {
        let Some(steal) = self.config.steal else { return };
        if !self.run_queue.is_empty() {
            return;
        }
        let cap = self.config.exec_slots.unwrap_or(usize::MAX);
        if self.running >= cap {
            return;
        }
        if let Some((_, since)) = self.steal_pending {
            if since.elapsed() < Duration::from_secs(1) {
                return;
            }
        }
        let threshold = steal.threshold.max(1);
        let victim = self
            .peer_loads
            .iter()
            .filter(|(addr, (_, sig))| **addr != self.addr && sig.queue_depth >= threshold)
            .max_by_key(|(addr, (_, sig))| (sig.queue_depth, std::cmp::Reverse(addr.0)))
            .map(|(addr, _)| *addr);
        let Some(victim) = victim else { return };
        let endpoint = match &self.steal_endpoint {
            Some((addr, _)) => *addr,
            None => {
                let (addr, rx) = self.net.register();
                self.steal_endpoint = Some((addr, rx));
                addr
            }
        };
        self.c_steal_requests.inc();
        self.steal_pending = Some((victim, Instant::now()));
        self.send(
            victim,
            NetMsg::StealRequest { thief: self.name.clone(), reply_to: self.addr, endpoint },
        );
    }

    /// Victim side: grant the newest queued never-launched task to the
    /// thief, or decline with a fresh `LoadReport`. Granting releases our
    /// reservation and marks the entry migrated; the entry stays until the
    /// thief commits (`TaskMigrated`) or bounces (`StealReturn`) — exactly
    /// one of which arrives, making the handoff at-most-once.
    fn tm_steal_request(&mut self, thief: String, reply_to: Addr, _thief_endpoint: Addr) {
        let threshold = self.config.steal.map_or(u32::MAX, |s| s.threshold.max(1));
        let grantable = (self.run_queue.len() as u32) >= threshold;
        let Some((job, task)) = (if grantable { self.run_queue.pop_back() } else { None }) else {
            // Decline: a unicast report refreshes the thief's view of us
            // and clears its pending-request latch.
            let report = NetMsg::LoadReport {
                server: self.name.clone(),
                addr: self.addr,
                signal: self.load_signal(),
            };
            self.send(reply_to, report);
            return;
        };
        self.g_queue_depth.add(-1);
        let key = (job, task.clone());
        let Some(t) = self.tm_tasks.get_mut(&key) else { return };
        let Some((directory, client)) = t.start_info.clone() else { return };
        t.migrated = true;
        t.enqueued_at = None;
        t.reservation = None; // free memory + slot for local work
        let grant = NetMsg::StealGrant {
            job,
            spec: t.spec.clone(),
            jm: t.jm,
            client,
            directory,
            victim: self.name.clone(),
            old_endpoint: t.endpoint,
        };
        self.rec.event_with(Severity::Info, "sched", Some(job.0), || {
            format!("[{}] granting steal of task {task:?} to {thief}", self.name)
        });
        self.send(reply_to, grant);
        self.load_changed();
    }

    /// Thief side: try to take ownership of a granted task. Success means
    /// reserving locally and announcing `TaskMigrated` to both the
    /// JobManager (placement table) and the victim (forwarding); any
    /// failure bounces the task back with `StealReturn`.
    #[allow(clippy::too_many_arguments)]
    fn tm_steal_grant(
        &mut self,
        victim_addr: Addr,
        job: JobId,
        spec: TaskSpec,
        jm: Addr,
        client: Addr,
        mut directory: HashMap<String, Addr>,
        victim: String,
        old_endpoint: Addr,
    ) {
        self.steal_pending = None;
        let task = spec.name.clone();
        if !self.registry.contains(&spec.jar) {
            self.c_steal_returns.inc();
            self.send(victim_addr, NetMsg::StealReturn { job, task });
            return;
        }
        let Ok(reservation) = self.node.reserve(spec.memory_mb) else {
            self.c_steal_returns.inc();
            self.send(victim_addr, NetMsg::StealReturn { job, task });
            return;
        };
        // Reuse the pre-registered steal endpoint as the task's new home;
        // the next raid will register a fresh one.
        let (endpoint, rx) = match self.steal_endpoint.take() {
            Some(pair) => pair,
            None => self.net.register(),
        };
        self.uploaded.insert(spec.jar.clone());
        // The task's own directory entry must point at its new home so
        // self-addressed sends do not loop through the forwarder.
        directory.insert(task.clone(), endpoint);
        self.tm_tasks.insert(
            (job, task.clone()),
            TmTask {
                spec,
                jm,
                endpoint,
                rx: Some(rx),
                reservation: Some(reservation),
                started: true,
                launched: false,
                start_info: Some((directory, client)),
                enqueued_at: Some(Instant::now()),
                migrated: false,
                stolen_from: Some(old_endpoint),
            },
        );
        let commit = NetMsg::TaskMigrated {
            job,
            task: task.clone(),
            server: self.name.clone(),
            tm: self.addr,
            task_addr: endpoint,
        };
        self.send(jm, commit.clone());
        if victim_addr != jm {
            self.send(victim_addr, commit);
        }
        self.c_steals.inc();
        self.rec.event_with(Severity::Info, "sched", Some(job.0), || {
            format!("[{}] stole task {task:?} from {victim}", self.name)
        });
        self.run_queue.push_back((job, task));
        self.g_queue_depth.add(1);
        self.launch_next_queued();
        self.load_changed();
    }

    /// Victim side: the thief could not take the task after all. Re-reserve
    /// and re-queue it; if even that fails now, the task fails loudly
    /// rather than vanishing.
    fn tm_steal_return(&mut self, job: JobId, task: String) {
        self.c_steal_returns.inc();
        let key = (job, task.clone());
        let Some(t) = self.tm_tasks.get_mut(&key) else { return };
        if !t.migrated {
            return;
        }
        match self.node.reserve(t.spec.memory_mb) {
            Ok(reservation) => {
                t.reservation = Some(reservation);
                t.migrated = false;
                t.enqueued_at = Some(Instant::now());
                self.run_queue.push_back(key);
                self.g_queue_depth.add(1);
                self.launch_next_queued();
                self.load_changed();
            }
            Err(e) => {
                let jm = t.jm;
                let endpoint = t.endpoint;
                self.tm_tasks.remove(&key);
                self.net.unregister(endpoint);
                self.c_tasks_failed.inc();
                self.send(
                    jm,
                    NetMsg::TaskFailed {
                        job,
                        task,
                        error: format!("steal return could not re-reserve: {e}"),
                    },
                );
            }
        }
    }

    /// `TaskMigrated` lands on two parties. As the task's JobManager we
    /// repoint the placement table so later `StartTask`/`CancelTask`/
    /// directory builds go to the thief. As the victim we hand the task's
    /// old endpoint to a forwarder thread so in-flight peer messages —
    /// sent against the stale directory — still reach the task at its new
    /// home (the Figure-3 journals stay canonical because every message
    /// arrives exactly once, just via one extra hop).
    fn task_migrated(
        &mut self,
        job: JobId,
        task: String,
        server: String,
        tm: Addr,
        task_addr: Addr,
    ) {
        if let Some(j) = self.jm_jobs.get_mut(&job) {
            if let Some(entry) = j.assigned.get_mut(&task) {
                *entry = (tm, task_addr, server);
            }
        }
        let key = (job, task);
        if self.tm_tasks.get(&key).is_some_and(|t| t.migrated) {
            let mut t = self.tm_tasks.remove(&key).expect("checked above");
            if let Some(rx) = t.rx.take() {
                self.spawn_forwarder(t.endpoint, rx, task_addr);
            } else {
                self.net.unregister(t.endpoint);
            }
        }
    }

    /// Drain a migrated-out task's old endpoint into its new home until
    /// the thief signals the task exited (`Shutdown`) or the fabric goes
    /// away.
    fn spawn_forwarder(&mut self, old: Addr, rx: Receiver<Envelope<NetMsg>>, target: Addr) {
        let net = self.net.clone();
        let handle = cn_sync::thread::Builder::new()
            .name(format!("steal-fwd-{}", old.0))
            .spawn(move || {
                loop {
                    match rx.recv_timeout(Duration::from_millis(200)) {
                        Ok(env) => {
                            if matches!(env.msg, NetMsg::Shutdown) {
                                break;
                            }
                            let _ = net.send(old, target, env.msg);
                        }
                        Err(cn_sync::channel::RecvTimeoutError::Timeout) => continue,
                        Err(_) => break,
                    }
                }
                net.unregister(old);
            })
            .expect("spawn forwarder thread");
        self.task_threads.push(handle);
    }
}
