//! The CN API — the client-side factory surface of the paper (Section 3):
//!
//! * Initialize CN API (using the factory) → [`CnApi::initialize`]
//! * Create Job in JobManager → [`CnApi::create_job`]
//! * Create Tasks for the Job → [`JobHandle::add_task`]
//! * Start the Tasks → [`JobHandle::start`]
//! * Get Messages from Tasks → [`JobHandle::recv_message`]
//! * Send Messages to Tasks → [`JobHandle::send_to_task`]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_cluster::{Addr, Envelope};
use cn_observe::{Counter, Histogram, Recorder, Severity, SpanId, LATENCY_BUCKETS_US};
use cn_sync::channel::Receiver;
use cn_wire::FabricHandle;

use crate::message::{
    Bid, CnMessage, JobId, JobRequirements, NetMsg, TaskSpec, UserData, CLIENT_TASK_NAME,
};
use crate::scheduler::{select, Policy};
use crate::spaces::SpaceRegistry;
use crate::tuplespace::{Tuple, TupleSpace};
use crate::Neighborhood;

/// Client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No JobManager bid within the window.
    NoJobManagers,
    /// The selected JobManager rejected the job.
    JobRejected(String),
    /// A task could not be placed.
    PlacementFailed { task: String, reason: String },
    /// A task (and therefore the job) failed.
    JobFailed(String),
    /// A protocol wait timed out.
    Timeout(&'static str),
    /// Transport-level failure.
    Net(String),
    /// API misuse (e.g. starting twice).
    Usage(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::NoJobManagers => write!(f, "no willing JobManager responded"),
            ClientError::JobRejected(r) => write!(f, "JobManager rejected the job: {r}"),
            ClientError::PlacementFailed { task, reason } => {
                write!(f, "could not place task {task:?}: {reason}")
            }
            ClientError::JobFailed(e) => write!(f, "job failed: {e}"),
            ClientError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            ClientError::Net(e) => write!(f, "network error: {e}"),
            ClientError::Usage(e) => write!(f, "API misuse: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long to collect JobManager bids.
    pub bid_window: Duration,
    /// How many times to re-multicast the solicitation when a bid window
    /// closes with no bids (willing managers can miss a window under
    /// load; discovery is cheap to retry).
    pub discovery_retries: u32,
    /// JobManager selection policy.
    pub policy: Policy,
    /// Timeout for individual acks (job create, task create).
    pub ack_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            bid_window: Duration::from_millis(5),
            discovery_retries: 3,
            policy: Policy::LeastLoaded,
            ack_timeout: Duration::from_secs(5),
        }
    }
}

/// Process-wide job id source: JobManagers key state by [`JobId`], and
/// several clients may talk to the same neighborhood.
static NEXT_JOB_ID: AtomicU64 = AtomicU64::new(1);

/// The CN API factory instance.
pub struct CnApi {
    net: FabricHandle<NetMsg>,
    spaces: Arc<SpaceRegistry>,
    config: ClientConfig,
    rec: Recorder,
    /// CN API call counters + the per-task dispatch latency histogram
    /// (CreateTask send → TaskAck), resolved once per factory.
    c_jobs: Counter,
    c_tasks: Counter,
    c_solicits: Counter,
    c_bids: Counter,
    dispatch: Histogram,
}

impl CnApi {
    /// Acquire a reference to the CN API for a deployed neighborhood ("The
    /// user is responsible, usually toward the beginning of the parallel
    /// program, to acquire a reference to the CN API").
    pub fn initialize(neighborhood: &Neighborhood) -> CnApi {
        CnApi::with_config(neighborhood, ClientConfig::default())
    }

    pub fn with_config(neighborhood: &Neighborhood, config: ClientConfig) -> CnApi {
        CnApi::over(neighborhood.network().clone().into(), neighborhood.spaces(), config)
    }

    /// Build a CN API directly over any transport fabric. This is the
    /// entry point for multi-process deployments: `cnctl submit` hands it
    /// a [`cn_wire::SocketFabric`] and a fresh client-local space
    /// registry, and the same protocol runs over real sockets.
    pub fn over(
        net: FabricHandle<NetMsg>,
        spaces: Arc<SpaceRegistry>,
        config: ClientConfig,
    ) -> CnApi {
        let rec = net.recorder().clone();
        CnApi {
            net,
            spaces,
            config,
            c_jobs: rec.counter("api.jobs_created"),
            c_tasks: rec.counter("api.tasks_created"),
            c_solicits: rec.counter("api.jm_solicitations"),
            c_bids: rec.counter("api.jm_bids_received"),
            dispatch: rec.histogram("api.dispatch_latency_us", LATENCY_BUCKETS_US),
            rec,
        }
    }

    /// The recorder this API (and its job handles) records into — the
    /// fabric's recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Create a job: multicast a solicitation, collect bids from willing
    /// JobManagers, select one per policy, and register the job with it.
    pub fn create_job(&self, requirements: &JobRequirements) -> Result<JobHandle, ClientError> {
        let job = JobId(NEXT_JOB_ID.fetch_add(1, Ordering::Relaxed));
        // The job span is the parent of every task span in this job. Its
        // name is the constant "job": per-run identity lives in the job
        // field, which exporters remap to a stable rank.
        let span = self.rec.span_start_job("job", "job", None, Some(job.0), None);
        let (addr, rx) = self.net.register();
        let mut bids: Vec<Bid> = Vec::new();
        for _attempt in 0..=self.config.discovery_retries {
            self.c_solicits.inc();
            self.net.multicast(
                addr,
                cn_cluster::DISCOVERY_GROUP,
                NetMsg::SolicitJobManager { job, requirements: *requirements, reply_to: addr },
            );
            let deadline = Instant::now() + self.config.bid_window;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                if let Ok(env) = rx.recv_timeout(remaining) {
                    if let NetMsg::JobManagerBid { job: bjob, bid } = env.msg {
                        if bjob == job && !bids.iter().any(|b| b.addr == bid.addr) {
                            self.c_bids.inc();
                            bids.push(bid);
                        }
                    }
                } else {
                    break;
                }
            }
            if !bids.is_empty() {
                break;
            }
        }
        let chosen = select(self.config.policy, &bids, 0).cloned().ok_or_else(|| {
            self.net.unregister(addr);
            self.rec.event_job(Severity::Warn, "job", job.0, "no willing JobManager responded");
            self.rec.span_end(span);
            ClientError::NoJobManagers
        })?;
        // Which server wins is timing-dependent, so it is flight-recorder
        // material, never span structure (DESIGN.md §8).
        self.rec.event_with(Severity::Info, "job", Some(job.0), || {
            format!("JobManager on {:?} selected from {} bid(s)", chosen.server, bids.len())
        });

        if let Err(e) = self.net.send(
            addr,
            chosen.addr,
            NetMsg::CreateJob { job, client: addr, reply_to: addr },
        ) {
            self.net.unregister(addr);
            self.rec.span_end(span);
            return Err(ClientError::Net(e.to_string()));
        }
        let mut handle = JobHandle {
            job,
            jm: chosen.addr,
            jm_server: chosen.server,
            net: self.net.clone(),
            addr,
            rx,
            directory: HashMap::new(),
            task_names: Vec::new(),
            placements: Vec::new(),
            started: false,
            space: self.spaces.get_or_create(job),
            spaces: Arc::clone(&self.spaces),
            stash: Vec::new(),
            shadow: HashMap::new(),
            ack_timeout: self.config.ack_timeout,
            rec: self.rec.clone(),
            span,
            c_tasks: self.c_tasks.clone(),
            c_msgs_to_tasks: self.rec.counter("api.msgs_to_tasks"),
            dispatch: self.dispatch.clone(),
        };
        // On any failure path the handle is dropped here, which unregisters
        // the endpoint and closes the job span (see `impl Drop for
        // JobHandle`).
        match handle.wait_net(
            handle.ack_timeout,
            |m| matches!(m, NetMsg::JobAck { job: j, .. } if *j == job),
        )? {
            NetMsg::JobAck { accepted: true, .. } => {
                self.c_jobs.inc();
                Ok(handle)
            }
            NetMsg::JobAck { reason, .. } => Err(ClientError::JobRejected(reason)),
            _ => unreachable!("filtered on JobAck"),
        }
    }
}

/// A client-held job: the conduit to its JobManager.
pub struct JobHandle {
    pub job: JobId,
    jm: Addr,
    /// Name of the server whose JobManager owns this job.
    pub jm_server: String,
    net: FabricHandle<NetMsg>,
    addr: Addr,
    rx: Receiver<Envelope<NetMsg>>,
    /// task name → task endpoint (learned from TaskAcks).
    directory: HashMap<String, Addr>,
    task_names: Vec<String>,
    /// task name → server that hosts it, in creation order (from
    /// TaskAcks). The scheduler differential tests compare these across
    /// placement policies.
    placements: Vec<(String, String)>,
    started: bool,
    space: Arc<TupleSpace>,
    spaces: Arc<SpaceRegistry>,
    /// Messages received while waiting for protocol acks.
    stash: Vec<CnMessage>,
    /// Wire mode only: client-side shadow spans for remote task
    /// executions, keyed by task name. On a shared-memory fabric the
    /// TaskManagers record task spans into the same recorder and no
    /// shadowing happens; over sockets the server processes have their own
    /// recorders, so the client reconstructs the task layer of the span
    /// forest from TaskStarted/TaskCompleted/TaskFailed lifecycle
    /// messages — keeping the exported forest identical across fabrics.
    shadow: HashMap<String, Option<SpanId>>,
    ack_timeout: Duration,
    rec: Recorder,
    /// The job span, closed on completion/failure/cancel (or in Drop).
    span: Option<SpanId>,
    c_tasks: Counter,
    c_msgs_to_tasks: Counter,
    dispatch: Histogram,
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        // Idempotent: wait()/cancel() have usually unregistered already.
        self.net.unregister(self.addr);
        self.spaces.remove(self.job);
        for (_, span) in self.shadow.drain() {
            self.rec.span_end(span);
        }
        self.rec.span_end(self.span.take());
    }
}

/// Outcome of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Task name → result, in task creation order.
    pub results: Vec<(String, UserData)>,
    /// Lifecycle + user messages observed while waiting.
    pub events: Vec<CnMessage>,
    pub elapsed: Duration,
}

impl JobReport {
    pub fn result(&self, task: &str) -> Option<&UserData> {
        self.results.iter().find(|(n, _)| n == task).map(|(_, d)| d)
    }
}

impl JobHandle {
    /// The job-wide tuple space (also reachable from every task context).
    pub fn tuplespace(&self) -> &Arc<TupleSpace> {
        &self.space
    }

    /// This job's trace span, if the neighborhood's recorder is enabled.
    /// Useful as a parent for client-side spans (e.g. input seeding).
    pub fn span(&self) -> Option<SpanId> {
        self.span
    }

    /// Names of the tasks created so far.
    pub fn task_names(&self) -> &[String] {
        &self.task_names
    }

    /// `(task, server)` placements in creation order, as acked by the
    /// JobManager.
    pub fn placements(&self) -> &[(String, String)] {
        &self.placements
    }

    /// Which server's JobManager manages this job.
    pub fn manager(&self) -> &str {
        &self.jm_server
    }

    fn decode(&mut self, env: Envelope<NetMsg>) -> Option<CnMessage> {
        let msg = match env.msg {
            NetMsg::User { from_task, tag, data, .. } => {
                Some(CnMessage::User { from_task, tag, data })
            }
            NetMsg::TaskStarted { task, .. } => Some(CnMessage::TaskStarted { task }),
            NetMsg::TaskCompleted { task, result, .. } => {
                Some(CnMessage::TaskCompleted { task, result })
            }
            NetMsg::TaskFailed { task, error, .. } => Some(CnMessage::TaskFailed { task, error }),
            NetMsg::JobCompleted { results, .. } => Some(CnMessage::JobCompleted { results }),
            NetMsg::JobFailed { error, .. } => Some(CnMessage::JobFailed { error }),
            _ => None,
        };
        if let Some(m) = &msg {
            self.observe_shadow(m);
        }
        msg
    }

    /// See the `shadow` field: over a non-shared-memory fabric the task
    /// layer of the span forest is reconstructed from lifecycle messages.
    fn observe_shadow(&mut self, m: &CnMessage) {
        if self.net.shared_memory() {
            return;
        }
        match m {
            CnMessage::TaskStarted { task } => {
                let span =
                    self.rec.span_start_job("task", task, self.span, Some(self.job.0), Some(task));
                self.shadow.insert(task.clone(), span);
            }
            CnMessage::TaskCompleted { task, .. } | CnMessage::TaskFailed { task, .. } => {
                if let Some(span) = self.shadow.remove(task) {
                    self.rec.span_end(span);
                }
            }
            _ => {}
        }
    }

    /// Wait for a protocol message matching `want`; user-visible messages
    /// that arrive meanwhile are stashed for [`JobHandle::recv_message`].
    fn wait_net(
        &mut self,
        timeout: Duration,
        mut want: impl FnMut(&NetMsg) -> bool,
    ) -> Result<NetMsg, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::Timeout("protocol ack"));
            }
            let received = self.rx.recv_timeout(remaining);
            match received {
                Ok(env) if want(&env.msg) => return Ok(env.msg),
                Ok(env) => {
                    if let Some(m) = self.decode(env) {
                        self.stash.push(m);
                    }
                }
                Err(_) => return Err(ClientError::Timeout("protocol ack")),
            }
        }
    }

    /// Create one task in the job. The JobManager places it on a willing
    /// TaskManager immediately; on success the task's message queue exists
    /// (but the task is not yet running).
    pub fn add_task(&mut self, spec: TaskSpec) -> Result<(), ClientError> {
        if self.started {
            return Err(ClientError::Usage("add_task after start"));
        }
        let name = spec.name.clone();
        let dispatch_start = Instant::now();
        self.net
            .send(
                self.addr,
                self.jm,
                NetMsg::CreateTask { job: self.job, spec, reply_to: self.addr },
            )
            .map_err(|e| ClientError::Net(e.to_string()))?;
        let job = self.job;
        let want_name = name.clone();
        let ack = self.wait_net(self.ack_timeout, |m| {
            matches!(m, NetMsg::TaskAck { job: j, task, .. } if *j == job && *task == want_name)
        })?;
        // Dispatch latency: CreateTask send → TaskAck, i.e. the full
        // solicit/bid/upload/assign round the JobManager ran on our behalf.
        self.dispatch.record(dispatch_start.elapsed().as_micros() as u64);
        match ack {
            NetMsg::TaskAck { accepted: true, task_addr: Some(addr), server, .. } => {
                self.c_tasks.inc();
                self.directory.insert(name.clone(), addr);
                self.placements.push((name.clone(), server));
                self.task_names.push(name);
                Ok(())
            }
            NetMsg::TaskAck { reason, .. } => {
                self.rec.event_with(Severity::Warn, "job", Some(job.0), || {
                    format!("placement failed for task {name:?}: {reason}")
                });
                Err(ClientError::PlacementFailed { task: name, reason })
            }
            _ => unreachable!("filtered on TaskAck"),
        }
    }

    /// Deposit a tuple into the job's tuple space ("seeding" the input
    /// before the job starts). On a shared-memory fabric this writes the
    /// space directly — exactly what clients did before this method
    /// existed. Over the wire it sends [`NetMsg::SeedTuple`] to the
    /// JobManager, which deposits it into its replica and relays it to
    /// every TaskManager assigned a task of this job, so tasks observe
    /// the same pre-start space contents in both deployments.
    pub fn seed_tuple(&self, tuple: Tuple) -> Result<(), ClientError> {
        if self.net.shared_memory() {
            self.space.out(tuple);
            return Ok(());
        }
        self.net
            .send(self.addr, self.jm, NetMsg::SeedTuple { job: self.job, tuple })
            .map_err(|e| ClientError::Net(e.to_string()))
    }

    /// Start the job: the JobManager launches dependency-free tasks now and
    /// each remaining task as its dependencies complete.
    pub fn start(&mut self) -> Result<(), ClientError> {
        if self.started {
            return Err(ClientError::Usage("job already started"));
        }
        self.started = true;
        self.net
            .send(self.addr, self.jm, NetMsg::StartJob { job: self.job })
            .map_err(|e| ClientError::Net(e.to_string()))
    }

    /// Send a user-defined message to a task.
    pub fn send_to_task(&self, task: &str, tag: &str, data: UserData) -> Result<(), ClientError> {
        let &to = self.directory.get(task).ok_or(ClientError::PlacementFailed {
            task: task.to_string(),
            reason: "unknown task".to_string(),
        })?;
        self.c_msgs_to_tasks.inc();
        self.net
            .send(
                self.addr,
                to,
                NetMsg::User {
                    job: self.job,
                    from_task: CLIENT_TASK_NAME.to_string(),
                    tag: tag.to_string(),
                    data,
                },
            )
            .map_err(|e| ClientError::Net(e.to_string()))
    }

    /// Receive the next message from CN (lifecycle or user-defined).
    pub fn recv_message(&mut self, timeout: Duration) -> Result<CnMessage, ClientError> {
        if !self.stash.is_empty() {
            return Ok(self.stash.remove(0));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::Timeout("message"));
            }
            let received = self.rx.recv_timeout(remaining);
            match received {
                Ok(env) => {
                    if let Some(m) = self.decode(env) {
                        // One wakeup absorbs a whole coalesced batch: stash
                        // everything that already arrived behind this one.
                        while let Ok(extra) = self.rx.try_recv() {
                            if let Some(m) = self.decode(extra) {
                                self.stash.push(m);
                            }
                        }
                        return Ok(m);
                    }
                }
                Err(_) => return Err(ClientError::Timeout("message")),
            }
        }
    }

    /// Cancel the job: every running task is interrupted (it observes
    /// [`crate::RecvError::Shutdown`] at its next receive) and the
    /// JobManager reports the job as failed. Consumes the handle.
    pub fn cancel(mut self, timeout: Duration) -> Result<(), ClientError> {
        self.net
            .send(self.addr, self.jm, NetMsg::CancelJob { job: self.job })
            .map_err(|e| ClientError::Net(e.to_string()))?;
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::Timeout("cancellation ack"));
            }
            match self.recv_message(remaining)? {
                CnMessage::JobFailed { .. } => {
                    self.spaces.remove(self.job);
                    self.net.unregister(self.addr);
                    self.rec.event_job(Severity::Warn, "job", self.job.0, "cancelled by client");
                    self.rec.span_end(self.span.take());
                    return Ok(());
                }
                CnMessage::JobCompleted { .. } => {
                    // The job finished before the cancel arrived.
                    self.spaces.remove(self.job);
                    self.net.unregister(self.addr);
                    self.rec.span_end(self.span.take());
                    return Ok(());
                }
                _ => {}
            }
        }
    }

    /// Drive the job to completion, collecting results.
    pub fn wait(mut self, timeout: Duration) -> Result<JobReport, ClientError> {
        let start = Instant::now();
        let mut events = Vec::new();
        loop {
            let remaining = timeout.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                return Err(ClientError::Timeout("job completion"));
            }
            match self.recv_message(remaining)? {
                CnMessage::JobCompleted { results } => {
                    self.spaces.remove(self.job);
                    self.net.unregister(self.addr);
                    self.rec.span_end(self.span.take());
                    return Ok(JobReport { results, events, elapsed: start.elapsed() });
                }
                CnMessage::JobFailed { error } => {
                    self.spaces.remove(self.job);
                    self.net.unregister(self.addr);
                    self.rec.event_with(Severity::Error, "job", Some(self.job.0), || {
                        format!("job failed: {error}")
                    });
                    self.rec.span_end(self.span.take());
                    return Err(ClientError::JobFailed(error));
                }
                other => events.push(other),
            }
        }
    }
}
