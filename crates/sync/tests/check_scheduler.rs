//! Exercises the controlled scheduler against small hand-built scenarios:
//! each detector (deadlock, double-lock, lost notification, schedule-
//! dependent assertion) must fire, counterexamples must replay, and clean
//! scenarios must come back clean.
#![cfg(feature = "check")]

use std::sync::Arc;

use cn_sync::check::{explore, ExploreOpts, Strategy};
use cn_sync::model::HazardKind;
use cn_sync::{channel, thread, Condvar, Mutex};

fn pct(scenario: &str, seed: u64, schedules: u32) -> ExploreOpts {
    ExploreOpts::new(scenario, Strategy::Pct { seed, schedules })
}

/// Two tasks acquiring two locks in opposite orders: the classic cycle.
fn opposite_order_scenario() {
    let a = Arc::new(Mutex::named("test.a", 0u32));
    let b = Arc::new(Mutex::named("test.b", 0u32));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t = thread::spawn(move || {
        let _ga = a2.lock();
        let _gb = b2.lock();
    });
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }
    let _ = t.join();
}

#[test]
fn pct_finds_opposite_order_deadlock() {
    let report = explore(pct("opposite-order", 7, 64), opposite_order_scenario);
    assert!(
        report.hazards.iter().any(|h| h.kind == HazardKind::Deadlock),
        "expected deadlock, got {:?}",
        report.hazards
    );
    let cx = report.counterexample.as_ref().expect("counterexample recorded");
    assert!(!cx.trace.is_empty());
    // The lock-order graph must expose the a<->b cycle.
    let cycles = report.lock_graph.cycles();
    assert!(
        cycles
            .iter()
            .any(|c| c.contains(&"test.a".to_string()) && c.contains(&"test.b".to_string())),
        "expected lock cycle in {:?}",
        cycles
    );
}

#[test]
fn dfs_finds_opposite_order_deadlock() {
    let report = explore(
        ExploreOpts::new(
            "opposite-order-dfs",
            Strategy::Dfs { max_preemptions: 2, max_schedules: 2000 },
        ),
        opposite_order_scenario,
    );
    assert!(report.hazards.iter().any(|h| h.kind == HazardKind::Deadlock));
}

#[test]
fn counterexample_replays_to_same_trace() {
    let report = explore(pct("opposite-order", 7, 64), opposite_order_scenario);
    let cx = report.counterexample.expect("counterexample");
    let replayed = explore(
        ExploreOpts::new("opposite-order", Strategy::Replay { schedule: cx.schedule.clone() }),
        opposite_order_scenario,
    );
    let rcx = replayed.counterexample.expect("replay reproduces the hazard");
    assert_eq!(cx.trace_jsonl(), rcx.trace_jsonl(), "replay must yield identical trace bytes");
}

#[test]
fn double_lock_detected() {
    let report = explore(pct("double-lock", 1, 8), || {
        let m = Mutex::named("test.dl", 0u32);
        let _g1 = m.lock();
        let _g2 = m.lock();
    });
    assert!(report.hazards.iter().any(|h| h.kind == HazardKind::DoubleLock));
}

/// Flag flip without a notify: the waiter can only make progress via the
/// timeout escape hatch, which `fail_on_timeout_escape` turns into a hazard.
#[test]
fn missing_notify_reported_as_lost_notify() {
    let mut opts = pct("missing-notify", 3, 16);
    opts.fail_on_timeout_escape = true;
    let report = explore(opts, || {
        let pair = Arc::new((Mutex::named("test.flag", false), Condvar::named("test.cv")));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                let _ = cv.wait_for(&mut ready, std::time::Duration::from_millis(50));
            }
        });
        *pair.0.lock() = true; // bug: no notify_one()
        let _ = t.join();
    });
    assert!(
        report.hazards.iter().any(|h| h.kind == HazardKind::LostNotify),
        "expected lost-notify, got {:?}",
        report.hazards
    );
}

/// Same shape with the notify present: must be clean on every schedule,
/// with no timeout escapes needed.
#[test]
fn correct_notify_is_clean() {
    let mut opts = pct("correct-notify", 3, 32);
    opts.fail_on_timeout_escape = true;
    let report = explore(opts, || {
        let pair = Arc::new((Mutex::named("test.flag", false), Condvar::named("test.cv")));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let mut g = pair.0.lock();
            *g = true;
            pair.1.notify_one();
        }
        let _ = t.join();
    });
    assert!(!report.failed(), "clean scenario flagged: {:?}", report.hazards);
    assert_eq!(report.timeout_escapes, 0);
}

/// A schedule-dependent assertion: consumer asserts it sees "first" before
/// "second", producer order is racy. PCT must find the bad interleaving.
#[test]
fn schedule_dependent_assertion_caught() {
    let report = explore(pct("racy-assert", 11, 64), || {
        let (tx, rx) = channel::unbounded_named("test.chan");
        let tx2 = tx.clone();
        let t1 = thread::spawn(move || {
            tx.send("first").unwrap();
        });
        let t2 = thread::spawn(move || {
            tx2.send("second").unwrap();
        });
        let a = rx.recv().unwrap();
        assert_eq!(a, "first", "consumer assumed producer order");
        let _ = t1.join();
        let _ = t2.join();
    });
    assert!(
        report.hazards.iter().any(|h| h.kind == HazardKind::AssertionFailed),
        "expected assertion hazard, got {:?}",
        report.hazards
    );
}

/// Channels with a single producer are deterministic: clean everywhere.
#[test]
fn channel_pipeline_is_clean() {
    let report = explore(pct("chan-pipeline", 5, 32), || {
        let (tx, rx) = channel::unbounded_named("test.pipe");
        let t = thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv().unwrap());
        }
        assert_eq!(got, vec![0, 1, 2]);
        let _ = t.join();
    });
    assert!(!report.failed(), "clean pipeline flagged: {:?}", report.hazards);
    assert!(report.schedules >= 32);
}

/// Receiver sees Disconnected (not a hang) once all senders are dropped.
#[test]
fn sender_drop_disconnects() {
    let report = explore(pct("chan-disconnect", 9, 16), || {
        let (tx, rx) = channel::unbounded_named("test.disc");
        let t = thread::spawn(move || {
            tx.send(1).unwrap();
            // tx dropped here
        });
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
        let _ = t.join();
    });
    assert!(!report.failed(), "disconnect scenario flagged: {:?}", report.hazards);
}

/// Condvar-wait-while-holding-another-lock is surfaced as analysis data.
#[test]
fn cv_wait_while_holding_recorded() {
    let report = explore(pct("cv-holding", 2, 8), || {
        let outer = Arc::new(Mutex::named("test.outer", ()));
        let pair = Arc::new((Mutex::named("test.inner", true), Condvar::named("test.cv2")));
        let _o = outer.lock();
        let (m, cv) = &*pair;
        let mut g = m.lock();
        if !*g {
            cv.wait(&mut g);
        } else {
            // Take the timed path so the scenario terminates while still
            // recording the hazard pattern.
            let _ = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
        }
    });
    assert!(
        report.cv_wait_holding.iter().any(|(cv, held)| cv == "test.cv2" && held == "test.outer"),
        "expected cv-wait-while-holding record, got {:?}",
        report.cv_wait_holding
    );
}

/// The same seed must produce the same report (schedules, steps, trace).
#[test]
fn exploration_is_deterministic_per_seed() {
    let r1 = explore(pct("opposite-order", 42, 64), opposite_order_scenario);
    let r2 = explore(pct("opposite-order", 42, 64), opposite_order_scenario);
    assert_eq!(r1.schedules, r2.schedules);
    assert_eq!(r1.failed(), r2.failed());
    match (&r1.counterexample, &r2.counterexample) {
        (Some(a), Some(b)) => {
            assert_eq!(a.schedule, b.schedule);
            assert_eq!(a.trace_jsonl(), b.trace_jsonl());
        }
        (None, None) => {}
        _ => panic!("determinism violated: one run found a counterexample, the other did not"),
    }
}

/// RwLock writer/reader interplay stays clean and contributes to the graph.
#[test]
fn rwlock_clean_and_graphed() {
    use cn_sync::RwLock;
    let report = explore(pct("rw", 4, 16), || {
        let l = Arc::new(RwLock::named("test.rw", 0u64));
        let l2 = Arc::clone(&l);
        let t = thread::spawn(move || {
            *l2.write() += 1;
        });
        let _v = *l.read();
        let _ = t.join();
    });
    assert!(!report.failed(), "rw scenario flagged: {:?}", report.hazards);
    assert!(
        report.lock_graph.nodes().iter().any(|n| n == "test.rw")
            || report.lock_graph.nodes().is_empty()
    );
}
