//! Model-run vocabulary: the types a model-check run produces.
//!
//! Always compiled — with or without the `check` feature — so downstream
//! crates (`cn-check`, `cn-analysis`, `cnctl`) can name schedule traces,
//! hazards, and lock-order graphs unconditionally. Everything here renders
//! deterministically: no addresses, no wall-clock timestamps, canonical
//! orderings throughout, so the same seed always yields the same bytes.

use std::collections::BTreeSet;
use std::fmt;

/// One scheduler-visible operation in a schedule trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    TaskStart,
    TaskEnd,
    Spawn,
    Join,
    LockAcquire,
    LockRelease,
    ReadAcquire,
    ReadRelease,
    CvWait,
    CvNotifyOne,
    CvNotifyAll,
    ChanSend,
    ChanRecv,
    ChanDisconnect,
    TimeoutEscape,
}

impl Op {
    pub fn as_str(self) -> &'static str {
        match self {
            Op::TaskStart => "task-start",
            Op::TaskEnd => "task-end",
            Op::Spawn => "spawn",
            Op::Join => "join",
            Op::LockAcquire => "lock-acquire",
            Op::LockRelease => "lock-release",
            Op::ReadAcquire => "read-acquire",
            Op::ReadRelease => "read-release",
            Op::CvWait => "cv-wait",
            Op::CvNotifyOne => "cv-notify-one",
            Op::CvNotifyAll => "cv-notify-all",
            Op::ChanSend => "chan-send",
            Op::ChanRecv => "chan-recv",
            Op::ChanDisconnect => "chan-disconnect",
            Op::TimeoutEscape => "timeout-escape",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One entry in a schedule trace: task `task` performed `op` on `subject`
/// (a lock/condvar/channel name) at scheduler step `step`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub step: u64,
    pub task: u32,
    pub op: Op,
    pub subject: String,
}

impl Event {
    /// One deterministic JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"step\":{},\"task\":{},\"op\":\"{}\",\"subject\":\"{}\"}}",
            self.step,
            self.task,
            self.op,
            json_escape(&self.subject)
        )
    }
}

/// What kind of concurrency defect a model run surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HazardKind {
    /// Every live task is blocked and no timed wait can fire.
    Deadlock,
    /// A task acquired a non-reentrant lock it already holds.
    DoubleLock,
    /// The merged lock-order graph contains a cycle.
    LockOrderCycle,
    /// A condvar wait was entered while holding an unrelated lock.
    CondvarWhileHolding,
    /// A blocked timed wait had to be force-fired to make progress — a
    /// wakeup the code should have delivered never arrived.
    LostNotify,
    /// Scenario code panicked (an assertion observed a broken invariant)
    /// under some interleaving.
    AssertionFailed,
    /// The schedule exceeded the step budget — a livelock or an unbounded
    /// retry loop.
    StepLimit,
}

impl HazardKind {
    pub fn as_str(self) -> &'static str {
        match self {
            HazardKind::Deadlock => "deadlock",
            HazardKind::DoubleLock => "double-lock",
            HazardKind::LockOrderCycle => "lock-order-cycle",
            HazardKind::CondvarWhileHolding => "condvar-while-holding",
            HazardKind::LostNotify => "lost-notify",
            HazardKind::AssertionFailed => "assertion-failed",
            HazardKind::StepLimit => "step-limit",
        }
    }
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A concurrency defect, with the subjects (lock/task names) involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    pub kind: HazardKind,
    pub message: String,
    pub subjects: Vec<String>,
}

impl Hazard {
    pub fn new(kind: HazardKind, message: impl Into<String>) -> Hazard {
        Hazard { kind, message: message.into(), subjects: Vec::new() }
    }

    pub fn with_subjects(mut self, subjects: impl IntoIterator<Item = String>) -> Hazard {
        self.subjects.extend(subjects);
        self
    }
}

/// A replayable witness for a hazard: the seed and explicit schedule that
/// produced it, plus the full event trace of the failing schedule.
///
/// `schedule` lists, for every scheduling decision that had more than one
/// runnable task, the index chosen within the ascending-id runnable set.
/// Replaying those choices (strategy `Replay`) reproduces the trace
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counterexample {
    pub seed: u64,
    pub schedule: Vec<u32>,
    pub trace: Vec<Event>,
}

impl Counterexample {
    /// The trace as deterministic JSONL (one event object per line).
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.trace {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// The schedule as a compact comma-separated string (`"0,1,1,0"`).
    pub fn schedule_string(&self) -> String {
        let items: Vec<String> = self.schedule.iter().map(|c| c.to_string()).collect();
        items.join(",")
    }
}

/// The runtime's lock-order graph: a node per lock *name class*, an edge
/// `a -> b` whenever some task acquired `b` while holding `a`.
///
/// Canonical by construction — nodes are sorted and deduplicated, edges are
/// sorted index pairs — so two graphs built from the same edge set in any
/// order compare equal and render identically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LockOrderGraph {
    nodes: Vec<String>,
    edges: Vec<(usize, usize)>,
}

impl LockOrderGraph {
    /// Build the canonical graph from `(held, acquired)` name pairs.
    pub fn from_edges<I>(edges: I) -> LockOrderGraph
    where
        I: IntoIterator<Item = (String, String)>,
    {
        let edge_set: BTreeSet<(String, String)> = edges.into_iter().collect();
        let mut nodes: BTreeSet<String> = BTreeSet::new();
        for (a, b) in &edge_set {
            nodes.insert(a.clone());
            nodes.insert(b.clone());
        }
        let nodes: Vec<String> = nodes.into_iter().collect();
        let index = |name: &str| nodes.binary_search_by(|n| n.as_str().cmp(name)).unwrap();
        let edges: Vec<(usize, usize)> =
            edge_set.iter().map(|(a, b)| (index(a), index(b))).collect();
        LockOrderGraph { nodes, edges }
    }

    /// Union of two canonical graphs, itself canonical.
    pub fn merge(&self, other: &LockOrderGraph) -> LockOrderGraph {
        LockOrderGraph::from_edges(
            self.edges_named()
                .into_iter()
                .chain(other.edges_named())
                .map(|(a, b)| (a.to_string(), b.to_string())),
        )
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    pub fn edges_named(&self) -> Vec<(&str, &str)> {
        self.edges.iter().map(|&(a, b)| (self.nodes[a].as_str(), self.nodes[b].as_str())).collect()
    }

    /// Strongly connected components with more than one node, plus
    /// self-loops — i.e. the lock-order cycles. Each cycle's nodes are
    /// sorted and the cycle list itself is sorted, so output is stable.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let n = self.nodes.len();
        let mut fwd = vec![Vec::new(); n];
        let mut rev = vec![Vec::new(); n];
        let mut self_loop = vec![false; n];
        for &(a, b) in &self.edges {
            if a == b {
                self_loop[a] = true;
            } else {
                fwd[a].push(b);
                rev[b].push(a);
            }
        }
        // Kosaraju: order by forward-DFS finish time, then reverse-DFS.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            // Iterative DFS recording finish order.
            let mut stack = vec![(start, 0usize)];
            seen[start] = true;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < fwd[v].len() {
                    let w = fwd[v][*i];
                    *i += 1;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = ncomp;
            while let Some(v) = stack.pop() {
                for &w in &rev[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = ncomp;
                        stack.push(w);
                    }
                }
            }
            ncomp += 1;
        }
        let mut groups: Vec<Vec<String>> = vec![Vec::new(); ncomp];
        for v in 0..n {
            groups[comp[v]].push(self.nodes[v].clone());
        }
        let mut cycles: Vec<Vec<String>> = groups
            .into_iter()
            .enumerate()
            .filter_map(|(c, mut g)| {
                let cyclic = g.len() > 1
                    || (g.len() == 1 && {
                        let v = (0..n).find(|&v| comp[v] == c).unwrap();
                        self_loop[v]
                    });
                if cyclic {
                    g.sort();
                    Some(g)
                } else {
                    None
                }
            })
            .collect();
        cycles.sort();
        cycles
    }
}

/// Everything a model run (one scenario, one strategy) produced.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Scenario name (as registered with the explorer).
    pub scenario: String,
    /// Number of schedules executed.
    pub schedules: u64,
    /// Total scheduler steps across all schedules.
    pub steps: u64,
    /// Defects found. Empty means the scenario survived exploration.
    pub hazards: Vec<Hazard>,
    /// Lock-order graph merged over every schedule run.
    pub lock_graph: LockOrderGraph,
    /// Timed waits that had to be force-fired to escape global quiescence.
    /// Non-zero in a scenario that expects none indicates a lost wakeup.
    pub timeout_escapes: u64,
    /// `(condvar, other held lock)` pairs observed at wait time: the task
    /// entered a condvar wait while still holding an unrelated lock.
    pub cv_wait_holding: Vec<(String, String)>,
    /// Replayable witness for the first hazard that aborted exploration.
    pub counterexample: Option<Counterexample>,
}

impl RunReport {
    pub fn failed(&self) -> bool {
        !self.hazards.is_empty()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_is_deterministic() {
        let e = Event { step: 3, task: 1, op: Op::LockAcquire, subject: "wire.conns".into() };
        assert_eq!(
            e.to_json(),
            "{\"step\":3,\"task\":1,\"op\":\"lock-acquire\",\"subject\":\"wire.conns\"}"
        );
    }

    #[test]
    fn lock_graph_is_order_insensitive() {
        let a = LockOrderGraph::from_edges(vec![
            ("a".to_string(), "b".to_string()),
            ("b".to_string(), "c".to_string()),
        ]);
        let b = LockOrderGraph::from_edges(vec![
            ("b".to_string(), "c".to_string()),
            ("a".to_string(), "b".to_string()),
            ("a".to_string(), "b".to_string()),
        ]);
        assert_eq!(a, b);
        assert!(a.cycles().is_empty());
    }

    #[test]
    fn lock_graph_finds_cycles() {
        let g = LockOrderGraph::from_edges(vec![
            ("a".to_string(), "b".to_string()),
            ("b".to_string(), "a".to_string()),
            ("c".to_string(), "c".to_string()),
            ("d".to_string(), "e".to_string()),
        ]);
        assert_eq!(g.cycles(), vec![vec!["a".to_string(), "b".to_string()], vec!["c".to_string()]]);
    }

    #[test]
    fn merge_unions_edges() {
        let a = LockOrderGraph::from_edges(vec![("a".to_string(), "b".to_string())]);
        let b = LockOrderGraph::from_edges(vec![("b".to_string(), "a".to_string())]);
        let m = a.merge(&b);
        assert_eq!(m.cycles(), vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn counterexample_renders_jsonl() {
        let cex = Counterexample {
            seed: 7,
            schedule: vec![0, 1, 1],
            trace: vec![Event { step: 1, task: 0, op: Op::Spawn, subject: "task-1".into() }],
        };
        assert_eq!(cex.schedule_string(), "0,1,1");
        assert!(cex.trace_jsonl().ends_with("}\n"));
        assert_eq!(cex.trace_jsonl(), cex.trace_jsonl());
    }
}
