//! The controlled scheduler behind the `check` feature.
//!
//! A model run serializes the program onto one *running* task at a time:
//! every instrumented operation (lock, unlock, condvar wait/notify, channel
//! send/receive, spawn, join) is a schedule point where the scheduler may
//! switch tasks. Tasks are real OS threads parked on a turnstile; memory
//! ordering between consecutive running tasks is provided by the scheduler
//! mutex itself, so scenario state needs no extra synchronization.
//!
//! Blocking is *modeled*: a task that would block (contended lock, empty
//! channel, condvar wait) parks in the scheduler, never in the real
//! primitive, which is how deadlocks become observable — when every live
//! task is blocked and no timed wait can fire, the run aborts with a
//! [`HazardKind::Deadlock`] and a replayable counterexample. Timed waits
//! only fire on global quiescence (a "timeout escape"), so a schedule that
//! needs one to make progress has lost a wakeup.
//!
//! Exploration strategies: seeded PCT-style randomized priorities
//! ([`Strategy::Pct`]), bounded-preemption exhaustive DFS
//! ([`Strategy::Dfs`]), and explicit-schedule replay ([`Strategy::Replay`])
//! for reproducing counterexamples.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard, Once};

use crate::model::{Counterexample, Event, Hazard, HazardKind, LockOrderGraph, Op, RunReport};

// ---------------------------------------------------------------------------
// Public exploration API
// ---------------------------------------------------------------------------

/// How to pick the next task at each scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// PCT-style randomized priority schedules: each schedule assigns
    /// random priorities to tasks from a per-schedule seed and demotes the
    /// highest-priority runnable task at a few random change points.
    Pct { seed: u64, schedules: u32 },
    /// Exhaustive stateless DFS over scheduling choices, bounded by the
    /// number of preemptions (switches away from a runnable task) per
    /// schedule and a total schedule budget.
    Dfs { max_preemptions: u32, max_schedules: u32 },
    /// Replay an explicit choice list (a counterexample schedule).
    Replay { schedule: Vec<u32> },
}

/// Options for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Scenario name, copied into the [`RunReport`].
    pub scenario: String,
    pub strategy: Strategy,
    /// Per-schedule step budget; exceeding it records
    /// [`HazardKind::StepLimit`] (livelock guard).
    pub max_steps: u64,
    /// Treat any timeout escape as [`HazardKind::LostNotify`] and abort.
    /// Set for scenarios whose wakeups must never rely on a timed wait.
    pub fail_on_timeout_escape: bool,
}

impl ExploreOpts {
    pub fn new(scenario: impl Into<String>, strategy: Strategy) -> ExploreOpts {
        ExploreOpts {
            scenario: scenario.into(),
            strategy,
            max_steps: 20_000,
            fail_on_timeout_escape: false,
        }
    }
}

/// Run `f` under the controlled scheduler, exploring interleavings per the
/// strategy. `f` is invoked once per schedule as model task 0 and may spawn
/// further tasks through the facade. Returns the merged report; exploration
/// stops at the first hazard, whose witness is in `counterexample`.
pub fn explore<F>(opts: ExploreOpts, f: F) -> RunReport
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut report = RunReport { scenario: opts.scenario.clone(), ..RunReport::default() };
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    let mut cv_hold: BTreeSet<(String, String)> = BTreeSet::new();

    let mut finish = |report: &mut RunReport, out: RunOutcome, seed: u64| -> bool {
        report.schedules += 1;
        report.steps += out.steps;
        report.timeout_escapes += out.timeout_escapes;
        edges.extend(out.lock_edges);
        cv_hold.extend(out.cv_hold);
        if out.hazards.is_empty() {
            return false;
        }
        report.hazards = out.hazards;
        report.counterexample =
            Some(Counterexample { seed, schedule: out.choices, trace: out.trace });
        true
    };

    match opts.strategy.clone() {
        Strategy::Pct { seed, schedules } => {
            let mut est_len = 0u64;
            for i in 0..schedules {
                let sseed = mix_seed(seed, i as u64);
                let out = run_one(
                    Arc::clone(&f),
                    StratState::new_pct(sseed, est_len),
                    opts.max_steps,
                    opts.fail_on_timeout_escape,
                );
                est_len = est_len.max(out.steps);
                if finish(&mut report, out, sseed) {
                    break;
                }
            }
        }
        Strategy::Dfs { max_preemptions, max_schedules } => {
            let mut strat = StratState::new_dfs(max_preemptions);
            loop {
                let out =
                    run_one(Arc::clone(&f), strat, opts.max_steps, opts.fail_on_timeout_escape);
                strat = out.strat.clone();
                if finish(&mut report, out, 0) {
                    break;
                }
                if report.schedules >= max_schedules as u64 || !strat.dfs_advance() {
                    break;
                }
            }
        }
        Strategy::Replay { schedule } => {
            let out = run_one(
                Arc::clone(&f),
                StratState::Replay { schedule, cursor: 0 },
                opts.max_steps,
                opts.fail_on_timeout_escape,
            );
            finish(&mut report, out, 0);
        }
    }

    report.lock_graph = LockOrderGraph::from_edges(edges);
    report.cv_wait_holding = cv_hold.into_iter().collect();
    report
}

fn mix_seed(seed: u64, i: u64) -> u64 {
    let mut r = Rng(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    r.next()
}

// ---------------------------------------------------------------------------
// Strategy state
// ---------------------------------------------------------------------------

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct DfsChoice {
    ord: u32,
    options: u32,
}

#[derive(Clone)]
enum StratState {
    Pct { rng_state: u64, priorities: Vec<i64>, change_points: Vec<u64>, next_low: i64 },
    Dfs { stack: Vec<DfsChoice>, cursor: usize, preemptions: u32, max_preemptions: u32 },
    Replay { schedule: Vec<u32>, cursor: usize },
}

impl StratState {
    /// `est_len` is the estimated schedule length (max steps observed in
    /// earlier schedules of this exploration); change points are drawn
    /// uniformly from it so demotions actually land inside the run.
    fn new_pct(seed: u64, est_len: u64) -> StratState {
        let mut rng = Rng(seed);
        let span = est_len.max(8);
        let change_points = (0..3).map(|_| rng.next() % span + 1).collect();
        StratState::Pct {
            rng_state: rng.0,
            priorities: Vec::new(),
            change_points,
            next_low: 1 << 31,
        }
    }

    fn new_dfs(max_preemptions: u32) -> StratState {
        StratState::Dfs { stack: Vec::new(), cursor: 0, preemptions: 0, max_preemptions }
    }

    /// Advance the DFS odometer to the next unexplored schedule. Returns
    /// false when the bounded space is exhausted.
    fn dfs_advance(&mut self) -> bool {
        let StratState::Dfs { stack, cursor, preemptions, .. } = self else {
            return false;
        };
        *cursor = 0;
        *preemptions = 0;
        while let Some(top) = stack.last_mut() {
            top.ord += 1;
            if top.ord < top.options {
                return true;
            }
            stack.pop();
        }
        false
    }

    fn on_task_registered(&mut self) {
        if let StratState::Pct { rng_state, priorities, .. } = self {
            let mut rng = Rng(*rng_state);
            let p = (rng.next() % (1 << 32)) as i64 + (1i64 << 32);
            *rng_state = rng.0;
            priorities.push(p);
        }
    }

    /// Pick an index into the ascending-id runnable set.
    fn pick(&mut self, steps: u64, prev_active: Option<u32>, runnable: &[u32]) -> usize {
        match self {
            StratState::Pct { rng_state, priorities, change_points, next_low } => {
                if change_points.contains(&steps) {
                    let mut rng = Rng(*rng_state);
                    let _ = rng.next();
                    *rng_state = rng.0;
                    let demote = runnable
                        .iter()
                        .copied()
                        .max_by_key(|&t| priorities[t as usize])
                        .expect("non-empty runnable");
                    priorities[demote as usize] = *next_low;
                    *next_low -= 1;
                }
                let mut best = 0usize;
                for (i, &t) in runnable.iter().enumerate() {
                    if priorities[t as usize] > priorities[runnable[best] as usize] {
                        best = i;
                    }
                }
                best
            }
            StratState::Dfs { stack, cursor, preemptions, max_preemptions } => {
                let default_idx =
                    prev_active.and_then(|p| runnable.iter().position(|&t| t == p)).unwrap_or(0);
                let forced = *preemptions >= *max_preemptions;
                let options = if forced { 1 } else { runnable.len() as u32 };
                let ord = if *cursor < stack.len() {
                    stack[*cursor].ord
                } else {
                    stack.push(DfsChoice { ord: 0, options });
                    0
                };
                *cursor += 1;
                let idx = if ord == 0 {
                    default_idx
                } else {
                    // ord-th non-default index, ascending.
                    (0..runnable.len())
                        .filter(|&i| i != default_idx)
                        .nth(ord as usize - 1)
                        .unwrap_or(default_idx)
                };
                if idx != default_idx {
                    *preemptions += 1;
                }
                idx
            }
            StratState::Replay { schedule, cursor } => {
                let idx = schedule.get(*cursor).copied().unwrap_or(0) as usize;
                *cursor += 1;
                idx.min(runnable.len() - 1)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum BlockedOn {
    Lock { addr: usize, name: String, read: bool },
    Cv { cv_addr: usize, name: String, timed: bool },
    Chan { id: u64, name: String, timed: bool },
    Join { task: u32 },
}

impl BlockedOn {
    fn timed(&self) -> bool {
        match self {
            BlockedOn::Cv { timed, .. } | BlockedOn::Chan { timed, .. } => *timed,
            _ => false,
        }
    }

    fn describe(&self) -> String {
        match self {
            BlockedOn::Lock { name, read: false, .. } => format!("lock {name}"),
            BlockedOn::Lock { name, read: true, .. } => format!("read {name}"),
            BlockedOn::Cv { name, .. } => format!("condvar {name}"),
            BlockedOn::Chan { name, .. } => format!("channel {name}"),
            BlockedOn::Join { task } => format!("join task-{task}"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TaskState {
    Runnable,
    Running,
    Blocked(BlockedOn),
    Finished,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Held {
    addr: usize,
    name: String,
    read: bool,
}

struct TaskInfo {
    state: TaskState,
    held: Vec<Held>,
    wake_timed_out: bool,
}

impl TaskInfo {
    fn new() -> TaskInfo {
        TaskInfo { state: TaskState::Runnable, held: Vec::new(), wake_timed_out: false }
    }
}

struct LockState {
    name: String,
    writer: Option<u32>,
    readers: Vec<u32>,
}

struct ChanState {
    name: String,
    len: usize,
    senders: usize,
}

struct Sched {
    tasks: Vec<TaskInfo>,
    active: Option<u32>,
    prev_active: Option<u32>,
    locks: HashMap<usize, LockState>,
    anon_locks: u32,
    chans: HashMap<u64, ChanState>,
    next_chan: u64,
    trace: Vec<Event>,
    choices: Vec<u32>,
    steps: u64,
    max_steps: u64,
    strat: StratState,
    hazards: Vec<Hazard>,
    lock_edges: BTreeSet<(String, String)>,
    cv_hold: BTreeSet<(String, String)>,
    timeout_escapes: u64,
    fail_on_escape: bool,
    aborted: bool,
    spawned: u32,
    exited: u32,
}

/// Payload used to unwind tasks when a run aborts; never reported.
pub(crate) struct ModelAbort;

pub(crate) enum RecvMode {
    Try,
    Block,
    Timed,
}

pub(crate) enum RecvOutcome {
    Data,
    Empty,
    Disconnected,
    TimedOut,
}

pub(crate) struct Controller {
    st: StdMutex<Sched>,
    cv: StdCondvar,
    pub(crate) token: u64,
}

static MODEL_RUNS: AtomicUsize = AtomicUsize::new(0);
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<Handle>> = const { RefCell::new(None) };
}

/// The calling thread's model identity, if it is a task in an active run.
#[derive(Clone)]
pub(crate) struct Handle {
    pub(crate) ctrl: Arc<Controller>,
    pub(crate) task: u32,
}

pub(crate) fn cur() -> Option<Handle> {
    if MODEL_RUNS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

fn abort_unwind() -> ! {
    panic::panic_any(ModelAbort)
}

/// Keep expected per-schedule unwinds (aborts, assertion probes) out of
/// stderr; panics on non-model threads go to the previous hook untouched.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let model_thread =
                MODEL_RUNS.load(Ordering::Relaxed) > 0 && CURRENT.with(|c| c.borrow().is_some());
            if !model_thread {
                prev(info);
            }
        }));
    });
}

type Guard<'a> = StdGuard<'a, Sched>;

impl Controller {
    fn new(strat: StratState, max_steps: u64, fail_on_escape: bool) -> Controller {
        Controller {
            st: StdMutex::new(Sched {
                tasks: Vec::new(),
                active: None,
                prev_active: None,
                locks: HashMap::new(),
                anon_locks: 0,
                chans: HashMap::new(),
                next_chan: 1,
                trace: Vec::new(),
                choices: Vec::new(),
                steps: 0,
                max_steps,
                strat,
                hazards: Vec::new(),
                lock_edges: BTreeSet::new(),
                cv_hold: BTreeSet::new(),
                timeout_escapes: 0,
                fail_on_escape,
                aborted: false,
                spawned: 0,
                exited: 0,
            }),
            cv: StdCondvar::new(),
            token: NEXT_TOKEN.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn lock_st(&self) -> Guard<'_> {
        self.st.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn register_task(&self, g: &mut Sched) -> u32 {
        let id = g.tasks.len() as u32;
        g.tasks.push(TaskInfo::new());
        g.strat.on_task_registered();
        g.spawned += 1;
        id
    }

    // -- turnstile -----------------------------------------------------

    fn wait_active<'a>(&'a self, me: u32, mut g: Guard<'a>) -> Guard<'a> {
        loop {
            if g.aborted {
                // A task that is already unwinding may reach a schedule
                // point from a destructor (e.g. a runtime Drop that
                // notifies a condvar on the way out). Re-raising there
                // would be a panic inside drop glue during unwind, which
                // aborts the process — let the task proceed unscheduled
                // instead; the model is dead once `aborted` is set.
                if std::thread::panicking() {
                    return g;
                }
                drop(g);
                abort_unwind();
            }
            if g.active == Some(me) {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Schedule point: current task stays runnable, scheduler decides.
    fn yield_slot<'a>(&'a self, me: u32, mut g: Guard<'a>) -> Guard<'a> {
        if g.aborted {
            if std::thread::panicking() {
                return g; // see wait_active: never unwind out of a Drop
            }
            drop(g);
            abort_unwind();
        }
        self.pick_next(&mut g);
        self.cv.notify_all();
        self.wait_active(me, g)
    }

    fn block_and_wait<'a>(&'a self, me: u32, reason: BlockedOn, mut g: Guard<'a>) -> Guard<'a> {
        g.tasks[me as usize].state = TaskState::Blocked(reason);
        self.pick_next(&mut g);
        self.cv.notify_all();
        self.wait_active(me, g)
    }

    fn pick_next(&self, g: &mut Sched) {
        if g.aborted {
            return;
        }
        g.steps += 1;
        if g.steps > g.max_steps {
            let max = g.max_steps;
            g.hazards.push(Hazard::new(
                HazardKind::StepLimit,
                format!("schedule exceeded the {max}-step budget (livelock or unbounded retry)"),
            ));
            g.aborted = true;
            return;
        }
        if let Some(a) = g.active {
            if g.tasks[a as usize].state == TaskState::Running {
                g.tasks[a as usize].state = TaskState::Runnable;
            }
        }
        g.active = None;
        loop {
            let runnable: Vec<u32> = g
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state == TaskState::Runnable)
                .map(|(i, _)| i as u32)
                .collect();
            if !runnable.is_empty() {
                let idx = if runnable.len() == 1 {
                    0
                } else {
                    let steps = g.steps;
                    let prev = g.prev_active;
                    let idx = g.strat.pick(steps, prev, &runnable);
                    g.choices.push(idx as u32);
                    idx
                };
                let t = runnable[idx];
                g.tasks[t as usize].state = TaskState::Running;
                g.active = Some(t);
                g.prev_active = Some(t);
                return;
            }
            if g.tasks.iter().all(|t| t.state == TaskState::Finished) {
                return;
            }
            // Global quiescence: fire the earliest timed wait, or report
            // a deadlock.
            let escape = g.tasks.iter().position(|t| match &t.state {
                TaskState::Blocked(b) => b.timed(),
                _ => false,
            });
            match escape {
                Some(t) if !g.fail_on_escape => {
                    let subject = match &g.tasks[t].state {
                        TaskState::Blocked(b) => b.describe(),
                        _ => unreachable!(),
                    };
                    g.timeout_escapes += 1;
                    let step = g.steps;
                    g.trace.push(Event {
                        step,
                        task: t as u32,
                        op: Op::TimeoutEscape,
                        subject: subject.clone(),
                    });
                    g.tasks[t].wake_timed_out = true;
                    g.tasks[t].state = TaskState::Runnable;
                    continue;
                }
                Some(t) => {
                    let subject = match &g.tasks[t].state {
                        TaskState::Blocked(b) => b.describe(),
                        _ => unreachable!(),
                    };
                    g.hazards.push(
                        Hazard::new(
                            HazardKind::LostNotify,
                            format!(
                                "task {t} had to be woken by a forced timeout on {subject}: \
                                 the wakeup that should have arrived never did"
                            ),
                        )
                        .with_subjects([subject]),
                    );
                    g.aborted = true;
                    return;
                }
                None => {
                    let mut parts = Vec::new();
                    let mut subjects = Vec::new();
                    for (i, t) in g.tasks.iter().enumerate() {
                        if let TaskState::Blocked(b) = &t.state {
                            parts.push(format!("task {i} blocked on {}", b.describe()));
                            subjects.push(b.describe());
                        }
                    }
                    g.hazards.push(
                        Hazard::new(
                            HazardKind::Deadlock,
                            format!("deadlock: {}", parts.join("; ")),
                        )
                        .with_subjects(subjects),
                    );
                    g.aborted = true;
                    return;
                }
            }
        }
    }

    // -- locks ---------------------------------------------------------

    fn ensure_lock(&self, g: &mut Sched, addr: usize, name: Option<&'static str>) {
        if !g.locks.contains_key(&addr) {
            let name = match name {
                Some(n) => n.to_string(),
                None => {
                    g.anon_locks += 1;
                    format!("lock#{}", g.anon_locks)
                }
            };
            g.locks.insert(addr, LockState { name, writer: None, readers: Vec::new() });
        }
    }

    pub(crate) fn op_lock(&self, me: u32, addr: usize, name: Option<&'static str>, read: bool) {
        let g = self.lock_st();
        let mut g = self.yield_slot(me, g);
        self.ensure_lock(&mut g, addr, name);
        let lname = g.locks[&addr].name.clone();
        let conflict =
            g.tasks[me as usize].held.iter().any(|h| h.addr == addr && !(read && h.read));
        if conflict {
            g.hazards.push(
                Hazard::new(
                    HazardKind::DoubleLock,
                    format!("task {me} re-acquired non-reentrant lock {lname} it already holds"),
                )
                .with_subjects([lname]),
            );
            g.aborted = true;
            self.cv.notify_all();
            drop(g);
            abort_unwind();
        }
        let g = self.acquire_loop(me, addr, read, g);
        drop(g);
    }

    fn acquire_loop<'a>(&'a self, me: u32, addr: usize, read: bool, mut g: Guard<'a>) -> Guard<'a> {
        loop {
            let free = {
                let ls = &g.locks[&addr];
                if read {
                    ls.writer.is_none()
                } else {
                    ls.writer.is_none() && ls.readers.is_empty()
                }
            };
            if free {
                let lname = g.locks[&addr].name.clone();
                let new_edges: Vec<(String, String)> = g.tasks[me as usize]
                    .held
                    .iter()
                    .filter(|h| h.name != lname)
                    .map(|h| (h.name.clone(), lname.clone()))
                    .collect();
                let ls = g.locks.get_mut(&addr).unwrap();
                if read {
                    ls.readers.push(me);
                } else {
                    ls.writer = Some(me);
                }
                g.tasks[me as usize].held.push(Held { addr, name: lname.clone(), read });
                // Acquisitions by tasks unwinding past an abort are
                // destructor traffic, not schedule behaviour — keep them
                // out of the graph and the trace.
                if !g.aborted {
                    g.lock_edges.extend(new_edges);
                    let step = g.steps;
                    g.trace.push(Event {
                        step,
                        task: me,
                        op: if read { Op::ReadAcquire } else { Op::LockAcquire },
                        subject: lname,
                    });
                }
                return g;
            }
            let lname = g.locks[&addr].name.clone();
            g = self.block_and_wait(me, BlockedOn::Lock { addr, name: lname, read }, g);
        }
    }

    pub(crate) fn op_unlock(&self, me: u32, addr: usize, read: bool) {
        let mut g = self.lock_st();
        if g.aborted || std::thread::panicking() {
            self.release_inner(&mut g, me, addr, read, false);
            self.cv.notify_all();
            return;
        }
        self.release_inner(&mut g, me, addr, read, true);
        let g = self.yield_slot(me, g);
        drop(g);
    }

    fn release_inner(&self, g: &mut Sched, me: u32, addr: usize, read: bool, record: bool) {
        if let Some(pos) =
            g.tasks[me as usize].held.iter().rposition(|h| h.addr == addr && h.read == read)
        {
            g.tasks[me as usize].held.remove(pos);
        }
        let lname = match g.locks.get_mut(&addr) {
            Some(ls) => {
                if read {
                    ls.readers.retain(|&t| t != me);
                } else if ls.writer == Some(me) {
                    ls.writer = None;
                }
                ls.name.clone()
            }
            None => return,
        };
        for t in g.tasks.iter_mut() {
            if matches!(&t.state, TaskState::Blocked(BlockedOn::Lock { addr: a, .. }) if *a == addr)
            {
                t.state = TaskState::Runnable;
            }
        }
        if record {
            let step = g.steps;
            g.trace.push(Event {
                step,
                task: me,
                op: if read { Op::ReadRelease } else { Op::LockRelease },
                subject: lname,
            });
        }
    }

    // -- condition variables --------------------------------------------

    pub(crate) fn op_cv_wait(
        &self,
        me: u32,
        cv_addr: usize,
        cv_name: &'static str,
        lock_addr: usize,
        timed: bool,
    ) -> bool {
        let g = self.lock_st();
        let mut g = self.yield_slot(me, g);
        if !g.aborted {
            let others: Vec<String> = g.tasks[me as usize]
                .held
                .iter()
                .filter(|h| h.addr != lock_addr)
                .map(|h| h.name.clone())
                .collect();
            for o in others {
                g.cv_hold.insert((cv_name.to_string(), o));
            }
        }
        self.release_inner(&mut g, me, lock_addr, false, false);
        if !g.aborted {
            let step = g.steps;
            g.trace.push(Event { step, task: me, op: Op::CvWait, subject: cv_name.to_string() });
        }
        g.tasks[me as usize].wake_timed_out = false;
        g = self.block_and_wait(me, BlockedOn::Cv { cv_addr, name: cv_name.to_string(), timed }, g);
        let timed_out = g.tasks[me as usize].wake_timed_out;
        let g = self.acquire_loop(me, lock_addr, false, g);
        drop(g);
        timed_out
    }

    pub(crate) fn op_cv_notify(
        &self,
        me: u32,
        cv_addr: usize,
        cv_name: &'static str,
        all: bool,
    ) -> usize {
        let g = self.lock_st();
        let mut g = self.yield_slot(me, g);
        let mut woken = 0usize;
        for t in g.tasks.iter_mut() {
            let hit = matches!(&t.state, TaskState::Blocked(BlockedOn::Cv { cv_addr: a, .. }) if *a == cv_addr);
            if hit {
                t.state = TaskState::Runnable;
                t.wake_timed_out = false;
                woken += 1;
                if !all {
                    break;
                }
            }
        }
        if !g.aborted {
            let step = g.steps;
            g.trace.push(Event {
                step,
                task: me,
                op: if all { Op::CvNotifyAll } else { Op::CvNotifyOne },
                subject: cv_name.to_string(),
            });
        }
        self.cv.notify_all();
        drop(g);
        woken
    }

    // -- channels --------------------------------------------------------

    /// Register (or look up) a channel for this run. `reg` caches
    /// `(controller token, channel id)` on the channel itself so ids are
    /// assigned once per run, in deterministic first-use order.
    pub(crate) fn ensure_chan(
        &self,
        reg: &StdMutex<Option<(u64, u64)>>,
        name: Option<&'static str>,
        senders: usize,
        real_len: usize,
    ) -> u64 {
        let mut slot = reg.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((tok, id)) = *slot {
            if tok == self.token {
                return id;
            }
        }
        let mut g = self.lock_st();
        let id = g.next_chan;
        g.next_chan += 1;
        let cname = match name {
            Some(n) => n.to_string(),
            None => format!("chan#{id}"),
        };
        g.chans.insert(id, ChanState { name: cname, len: real_len, senders });
        *slot = Some((self.token, id));
        id
    }

    /// Plain schedule point (used before a channel send).
    pub(crate) fn op_yield(&self, me: u32) {
        let g = self.lock_st();
        let g = self.yield_slot(me, g);
        drop(g);
    }

    pub(crate) fn op_chan_send_commit(&self, me: u32, id: u64) {
        let mut g = self.lock_st();
        let name = match g.chans.get_mut(&id) {
            Some(c) => {
                c.len += 1;
                c.name.clone()
            }
            None => return,
        };
        for t in g.tasks.iter_mut() {
            if matches!(&t.state, TaskState::Blocked(BlockedOn::Chan { id: i, .. }) if *i == id) {
                t.state = TaskState::Runnable;
            }
        }
        if !g.aborted && !std::thread::panicking() {
            let step = g.steps;
            g.trace.push(Event { step, task: me, op: Op::ChanSend, subject: name });
        }
        self.cv.notify_all();
    }

    pub(crate) fn op_chan_recv(&self, me: u32, id: u64, mode: RecvMode) -> RecvOutcome {
        let g = self.lock_st();
        let mut g = self.yield_slot(me, g);
        loop {
            let (len, senders, name) = match g.chans.get(&id) {
                Some(c) => (c.len, c.senders, c.name.clone()),
                None => return RecvOutcome::Disconnected,
            };
            if len > 0 {
                g.chans.get_mut(&id).unwrap().len -= 1;
                let step = g.steps;
                g.trace.push(Event { step, task: me, op: Op::ChanRecv, subject: name });
                return RecvOutcome::Data;
            }
            if senders == 0 {
                let step = g.steps;
                g.trace.push(Event { step, task: me, op: Op::ChanDisconnect, subject: name });
                return RecvOutcome::Disconnected;
            }
            match mode {
                RecvMode::Try => return RecvOutcome::Empty,
                RecvMode::Block | RecvMode::Timed => {
                    g.tasks[me as usize].wake_timed_out = false;
                    let timed = matches!(mode, RecvMode::Timed);
                    g = self.block_and_wait(me, BlockedOn::Chan { id, name, timed }, g);
                    if g.tasks[me as usize].wake_timed_out {
                        return RecvOutcome::TimedOut;
                    }
                }
            }
        }
    }

    pub(crate) fn chan_sender_cloned(&self, id: u64) {
        let mut g = self.lock_st();
        if let Some(c) = g.chans.get_mut(&id) {
            c.senders += 1;
        }
    }

    pub(crate) fn chan_sender_dropped(&self, me: u32, id: u64) {
        let mut g = self.lock_st();
        let name = match g.chans.get_mut(&id) {
            Some(c) => {
                c.senders = c.senders.saturating_sub(1);
                if c.senders > 0 {
                    return;
                }
                c.name.clone()
            }
            None => return,
        };
        for t in g.tasks.iter_mut() {
            if matches!(&t.state, TaskState::Blocked(BlockedOn::Chan { id: i, .. }) if *i == id) {
                t.state = TaskState::Runnable;
            }
        }
        if !g.aborted && !std::thread::panicking() {
            let step = g.steps;
            g.trace.push(Event { step, task: me, op: Op::ChanDisconnect, subject: name });
        }
        self.cv.notify_all();
    }

    // -- tasks -----------------------------------------------------------

    pub(crate) fn op_spawn(&self, me: u32) -> u32 {
        let g = self.lock_st();
        let mut g = self.yield_slot(me, g);
        let id = self.register_task(&mut g);
        let step = g.steps;
        g.trace.push(Event { step, task: me, op: Op::Spawn, subject: format!("task-{id}") });
        drop(g);
        id
    }

    pub(crate) fn op_join(&self, me: u32, target: u32) {
        let g = self.lock_st();
        let mut g = self.yield_slot(me, g);
        loop {
            if g.tasks[target as usize].state == TaskState::Finished {
                let step = g.steps;
                g.trace.push(Event {
                    step,
                    task: me,
                    op: Op::Join,
                    subject: format!("task-{target}"),
                });
                return;
            }
            g = self.block_and_wait(me, BlockedOn::Join { task: target }, g);
        }
    }

    fn first_wait(&self, me: u32) {
        let g = self.lock_st();
        let mut g = self.wait_active(me, g);
        let step = g.steps;
        g.trace.push(Event { step, task: me, op: Op::TaskStart, subject: format!("task-{me}") });
    }

    fn task_finished(&self, me: u32) {
        let mut g = self.lock_st();
        g.tasks[me as usize].state = TaskState::Finished;
        for t in g.tasks.iter_mut() {
            if matches!(&t.state, TaskState::Blocked(BlockedOn::Join { task }) if *task == me) {
                t.state = TaskState::Runnable;
            }
        }
        if !g.aborted {
            let step = g.steps;
            g.trace.push(Event { step, task: me, op: Op::TaskEnd, subject: format!("task-{me}") });
            self.pick_next(&mut g);
        }
        self.cv.notify_all();
    }

    fn task_panicked(&self, me: u32, msg: Option<String>) {
        let mut g = self.lock_st();
        g.tasks[me as usize].state = TaskState::Finished;
        let residue: Vec<Held> = std::mem::take(&mut g.tasks[me as usize].held);
        for h in residue {
            self.release_inner(&mut g, me, h.addr, h.read, false);
        }
        for t in g.tasks.iter_mut() {
            if matches!(&t.state, TaskState::Blocked(BlockedOn::Join { task }) if *task == me) {
                t.state = TaskState::Runnable;
            }
        }
        if let Some(m) = msg {
            if !g.aborted {
                g.hazards.push(
                    Hazard::new(
                        HazardKind::AssertionFailed,
                        format!("task {me} panicked under this schedule: {m}"),
                    )
                    .with_subjects([format!("task-{me}")]),
                );
                g.aborted = true;
            }
        }
        if !g.aborted {
            self.pick_next(&mut g);
        }
        self.cv.notify_all();
    }

    fn thread_exited(&self) {
        let mut g = self.lock_st();
        g.exited += 1;
        self.cv.notify_all();
    }
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Body run by every model task's real thread: register TLS, wait for the
/// first grant, run, report the outcome, and count the thread out.
pub(crate) fn task_body<T>(ctrl: Arc<Controller>, id: u32, f: impl FnOnce() -> T) -> Option<T> {
    CURRENT.with(|c| *c.borrow_mut() = Some(Handle { ctrl: Arc::clone(&ctrl), task: id }));
    let res = panic::catch_unwind(AssertUnwindSafe(|| {
        ctrl.first_wait(id);
        f()
    }));
    let out = match res {
        Ok(v) => {
            ctrl.task_finished(id);
            Some(v)
        }
        Err(p) => {
            let msg =
                if p.downcast_ref::<ModelAbort>().is_some() { None } else { Some(panic_msg(&*p)) };
            ctrl.task_panicked(id, msg);
            None
        }
    };
    CURRENT.with(|c| *c.borrow_mut() = None);
    ctrl.thread_exited();
    out
}

// ---------------------------------------------------------------------------
// Single-schedule driver
// ---------------------------------------------------------------------------

struct RunOutcome {
    trace: Vec<Event>,
    choices: Vec<u32>,
    hazards: Vec<Hazard>,
    lock_edges: BTreeSet<(String, String)>,
    cv_hold: BTreeSet<(String, String)>,
    timeout_escapes: u64,
    steps: u64,
    strat: StratState,
}

fn run_one(
    f: Arc<dyn Fn() + Send + Sync>,
    strat: StratState,
    max_steps: u64,
    fail_on_escape: bool,
) -> RunOutcome {
    install_quiet_hook();
    let ctrl = Arc::new(Controller::new(strat, max_steps, fail_on_escape));
    {
        let mut g = ctrl.lock_st();
        ctrl.register_task(&mut g);
    }
    MODEL_RUNS.fetch_add(1, Ordering::SeqCst);
    let c2 = Arc::clone(&ctrl);
    let root = std::thread::spawn(move || {
        let c3 = Arc::clone(&c2);
        task_body(c3, 0, move || f());
    });
    {
        let mut g = ctrl.lock_st();
        ctrl.pick_next(&mut g);
        ctrl.cv.notify_all();
    }
    {
        let mut g = ctrl.lock_st();
        while g.exited < g.spawned {
            g = ctrl.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    MODEL_RUNS.fetch_sub(1, Ordering::SeqCst);
    let _ = root.join();
    let mut g = ctrl.lock_st();
    RunOutcome {
        trace: std::mem::take(&mut g.trace),
        choices: std::mem::take(&mut g.choices),
        hazards: std::mem::take(&mut g.hazards),
        lock_edges: std::mem::take(&mut g.lock_edges),
        cv_hold: std::mem::take(&mut g.cv_hold),
        timeout_escapes: g.timeout_escapes,
        steps: g.steps,
        strat: std::mem::replace(
            &mut g.strat,
            StratState::Replay { schedule: Vec::new(), cursor: 0 },
        ),
    }
}
