//! The zero-cost facade: thin `#[inline]` wrappers over the vendored
//! `parking_lot` shim, plus straight re-exports for channels and threads.
//! Lock names are accepted (the checked build keys its lock-order graph on
//! them) and discarded.

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Mutual exclusion; delegates to `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: parking_lot::Mutex::new(value) }
    }

    /// Like [`Mutex::new`] with a lock-order-graph name; the name is only
    /// observed by checked builds.
    #[inline]
    pub const fn named(_name: &'static str, value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock() }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock; delegates to `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: parking_lot::RwLock::new(value) }
    }

    #[inline]
    pub const fn named(_name: &'static str, value: T) -> RwLock<T> {
        RwLock::new(value)
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read() }
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write() }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable compatible with this module's [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Condvar {
    #[inline]
    pub const fn new() -> Condvar {
        Condvar { inner: parking_lot::Condvar::new() }
    }

    #[inline]
    pub const fn named(_name: &'static str) -> Condvar {
        Condvar::new()
    }

    #[inline]
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one()
    }

    #[inline]
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all()
    }

    #[inline]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.inner.wait(&mut guard.inner);
    }

    #[inline]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        WaitTimeoutResult(self.inner.wait_for(&mut guard.inner, timeout).timed_out())
    }

    #[inline]
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        WaitTimeoutResult(self.inner.wait_until(&mut guard.inner, deadline).timed_out())
    }
}

/// Unbounded MPMC channels; re-exported from the crossbeam shim unchanged.
pub mod channel {
    pub use crossbeam::channel::{
        unbounded, Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Like [`unbounded`] with a trace name; the name is only observed by
    /// checked builds.
    #[inline]
    pub fn unbounded_named<T>(_name: &'static str) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

/// Thread spawning; re-exported from `std::thread` unchanged.
pub mod thread {
    pub use std::thread::{spawn, Builder, JoinHandle};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn facade_roundtrip() {
        let m = Mutex::named("test.m", 1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
        let l = RwLock::named("test.l", vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_and_channel_work() {
        let pair = Arc::new((Mutex::new(false), Condvar::named("test.cv")));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();

        let (tx, rx) = channel::unbounded_named("test.chan");
        tx.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
    }
}
