//! The checked facade: same API as `plain`, but every operation first asks
//! the controlled scheduler (when the calling thread is a model task) so
//! interleavings become explorable and blocking becomes modeled.
//!
//! Threads that are *not* model tasks — everything outside
//! [`crate::check::explore`] — take a fast path (one relaxed atomic load)
//! and behave exactly like the plain facade, so compiling this feature into
//! a binary does not change the semantics of uninstrumented code paths.
//!
//! Model invariant: the real primitive is only ever acquired after the
//! scheduler granted it, so real acquisition never contends and real
//! blocking never happens on a model task.

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

use crate::check;

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

fn thin_addr<T: ?Sized>(p: *const T) -> usize {
    p as *const () as usize
}

/// Mutual exclusion; checked builds route acquisition through the model.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    name: Option<&'static str>,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { name: None, inner: parking_lot::Mutex::new(value) }
    }

    /// Named lock: the name is the node identity in the lock-order graph
    /// and the subject string in schedule traces.
    #[inline]
    pub const fn named(name: &'static str, value: T) -> Mutex<T> {
        Mutex { name: Some(name), inner: parking_lot::Mutex::new(value) }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        thin_addr(self as *const Mutex<T>)
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = match check::cur() {
            Some(h) => {
                h.ctrl.op_lock(h.task, self.addr(), self.name, false);
                true
            }
            None => false,
        };
        MutexGuard { lock: self, inner: Some(self.inner.lock()), model }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.inner = None; // release the real lock first
            if self.model {
                if let Some(h) = check::cur() {
                    h.ctrl.op_unlock(h.task, self.lock.addr(), false);
                }
            }
        }
    }
}

/// Reader-writer lock; reads are shared, writes exclusive in the model.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    name: Option<&'static str>,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { name: None, inner: parking_lot::RwLock::new(value) }
    }

    #[inline]
    pub const fn named(name: &'static str, value: T) -> RwLock<T> {
        RwLock { name: Some(name), inner: parking_lot::RwLock::new(value) }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn addr(&self) -> usize {
        thin_addr(self as *const RwLock<T>)
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = match check::cur() {
            Some(h) => {
                h.ctrl.op_lock(h.task, self.addr(), self.name, true);
                true
            }
            None => false,
        };
        RwLockReadGuard { lock: self, inner: Some(self.inner.read()), model }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = match check::cur() {
            Some(h) => {
                h.ctrl.op_lock(h.task, self.addr(), self.name, false);
                true
            }
            None => false,
        };
        RwLockWriteGuard { lock: self, inner: Some(self.inner.write()), model }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.inner = None;
            if self.model {
                if let Some(h) = check::cur() {
                    h.ctrl.op_unlock(h.task, self.lock.addr(), true);
                }
            }
        }
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.inner = None;
            if self.model {
                if let Some(h) = check::cur() {
                    h.ctrl.op_unlock(h.task, self.lock.addr(), false);
                }
            }
        }
    }
}

/// Condition variable compatible with this module's [`MutexGuard`]. Model
/// waiters park in the scheduler, never on the real condvar, so notify
/// routing is exact and lost wakeups are observable.
#[derive(Debug, Default)]
pub struct Condvar {
    name: Option<&'static str>,
    inner: parking_lot::Condvar,
}

impl Condvar {
    #[inline]
    pub const fn new() -> Condvar {
        Condvar { name: None, inner: parking_lot::Condvar::new() }
    }

    #[inline]
    pub const fn named(name: &'static str) -> Condvar {
        Condvar { name: Some(name), inner: parking_lot::Condvar::new() }
    }

    fn addr(&self) -> usize {
        thin_addr(self as *const Condvar)
    }

    fn trace_name(&self) -> &'static str {
        self.name.unwrap_or("condvar")
    }

    pub fn notify_one(&self) -> bool {
        if let Some(h) = check::cur() {
            return h.ctrl.op_cv_notify(h.task, self.addr(), self.trace_name(), false) > 0;
        }
        self.inner.notify_one()
    }

    pub fn notify_all(&self) -> usize {
        if let Some(h) = check::cur() {
            return h.ctrl.op_cv_notify(h.task, self.addr(), self.trace_name(), true);
        }
        self.inner.notify_all()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if guard.model {
            if let Some(h) = check::cur() {
                let lock = guard.lock;
                guard.inner = None; // release the real mutex for the wait
                let _ =
                    h.ctrl.op_cv_wait(h.task, self.addr(), self.trace_name(), lock.addr(), false);
                guard.inner = Some(lock.inner.lock());
                return;
            }
        }
        self.inner.wait(guard.inner.as_mut().expect("guard present"));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if guard.model {
            if let Some(h) = check::cur() {
                let lock = guard.lock;
                guard.inner = None;
                let timed_out =
                    h.ctrl.op_cv_wait(h.task, self.addr(), self.trace_name(), lock.addr(), true);
                guard.inner = Some(lock.inner.lock());
                return WaitTimeoutResult(timed_out);
            }
        }
        WaitTimeoutResult(
            self.inner.wait_for(guard.inner.as_mut().expect("guard present"), timeout).timed_out(),
        )
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        if guard.model && check::cur().is_some() {
            return self.wait_for(guard, Duration::from_secs(0));
        }
        WaitTimeoutResult(
            self.inner
                .wait_until(guard.inner.as_mut().expect("guard present"), deadline)
                .timed_out(),
        )
    }
}

/// Unbounded MPMC channels over the crossbeam shim, with modeled blocking.
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex as StdMutex};
    use std::time::Duration;

    pub use crossbeam::channel::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    use super::check::{self, Handle, RecvMode, RecvOutcome};

    pub(super) struct ChanMeta {
        name: Option<&'static str>,
        /// `(controller token, channel id)` cache for the current run.
        reg: StdMutex<Option<(u64, u64)>>,
        /// Live sender count, tracked unconditionally so a run that first
        /// touches the channel mid-life seeds the model correctly.
        senders: AtomicUsize,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Like [`unbounded`] with a trace/model name.
    pub fn unbounded_named<T>(name: &'static str) -> (Sender<T>, Receiver<T>) {
        make(Some(name))
    }

    fn make<T>(name: Option<&'static str>) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let meta =
            Arc::new(ChanMeta { name, reg: StdMutex::new(None), senders: AtomicUsize::new(1) });
        (Sender { inner: tx, meta: Arc::clone(&meta) }, Receiver { inner: rx, meta })
    }

    fn model_id(meta: &ChanMeta, h: &Handle, real_len: usize) -> u64 {
        h.ctrl.ensure_chan(&meta.reg, meta.name, meta.senders.load(Ordering::SeqCst), real_len)
    }

    /// The channel's id for this run, only if it is already registered.
    fn registered_id(meta: &ChanMeta, h: &Handle) -> Option<u64> {
        let slot = meta.reg.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match *slot {
            Some((tok, id)) if tok == h.ctrl.token => Some(id),
            _ => None,
        }
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: crossbeam::channel::Sender<T>,
        meta: Arc<ChanMeta>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if let Some(h) = check::cur() {
                let id = model_id(&self.meta, &h, 0);
                h.ctrl.op_yield(h.task);
                let r = self.inner.send(value);
                if r.is_ok() {
                    h.ctrl.op_chan_send_commit(h.task, id);
                }
                return r;
            }
            self.inner.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.meta.senders.fetch_add(1, Ordering::SeqCst);
            if let Some(h) = check::cur() {
                if let Some(id) = registered_id(&self.meta, &h) {
                    h.ctrl.chan_sender_cloned(id);
                }
            }
            Sender { inner: self.inner.clone(), meta: Arc::clone(&self.meta) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.meta.senders.fetch_sub(1, Ordering::SeqCst);
            if let Some(h) = check::cur() {
                if let Some(id) = registered_id(&self.meta, &h) {
                    h.ctrl.chan_sender_dropped(h.task, id);
                }
            }
        }
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: crossbeam::channel::Receiver<T>,
        meta: Arc<ChanMeta>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            if let Some(h) = check::cur() {
                let id = model_id(&self.meta, &h, self.inner.len());
                return match h.ctrl.op_chan_recv(h.task, id, RecvMode::Block) {
                    RecvOutcome::Data => Ok(self.inner.try_recv().expect("model granted data")),
                    _ => Err(RecvError),
                };
            }
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            if let Some(h) = check::cur() {
                let id = model_id(&self.meta, &h, self.inner.len());
                return match h.ctrl.op_chan_recv(h.task, id, RecvMode::Try) {
                    RecvOutcome::Data => Ok(self.inner.try_recv().expect("model granted data")),
                    RecvOutcome::Empty => Err(TryRecvError::Empty),
                    _ => Err(TryRecvError::Disconnected),
                };
            }
            self.inner.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            if let Some(h) = check::cur() {
                let id = model_id(&self.meta, &h, self.inner.len());
                return match h.ctrl.op_chan_recv(h.task, id, RecvMode::Timed) {
                    RecvOutcome::Data => Ok(self.inner.try_recv().expect("model granted data")),
                    RecvOutcome::TimedOut => Err(RecvTimeoutError::Timeout),
                    _ => Err(RecvTimeoutError::Disconnected),
                };
            }
            self.inner.recv_timeout(timeout)
        }

        /// Committed sends are atomic with respect to scheduling, so the
        /// real queue length is exact even under the model.
        pub fn is_empty(&self) -> bool {
            self.inner.is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver { inner: self.inner.clone(), meta: Arc::clone(&self.meta) }
        }
    }
}

/// Thread spawning; model tasks are registered with the scheduler and
/// parked until granted, and `join` is a modeled blocking operation.
pub mod thread {
    use std::io;
    use std::sync::Arc;

    use super::check::{self, task_body, Controller};

    pub struct JoinHandle<T>(Imp<T>);

    enum Imp<T> {
        Plain(std::thread::JoinHandle<T>),
        Model { real: std::thread::JoinHandle<Option<T>>, ctrl: Arc<Controller>, task: u32 },
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Imp::Plain(h) => h.join(),
                Imp::Model { real, ctrl, task } => {
                    if let Some(h) = check::cur() {
                        ctrl.op_join(h.task, task);
                    }
                    match real.join() {
                        Ok(Some(v)) => Ok(v),
                        Ok(None) => Err(Box::new("model task panicked".to_string())),
                        Err(e) => Err(e),
                    }
                }
            }
        }

        pub fn is_finished(&self) -> bool {
            match &self.0 {
                Imp::Plain(h) => h.is_finished(),
                Imp::Model { real, .. } => real.is_finished(),
            }
        }
    }

    pub struct Builder {
        inner: std::thread::Builder,
    }

    impl Default for Builder {
        fn default() -> Builder {
            Builder::new()
        }
    }

    impl Builder {
        pub fn new() -> Builder {
            Builder { inner: std::thread::Builder::new() }
        }

        pub fn name(self, name: String) -> Builder {
            Builder { inner: self.inner.name(name) }
        }

        pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if let Some(h) = check::cur() {
                let id = h.ctrl.op_spawn(h.task);
                let ctrl = Arc::clone(&h.ctrl);
                let real = self.inner.spawn(move || task_body(ctrl, id, f))?;
                return Ok(JoinHandle(Imp::Model { real, ctrl: h.ctrl, task: id }));
            }
            Ok(JoinHandle(Imp::Plain(self.inner.spawn(f)?)))
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }
}
