//! # cn-sync — the runtime's synchronization facade
//!
//! Every lock, condvar, channel, and thread the CN runtime creates goes
//! through this crate instead of `parking_lot`/`crossbeam`/`std` directly.
//!
//! - **Normal builds** (`check` feature off): zero-cost wrappers — each
//!   method is an `#[inline]` delegation to the underlying primitive, and
//!   the channel/thread modules are straight re-exports. There is nothing
//!   to observe and nothing to pay for.
//! - **Checked builds** (`check` feature on): every acquire, wait, notify,
//!   send, receive, spawn, and join becomes a *schedule point* routed
//!   through a controlled scheduler ([`check::explore`]) that serializes
//!   the program onto one running task at a time and explores interleavings
//!   (seeded PCT-style randomized schedules and bounded-preemption DFS).
//!   The scheduler detects deadlocks, double-locks, lost notifications, and
//!   channel starvation, records the lock-order graph, and emits any
//!   counterexample as a replayable seed + schedule trace
//!   ([`model::Counterexample`]).
//!
//! Even with `check` compiled in, code not running under an explorer takes
//! a fast path (one relaxed atomic load) and behaves exactly like a normal
//! build — so enabling the feature for `cnctl check` does not change the
//! semantics of the rest of the binary.
//!
//! Name your primitives ([`Mutex::named`], [`Condvar::named`],
//! [`channel::unbounded_named`]): names are the node identity in the
//! lock-order graph and the subject strings in schedule traces.

pub mod model;

#[cfg(not(feature = "check"))]
mod plain;
#[cfg(not(feature = "check"))]
pub use plain::{
    channel, thread, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};

#[cfg(feature = "check")]
pub mod check;
#[cfg(feature = "check")]
mod instrumented;
#[cfg(feature = "check")]
pub use instrumented::{
    channel, thread, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
