//! Shared directed-graph algorithms for the CN tool chain.
//!
//! Both the CNX dependency DAG (`cn-cnx`) and the UML activity graph
//! (`cn-model`) must reject cycles, and both report the offending cycle in
//! their diagnostics. This crate holds the single implementation so the two
//! layers (and the `cn-analysis` lint engine on top of them) agree on which
//! cycle gets reported: the *shortest* one, with deterministic tie-breaking.

/// Find a shortest cycle in a directed graph given as adjacency lists
/// (`adj[u]` = successors of `u`).
///
/// Returns the cycle as a closed walk `[s, n1, ..., s]` (first == last), or
/// `None` for an acyclic graph. The result is deterministic:
///
/// * among all cycles, a minimum-length one is returned;
/// * among minimum-length cycles, the one whose smallest node index is
///   lowest wins, and the walk starts (and ends) at that node;
/// * the path between those endpoints follows BFS order over the adjacency
///   lists as given.
///
/// Runs one BFS per node — O(V·(V+E)), plenty for job-sized graphs.
pub fn shortest_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut best: Option<Vec<usize>> = None;
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];

    for s in 0..n {
        // BFS from s; the shortest cycle through s closes with an edge u -> s.
        for d in dist.iter_mut() {
            *d = usize::MAX;
        }
        dist[s] = 0;
        parent[s] = usize::MAX;
        let mut queue = std::collections::VecDeque::from([s]);
        let mut close_from: Option<usize> = None;
        'bfs: while let Some(u) = queue.pop_front() {
            if let Some(cap) = best.as_ref().map(|b| b.len() - 1) {
                // A cycle through s via u has length >= dist[u] + 1; prune
                // once it cannot beat the incumbent.
                if dist[u] + 1 >= cap {
                    break 'bfs;
                }
            }
            for &v in &adj[u] {
                if v == s {
                    close_from = Some(u);
                    break 'bfs;
                }
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if let Some(u) = close_from {
            let mut cycle = Vec::with_capacity(dist[u] + 2);
            let mut cur = u;
            while cur != usize::MAX {
                cycle.push(cur);
                cur = parent[cur];
            }
            cycle.reverse(); // now [s, ..., u]
            cycle.push(s);
            let better = match &best {
                Some(b) => cycle.len() < b.len(),
                None => true,
            };
            if better {
                best = Some(cycle);
            }
        }
    }
    best
}

/// True if the graph has any cycle.
pub fn has_cycle(adj: &[Vec<usize>]) -> bool {
    shortest_cycle(adj).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graphs_return_none() {
        assert_eq!(shortest_cycle(&[]), None);
        assert_eq!(shortest_cycle(&[vec![]]), None);
        // diamond: 0 -> {1,2} -> 3
        assert_eq!(shortest_cycle(&[vec![1, 2], vec![3], vec![3], vec![]]), None);
    }

    #[test]
    fn self_loop_is_a_length_one_cycle() {
        assert_eq!(shortest_cycle(&[vec![0]]), Some(vec![0, 0]));
        assert_eq!(shortest_cycle(&[vec![], vec![1]]), Some(vec![1, 1]));
    }

    #[test]
    fn simple_two_cycle() {
        assert_eq!(shortest_cycle(&[vec![1], vec![0]]), Some(vec![0, 1, 0]));
    }

    #[test]
    fn smallest_cycle_wins_over_larger() {
        // 0 -> 1 -> 2 -> 0 (len 3) and 3 <-> 4 (len 2): report the 2-cycle.
        let adj = vec![vec![1], vec![2], vec![0], vec![4], vec![3]];
        assert_eq!(shortest_cycle(&adj), Some(vec![3, 4, 3]));
    }

    #[test]
    fn tie_broken_by_smallest_node_index() {
        // Two 2-cycles: 2 <-> 3 and 0 <-> 1. The one containing node 0 wins.
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        assert_eq!(shortest_cycle(&adj), Some(vec![0, 1, 0]));
    }

    #[test]
    fn walk_starts_at_smallest_index_on_cycle() {
        // Single cycle 2 -> 1 -> 3 -> 2; walk must start at node 1.
        let adj = vec![vec![], vec![3], vec![1], vec![2]];
        let c = shortest_cycle(&adj).unwrap();
        assert_eq!(c.first(), c.last());
        assert_eq!(c[0], 1);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let adj = vec![vec![1, 2], vec![2, 3], vec![0, 3], vec![0]];
        let first = shortest_cycle(&adj).unwrap();
        for _ in 0..10 {
            assert_eq!(shortest_cycle(&adj).unwrap(), first);
        }
    }

    #[test]
    fn has_cycle_matches() {
        assert!(has_cycle(&[vec![1], vec![0]]));
        assert!(!has_cycle(&[vec![1], vec![]]));
    }
}
