//! Failure-injection plans for resilience tests.
//!
//! The substrate already exposes the primitive faults (node crash via
//! [`crate::node::NodeHandle::crash`], message loss via
//! [`crate::network::LatencyModel::drop_rate`], partitions via
//! [`crate::network::Network::partition`]). This module adds a small
//! scripting layer so tests and benches can describe *when* faults happen.

use std::time::Duration;

/// One scripted fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Crash the named node.
    CrashNode(String),
    /// Restart the named node.
    RestartNode(String),
    /// Partition the named node's endpoint off the network.
    PartitionNode(String),
    /// Heal the named node's partition.
    HealNode(String),
}

/// A fault scheduled after a delay from plan start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    pub after: Duration,
    pub fault: Fault,
}

/// An ordered fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailurePlan {
    faults: Vec<ScheduledFault>,
}

impl FailurePlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault at `after` from plan start. Keeps the schedule sorted and
    /// stable (equal-time faults fire in insertion order).
    pub fn at(mut self, after: Duration, fault: Fault) -> Self {
        let idx = self.faults.partition_point(|f| f.after <= after);
        self.faults.insert(idx, ScheduledFault { after, fault });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = &ScheduledFault> {
        self.faults.iter()
    }

    /// Faults due at or before `elapsed`, removing them from the plan.
    pub fn due(&mut self, elapsed: Duration) -> Vec<Fault> {
        let split = self.faults.partition_point(|f| f.after <= elapsed);
        self.faults.drain(..split).map(|f| f.fault).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_stays_sorted() {
        let plan = FailurePlan::new()
            .at(Duration::from_millis(30), Fault::HealNode("n0".into()))
            .at(Duration::from_millis(10), Fault::CrashNode("n1".into()))
            .at(Duration::from_millis(20), Fault::PartitionNode("n0".into()));
        let times: Vec<u64> = plan.iter().map(|f| f.after.as_millis() as u64).collect();
        assert_eq!(times, [10, 20, 30]);
    }

    #[test]
    fn due_drains_in_order() {
        let mut plan = FailurePlan::new()
            .at(Duration::from_millis(10), Fault::CrashNode("a".into()))
            .at(Duration::from_millis(20), Fault::RestartNode("a".into()))
            .at(Duration::from_millis(30), Fault::CrashNode("b".into()));
        assert!(plan.due(Duration::from_millis(5)).is_empty());
        let due = plan.due(Duration::from_millis(25));
        assert_eq!(due, vec![Fault::CrashNode("a".into()), Fault::RestartNode("a".into())]);
        assert_eq!(plan.len(), 1);
        let rest = plan.due(Duration::from_secs(1));
        assert_eq!(rest, vec![Fault::CrashNode("b".into())]);
        assert!(plan.is_empty());
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut plan = FailurePlan::new()
            .at(Duration::from_millis(10), Fault::CrashNode("first".into()))
            .at(Duration::from_millis(10), Fault::CrashNode("second".into()));
        let due = plan.due(Duration::from_millis(10));
        assert_eq!(due, vec![Fault::CrashNode("first".into()), Fault::CrashNode("second".into())]);
    }
}
