//! Deterministic simulated cluster substrate.
//!
//! The paper evaluates CN on "a cluster of commodity off-the-shelf personal
//! computers, interconnected with a local area network technology like
//! Ethernet". That hardware is not available here, so this crate provides
//! the closest synthetic equivalent that exercises the same code paths
//! (DESIGN.md §2 documents the substitution):
//!
//! * [`node`] — virtual nodes with memory/slot resources, matching the
//!   `task-req` admission the JobManager performs,
//! * [`network`] — a message fabric with unicast and **multicast groups**
//!   (the paper's JobManager discovery is multicast-based), a configurable
//!   latency/jitter/loss model, and per-message metrics,
//! * [`failure`] — failure injection: node crash and network partition,
//! * [`metrics`] — counters the benchmarks report.
//!
//! Everything stochastic (jitter, loss) is driven by a caller-provided seed,
//! so simulations are reproducible.

pub mod failure;
pub mod metrics;
pub mod network;
pub mod node;

pub use cn_observe::{Recorder, Severity};
pub use metrics::{MetricsSnapshot, NetworkMetrics};
pub use network::{Addr, Envelope, GroupId, LatencyModel, Network, SendError, DISCOVERY_GROUP};
pub use node::{ClusterCapacity, NodeHandle, NodeSpec, ReserveError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_unicast() {
        let net: Network<String> = Network::new(LatencyModel::zero(), 1);
        let (a, _rx_a) = net.register();
        let (_b, rx_b) = net.register();
        net.send(a, _b, "hello".to_string()).unwrap();
        let env = rx_b.recv().unwrap();
        assert_eq!(env.msg, "hello");
        assert_eq!(env.from, a);
    }
}
