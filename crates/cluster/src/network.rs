//! The virtual network fabric: unicast, multicast groups, latency model.
//!
//! "Requests to JobManager are communicated using multicast. JobManagers
//! respond to multicast requests ... if they have free resources and are
//! willing" (paper Section 3). The fabric therefore supports multicast
//! groups natively; CNServers join the discovery group, clients multicast
//! into it.
//!
//! Delivery is via per-endpoint channels. With a zero latency model,
//! messages are handed over synchronously; with a non-zero model, a fabric
//! thread delays each message by `base ± jitter` and applies seeded random
//! loss — deterministic for a fixed seed and send order.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_observe::{Recorder, Severity};
use cn_sync::channel::{unbounded_named, Receiver, Sender};
use cn_sync::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::NetworkMetrics;

/// An endpoint address on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr:{}", self.0)
    }
}

/// A multicast group id. Group 0 is conventionally the CN discovery group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub u32);

/// The CN discovery multicast group (JobManager solicitation).
pub const DISCOVERY_GROUP: GroupId = GroupId(0);

/// A delivered message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    pub from: Addr,
    pub to: Addr,
    pub msg: M,
}

/// Latency/loss configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Base one-way latency.
    pub base: Duration,
    /// Uniform jitter added on top: `[0, jitter]`.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_rate: f64,
}

impl LatencyModel {
    /// Instant, lossless delivery (the default for unit tests).
    pub fn zero() -> Self {
        LatencyModel { base: Duration::ZERO, jitter: Duration::ZERO, drop_rate: 0.0 }
    }

    /// A LAN-ish profile: ~200µs ± 100µs, lossless — the paper's Ethernet.
    pub fn lan() -> Self {
        LatencyModel {
            base: Duration::from_micros(200),
            jitter: Duration::from_micros(100),
            drop_rate: 0.0,
        }
    }

    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    fn is_instant(&self) -> bool {
        self.base.is_zero() && self.jitter.is_zero()
    }
}

/// Send failure. The first two variants are raised by the simulated
/// fabric; the wire variants are raised by the socket transport in
/// `cn-wire` (the error type lives here so both fabrics share one
/// `Result` surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    UnknownAddr(Addr),
    /// The destination endpoint was dropped.
    Closed(Addr),
    /// No TCP connection could be established to the peer process (after
    /// the configured retries).
    ConnectFailed(Addr),
    /// A connect or write did not finish within the configured timeout.
    Timeout(Addr),
    /// The frame could not be encoded/decoded for this destination.
    Codec(Addr),
    /// The peer process closed the connection mid-conversation.
    PeerClosed(Addr),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::UnknownAddr(a) => write!(f, "unknown address {a}"),
            SendError::Closed(a) => write!(f, "endpoint {a} is closed"),
            SendError::ConnectFailed(a) => write!(f, "could not connect to peer of {a}"),
            SendError::Timeout(a) => write!(f, "transport timeout sending to {a}"),
            SendError::Codec(a) => write!(f, "codec failure for {a}"),
            SendError::PeerClosed(a) => write!(f, "peer of {a} closed the connection"),
        }
    }
}

impl std::error::Error for SendError {}

struct Pending<M> {
    due: Instant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-due first.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

struct Shared<M> {
    endpoints: Mutex<HashMap<Addr, Sender<Envelope<M>>>>,
    groups: Mutex<HashMap<GroupId, HashSet<Addr>>>,
    partitioned: Mutex<HashSet<Addr>>,
    /// One-shot faults: drop the next N messages addressed to an endpoint.
    drop_next: Mutex<HashMap<Addr, u32>>,
    queue: Mutex<BinaryHeap<Pending<M>>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    /// Messages popped from the delay queue but not yet handed to their
    /// endpoint (keeps `quiesce` honest).
    in_flight: AtomicU64,
    next_addr: AtomicU64,
    next_seq: AtomicU64,
    model: LatencyModel,
    rng: Mutex<StdRng>,
    metrics: NetworkMetrics,
    recorder: Recorder,
}

/// The network fabric. Cheap to clone; the fabric thread (if any) stops when
/// the last clone is dropped.
pub struct Network<M: Send + Clone + 'static> {
    shared: Arc<Shared<M>>,
}

impl<M: Send + Clone + 'static> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network { shared: Arc::clone(&self.shared) }
    }
}

impl<M: Send + Clone + 'static> Network<M> {
    /// Create a fabric with the given latency model and RNG seed.
    pub fn new(model: LatencyModel, seed: u64) -> Self {
        Network::with_recorder(model, seed, Recorder::disabled())
    }

    /// Create a fabric whose counters register in `recorder`'s metrics
    /// registry (`net.*`) and whose fault injection writes flight events.
    pub fn with_recorder(model: LatencyModel, seed: u64, recorder: Recorder) -> Self {
        let shared = Arc::new(Shared {
            endpoints: Mutex::named("net.endpoints", HashMap::new()),
            groups: Mutex::named("net.groups", HashMap::new()),
            partitioned: Mutex::named("net.partitioned", HashSet::new()),
            drop_next: Mutex::named("net.drop_next", HashMap::new()),
            queue: Mutex::named("net.delay_queue", BinaryHeap::new()),
            queue_cv: Condvar::named("net.delay_cv"),
            stop: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            next_addr: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            model,
            rng: Mutex::named("net.rng", StdRng::seed_from_u64(seed)),
            metrics: NetworkMetrics::registered(recorder.metrics()),
            recorder,
        });
        if !model.is_instant() {
            let weak = Arc::downgrade(&shared);
            std::thread::Builder::new()
                .name("cn-fabric".to_string())
                .spawn(move || fabric_loop(weak))
                .expect("spawn fabric thread");
        }
        Network { shared }
    }

    /// Register a new endpoint; returns its address and receive channel.
    pub fn register(&self) -> (Addr, Receiver<Envelope<M>>) {
        let addr = Addr(self.shared.next_addr.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded_named("net.endpoint");
        self.shared.endpoints.lock().insert(addr, tx);
        (addr, rx)
    }

    /// Remove an endpoint (its receiver will see disconnection).
    pub fn unregister(&self, addr: Addr) {
        self.shared.endpoints.lock().remove(&addr);
        for members in self.shared.groups.lock().values_mut() {
            members.remove(&addr);
        }
    }

    /// Join a multicast group.
    #[cfg(not(feature = "mutations"))]
    pub fn join_group(&self, addr: Addr, group: GroupId) {
        self.shared.groups.lock().entry(group).or_default().insert(addr);
    }

    /// Injected ordering bug for cn-check: "validate" the address while
    /// holding the groups lock, taking groups → endpoints — the opposite of
    /// the mutated [`Network::multicast`], which nests endpoints → groups.
    #[cfg(feature = "mutations")]
    pub fn join_group(&self, addr: Addr, group: GroupId) {
        let mut groups = self.shared.groups.lock();
        if self.shared.endpoints.lock().contains_key(&addr) {
            groups.entry(group).or_default().insert(addr);
        }
    }

    /// Leave a multicast group.
    pub fn leave_group(&self, addr: Addr, group: GroupId) {
        if let Some(members) = self.shared.groups.lock().get_mut(&group) {
            members.remove(&addr);
        }
    }

    /// Members of a group (snapshot).
    pub fn group_members(&self, group: GroupId) -> Vec<Addr> {
        let mut v: Vec<Addr> = self
            .shared
            .groups
            .lock()
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Unicast send.
    pub fn send(&self, from: Addr, to: Addr, msg: M) -> Result<(), SendError> {
        self.shared.metrics.record_send();
        if self.dropped_by_fault(from, to) {
            return Ok(()); // silently lost, like the wire
        }
        self.deliver(Envelope { from, to, msg })
    }

    /// Injected ordering bug for cn-check: deliver the whole group under
    /// one endpoints lock "for efficiency", reading membership while that
    /// lock is held — endpoints → groups, the opposite nesting of the
    /// mutated [`Network::join_group`].
    #[cfg(feature = "mutations")]
    pub fn multicast(&self, from: Addr, group: GroupId, msg: M) -> usize {
        let endpoints = self.shared.endpoints.lock();
        let mut members: Vec<Addr> = self
            .shared
            .groups
            .lock()
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        members.sort_unstable();
        members.retain(|&to| to != from);
        self.shared.metrics.record_multicast();
        let count = members.len();
        for to in members {
            self.shared.metrics.record_send();
            if let Some(tx) = endpoints.get(&to) {
                if tx.send(Envelope { from, to, msg: msg.clone() }).is_ok() {
                    self.shared.metrics.record_delivery();
                } else {
                    self.shared.metrics.record_drop();
                }
            }
        }
        count
    }

    /// Multicast to every group member except the sender. Returns how many
    /// endpoints the message was addressed to.
    #[cfg(not(feature = "mutations"))]
    pub fn multicast(&self, from: Addr, group: GroupId, msg: M) -> usize {
        let mut members = self.group_members(group);
        members.retain(|&to| to != from);
        self.shared.metrics.record_multicast();
        let count = members.len();
        // The last recipient takes the message by move: k members cost
        // k-1 clones, and the common single-member case costs none.
        let mut msg = Some(msg);
        for (i, to) in members.iter().copied().enumerate() {
            self.shared.metrics.record_send();
            if self.dropped_by_fault(from, to) {
                continue;
            }
            let m = if i + 1 == count {
                msg.take().expect("moved once")
            } else {
                msg.as_ref().expect("live until last").clone()
            };
            // Unknown/closed members are skipped silently (they left).
            let _ = self.deliver(Envelope { from, to, msg: m });
        }
        count
    }

    fn dropped_by_fault(&self, from: Addr, to: Addr) -> bool {
        let rec = &self.shared.recorder;
        {
            let parts = self.shared.partitioned.lock();
            if parts.contains(&from) || parts.contains(&to) {
                self.shared.metrics.record_drop();
                rec.event_with(Severity::Warn, "net", None, || {
                    format!("partition dropped {from} -> {to}")
                });
                return true;
            }
        }
        {
            let mut drops = self.shared.drop_next.lock();
            if let Some(n) = drops.get_mut(&to) {
                if *n > 0 {
                    *n -= 1;
                    if *n == 0 {
                        drops.remove(&to);
                    }
                    self.shared.metrics.record_drop();
                    rec.event_with(Severity::Warn, "net", None, || {
                        format!("injected drop of {from} -> {to}")
                    });
                    return true;
                }
            }
        }
        if self.shared.model.drop_rate > 0.0 {
            let roll: f64 = self.shared.rng.lock().gen();
            if roll < self.shared.model.drop_rate {
                self.shared.metrics.record_drop();
                rec.event_with(Severity::Info, "net", None, || {
                    format!("lossy wire dropped {from} -> {to}")
                });
                return true;
            }
        }
        false
    }

    fn deliver(&self, env: Envelope<M>) -> Result<(), SendError> {
        if self.shared.model.is_instant() {
            return self.deliver_now(env);
        }
        let extra = if self.shared.model.jitter.is_zero() {
            Duration::ZERO
        } else {
            let nanos = self.shared.model.jitter.as_nanos() as u64;
            Duration::from_nanos(self.shared.rng.lock().gen_range(0..=nanos))
        };
        let due = Instant::now() + self.shared.model.base + extra;
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
        self.shared.queue.lock().push(Pending { due, seq, env });
        self.shared.queue_cv.notify_one();
        Ok(())
    }

    fn deliver_now(&self, env: Envelope<M>) -> Result<(), SendError> {
        let endpoints = self.shared.endpoints.lock();
        match endpoints.get(&env.to) {
            Some(tx) => {
                let to = env.to;
                if tx.send(env).is_err() {
                    self.shared.metrics.record_drop();
                    return Err(SendError::Closed(to));
                }
                self.shared.metrics.record_delivery();
                Ok(())
            }
            None => {
                self.shared.metrics.record_drop();
                Err(SendError::UnknownAddr(env.to))
            }
        }
    }

    /// Partition an endpoint: all traffic to/from it is dropped until
    /// [`Network::heal`].
    pub fn partition(&self, addr: Addr) {
        self.shared.partitioned.lock().insert(addr);
        self.shared
            .recorder
            .event_with(Severity::Warn, "fault", None, || format!("partitioned {addr}"));
    }

    /// Heal a partition.
    pub fn heal(&self, addr: Addr) {
        self.shared.partitioned.lock().remove(&addr);
        self.shared.recorder.event_with(Severity::Info, "fault", None, || format!("healed {addr}"));
    }

    /// Heal every partition (used before orderly shutdown, so control
    /// messages can reach partitioned endpoints again).
    pub fn heal_all(&self) {
        self.shared.partitioned.lock().clear();
        self.shared.drop_next.lock().clear();
    }

    /// One-shot fault injection: silently drop the next `n` messages
    /// addressed to `addr` (then deliver normally again).
    pub fn drop_next(&self, addr: Addr, n: u32) {
        if n > 0 {
            self.shared.drop_next.lock().insert(addr, n);
            self.shared.recorder.event_with(Severity::Warn, "fault", None, || {
                format!("armed drop of next {n} messages to {addr}")
            });
        }
    }

    /// Metrics snapshot.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The observability handle this fabric records into.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Block until the delayed-delivery queue is empty (no-op for instant
    /// fabrics). Useful in tests with latency.
    pub fn quiesce(&self) {
        if self.shared.model.is_instant() {
            return;
        }
        loop {
            if self.shared.queue.lock().is_empty()
                && self.shared.in_flight.load(Ordering::Relaxed) == 0
            {
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl<M: Send + Clone + 'static> Drop for Network<M> {
    fn drop(&mut self) {
        // Last clone going away: wake the fabric thread so it can exit.
        if Arc::strong_count(&self.shared) == 1 {
            self.shared.stop.store(true, Ordering::Relaxed);
            self.shared.queue_cv.notify_all();
        }
    }
}

fn fabric_loop<M: Send + Clone + 'static>(weak: std::sync::Weak<Shared<M>>) {
    loop {
        let Some(shared) = weak.upgrade() else { return };
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let mut due_now = Vec::new();
        {
            let mut queue = shared.queue.lock();
            let now = Instant::now();
            while let Some(top) = queue.peek() {
                if top.due <= now {
                    // Counted while the queue lock is held so quiesce never
                    // observes "empty queue" with deliveries still pending.
                    shared.in_flight.fetch_add(1, Ordering::Relaxed);
                    due_now.push(queue.pop().expect("peeked").env);
                } else {
                    break;
                }
            }
            if due_now.is_empty() {
                let wait = queue
                    .peek()
                    .map(|p| p.due.saturating_duration_since(now))
                    .unwrap_or(Duration::from_millis(5));
                shared.queue_cv.wait_for(&mut queue, wait.min(Duration::from_millis(5)));
            }
        }
        // Deliver the whole due batch under one endpoints lock: a burst of
        // N messages costs one lock acquisition, not N.
        if !due_now.is_empty() {
            let n = due_now.len();
            {
                let endpoints = shared.endpoints.lock();
                for env in due_now {
                    if let Some(tx) = endpoints.get(&env.to) {
                        if tx.send(env).is_ok() {
                            shared.metrics.record_delivery();
                        } else {
                            shared.metrics.record_drop();
                        }
                    } else {
                        shared.metrics.record_drop();
                    }
                }
            }
            shared.in_flight.fetch_sub(n as u64, Ordering::Relaxed);
        }
        // Release the Arc before looping so drop-detection can progress.
        drop(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_roundtrip() {
        let net: Network<u32> = Network::new(LatencyModel::zero(), 7);
        let (a, rx_a) = net.register();
        let (b, rx_b) = net.register();
        net.send(a, b, 42).unwrap();
        assert_eq!(rx_b.recv().unwrap(), Envelope { from: a, to: b, msg: 42 });
        net.send(b, a, 43).unwrap();
        assert_eq!(rx_a.recv().unwrap().msg, 43);
    }

    #[test]
    fn send_to_unknown_addr_fails() {
        let net: Network<u32> = Network::new(LatencyModel::zero(), 7);
        let (a, _rx) = net.register();
        assert_eq!(net.send(a, Addr(999), 1), Err(SendError::UnknownAddr(Addr(999))));
    }

    #[test]
    fn multicast_reaches_all_but_sender() {
        let net: Network<&'static str> = Network::new(LatencyModel::zero(), 7);
        let (a, rx_a) = net.register();
        let (b, rx_b) = net.register();
        let (c, rx_c) = net.register();
        for addr in [a, b, c] {
            net.join_group(addr, DISCOVERY_GROUP);
        }
        let n = net.multicast(a, DISCOVERY_GROUP, "who's willing?");
        assert_eq!(n, 2);
        assert_eq!(rx_b.recv().unwrap().msg, "who's willing?");
        assert_eq!(rx_c.recv().unwrap().msg, "who's willing?");
        assert!(rx_a.try_recv().is_err());
    }

    #[test]
    fn leave_group_stops_delivery() {
        let net: Network<u8> = Network::new(LatencyModel::zero(), 7);
        let (a, _rx_a) = net.register();
        let (b, rx_b) = net.register();
        net.join_group(b, DISCOVERY_GROUP);
        net.join_group(a, DISCOVERY_GROUP);
        net.leave_group(b, DISCOVERY_GROUP);
        assert_eq!(net.multicast(a, DISCOVERY_GROUP, 1), 0);
        assert!(rx_b.try_recv().is_err());
    }

    #[test]
    fn partition_drops_traffic_then_heals() {
        let net: Network<u8> = Network::new(LatencyModel::zero(), 7);
        let (a, _rx_a) = net.register();
        let (b, rx_b) = net.register();
        net.partition(b);
        net.send(a, b, 1).unwrap();
        assert!(rx_b.try_recv().is_err());
        net.heal(b);
        net.send(a, b, 2).unwrap();
        assert_eq!(rx_b.recv().unwrap().msg, 2);
        let m = net.metrics();
        assert_eq!(m.dropped, 1);
        assert_eq!(m.delivered, 1);
    }

    #[test]
    fn latency_delays_but_delivers() {
        let model =
            LatencyModel { base: Duration::from_millis(5), jitter: Duration::ZERO, drop_rate: 0.0 };
        let net: Network<u8> = Network::new(model, 7);
        let (a, _rx_a) = net.register();
        let (b, rx_b) = net.register();
        let start = Instant::now();
        net.send(a, b, 9).unwrap();
        let env = rx_b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.msg, 9);
        assert!(start.elapsed() >= Duration::from_millis(4), "delivered too early");
    }

    #[test]
    fn latency_preserves_order_for_equal_delays() {
        let model =
            LatencyModel { base: Duration::from_millis(2), jitter: Duration::ZERO, drop_rate: 0.0 };
        let net: Network<u32> = Network::new(model, 7);
        let (a, _rx_a) = net.register();
        let (b, rx_b) = net.register();
        for i in 0..20 {
            net.send(a, b, i).unwrap();
        }
        for i in 0..20 {
            assert_eq!(rx_b.recv_timeout(Duration::from_secs(2)).unwrap().msg, i);
        }
    }

    #[test]
    fn drop_rate_is_deterministic_per_seed() {
        let loses = |seed: u64| -> Vec<bool> {
            let net: Network<u8> = Network::new(LatencyModel::zero().with_drop_rate(0.5), seed);
            let (a, _rx_a) = net.register();
            let (b, rx_b) = net.register();
            (0..32)
                .map(|_| {
                    net.send(a, b, 0).unwrap();
                    rx_b.try_recv().is_err()
                })
                .collect()
        };
        assert_eq!(loses(42), loses(42));
        assert_ne!(loses(42), loses(43), "different seeds should differ");
    }

    #[test]
    fn metrics_count_sends_and_multicasts() {
        let net: Network<u8> = Network::new(LatencyModel::zero(), 7);
        let (a, _rx_a) = net.register();
        let (b, _rx_b) = net.register();
        net.join_group(a, DISCOVERY_GROUP);
        net.join_group(b, DISCOVERY_GROUP);
        net.send(a, b, 1).unwrap();
        net.multicast(a, DISCOVERY_GROUP, 2);
        let m = net.metrics();
        assert_eq!(m.sent, 2);
        assert_eq!(m.multicasts, 1);
        assert_eq!(m.delivered, 2);
    }

    #[test]
    fn drop_next_is_one_shot() {
        let net: Network<u8> = Network::new(LatencyModel::zero(), 7);
        let (a, _rx_a) = net.register();
        let (b, rx_b) = net.register();
        net.drop_next(b, 2);
        net.send(a, b, 1).unwrap();
        net.send(a, b, 2).unwrap();
        net.send(a, b, 3).unwrap();
        assert_eq!(rx_b.recv().unwrap().msg, 3);
        assert!(rx_b.try_recv().is_err());
        assert_eq!(net.metrics().dropped, 2);
        // heal_all clears pending drop counters too.
        net.drop_next(b, 5);
        net.heal_all();
        net.send(a, b, 4).unwrap();
        assert_eq!(rx_b.recv().unwrap().msg, 4);
    }

    #[test]
    fn unregister_removes_from_groups() {
        let net: Network<u8> = Network::new(LatencyModel::zero(), 7);
        let (a, _rx) = net.register();
        net.join_group(a, GroupId(3));
        net.unregister(a);
        assert!(net.group_members(GroupId(3)).is_empty());
        let (b, _rxb) = net.register();
        assert_eq!(net.send(b, a, 1), Err(SendError::UnknownAddr(a)));
    }
}
