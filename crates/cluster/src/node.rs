//! Virtual cluster nodes with resource accounting.
//!
//! A node stands in for one machine running a CNServer. Its resources are
//! what the paper's JobManager matches `task-req` blocks against: memory
//! (MB) and task slots (threads the TaskManager is willing to run).

use std::fmt;
use std::sync::Arc;

use cn_sync::Mutex;

/// Static description of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    pub name: String,
    pub memory_mb: u64,
    pub task_slots: usize,
    /// Relative CPU speed in percent of nominal (100 = a normal node).
    /// Simulated workloads scale their compute cost by [`NodeHandle::
    /// work_scale`], so a `speed_pct: 25` node takes 4x as long per task —
    /// the straggler the load-aware scheduler and work stealing exist for.
    /// Stored as an integer permille-style percentage so `NodeSpec` stays
    /// `Eq`/hashable.
    pub speed_pct: u32,
}

impl NodeSpec {
    pub fn new(name: impl Into<String>, memory_mb: u64, task_slots: usize) -> Self {
        NodeSpec { name: name.into(), memory_mb, task_slots, speed_pct: 100 }
    }

    /// Set the relative speed (percent of nominal; clamped to ≥ 1).
    pub fn with_speed_pct(mut self, speed_pct: u32) -> Self {
        self.speed_pct = speed_pct.max(1);
        self
    }

    /// A uniform fleet of `n` nodes (`node0`, `node1`, ...).
    pub fn fleet(n: usize, memory_mb: u64, task_slots: usize) -> Vec<NodeSpec> {
        (0..n).map(|i| NodeSpec::new(format!("node{i}"), memory_mb, task_slots)).collect()
    }

    /// A fleet with per-node speeds (`speeds[i]` in percent of nominal) —
    /// the skewed-node scenario of the contention benchmark.
    pub fn fleet_skewed(memory_mb: u64, task_slots: usize, speeds: &[u32]) -> Vec<NodeSpec> {
        speeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                NodeSpec::new(format!("node{i}"), memory_mb, task_slots).with_speed_pct(s)
            })
            .collect()
    }
}

/// Aggregate capacity of a cluster, used by static analysis (the
/// `cn-analysis` lint passes) to check a descriptor's declared requirements
/// against what the fleet can actually provide — before anything deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterCapacity {
    /// Number of nodes in the fleet.
    pub nodes: usize,
    /// Largest single-node memory — no task can ever need more than this.
    pub max_node_memory_mb: u64,
    /// Sum of node memories — an upper bound on concurrently resident tasks.
    pub total_memory_mb: u64,
    /// Sum of task slots — an upper bound on concurrently running tasks.
    pub total_slots: usize,
}

impl ClusterCapacity {
    /// Capacity of a uniform fleet (every node identical).
    pub fn uniform(nodes: usize, memory_mb: u64, task_slots: usize) -> Self {
        ClusterCapacity {
            nodes,
            max_node_memory_mb: if nodes == 0 { 0 } else { memory_mb },
            total_memory_mb: memory_mb * nodes as u64,
            total_slots: task_slots * nodes,
        }
    }

    /// Capacity of an arbitrary fleet.
    pub fn of(specs: &[NodeSpec]) -> Self {
        ClusterCapacity {
            nodes: specs.len(),
            max_node_memory_mb: specs.iter().map(|s| s.memory_mb).max().unwrap_or(0),
            total_memory_mb: specs.iter().map(|s| s.memory_mb).sum(),
            total_slots: specs.iter().map(|s| s.task_slots).sum(),
        }
    }
}

/// Why a reservation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    InsufficientMemory { requested_mb: u64, free_mb: u64 },
    NoFreeSlots,
    NodeDown,
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReserveError::InsufficientMemory { requested_mb, free_mb } => {
                write!(f, "insufficient memory: requested {requested_mb} MB, {free_mb} MB free")
            }
            ReserveError::NoFreeSlots => write!(f, "no free task slots"),
            ReserveError::NodeDown => write!(f, "node is down"),
        }
    }
}

impl std::error::Error for ReserveError {}

#[derive(Debug)]
struct NodeState {
    used_memory_mb: u64,
    used_slots: usize,
    alive: bool,
}

/// A shareable handle to a node's live resource state.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    spec: Arc<NodeSpec>,
    state: Arc<Mutex<NodeState>>,
}

/// RAII resource reservation: releasing happens on drop.
#[derive(Debug)]
pub struct Reservation {
    node: NodeHandle,
    memory_mb: u64,
    released: bool,
}

impl NodeHandle {
    pub fn new(spec: NodeSpec) -> Self {
        NodeHandle {
            spec: Arc::new(spec),
            state: Arc::new(Mutex::named(
                "node.state",
                NodeState { used_memory_mb: 0, used_slots: 0, alive: true },
            )),
        }
    }

    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    pub fn name(&self) -> &str {
        &self.spec.name
    }

    pub fn is_alive(&self) -> bool {
        self.state.lock().alive
    }

    /// Take the node down (failure injection). Existing reservations stay
    /// accounted; new reservations fail.
    pub fn crash(&self) {
        self.state.lock().alive = false;
    }

    /// Bring the node back.
    pub fn restart(&self) {
        let mut st = self.state.lock();
        st.alive = true;
        st.used_memory_mb = 0;
        st.used_slots = 0;
    }

    pub fn free_memory_mb(&self) -> u64 {
        let st = self.state.lock();
        self.spec.memory_mb.saturating_sub(st.used_memory_mb)
    }

    pub fn free_slots(&self) -> usize {
        let st = self.state.lock();
        self.spec.task_slots.saturating_sub(st.used_slots)
    }

    /// Can this node host a task with the given memory requirement right
    /// now? (The "willing TaskManager" check of the paper.)
    pub fn can_host(&self, memory_mb: u64) -> bool {
        let st = self.state.lock();
        st.alive
            && st.used_slots < self.spec.task_slots
            && st.used_memory_mb + memory_mb <= self.spec.memory_mb
    }

    /// Atomically reserve one slot plus `memory_mb` of memory.
    pub fn reserve(&self, memory_mb: u64) -> Result<Reservation, ReserveError> {
        let mut st = self.state.lock();
        if !st.alive {
            return Err(ReserveError::NodeDown);
        }
        if st.used_slots >= self.spec.task_slots {
            return Err(ReserveError::NoFreeSlots);
        }
        if st.used_memory_mb + memory_mb > self.spec.memory_mb {
            return Err(ReserveError::InsufficientMemory {
                requested_mb: memory_mb,
                free_mb: self.spec.memory_mb - st.used_memory_mb,
            });
        }
        st.used_memory_mb += memory_mb;
        st.used_slots += 1;
        Ok(Reservation { node: self.clone(), memory_mb, released: false })
    }

    /// Multiplier a simulated workload applies to its compute cost on this
    /// node: 1.0 at nominal speed, 4.0 on a `speed_pct: 25` straggler.
    pub fn work_scale(&self) -> f64 {
        100.0 / f64::from(self.spec.speed_pct.max(1))
    }

    /// Load factor in [0, 1]: the fraction of slots in use. JobManager
    /// selection prefers lower load.
    pub fn load(&self) -> f64 {
        if self.spec.task_slots == 0 {
            return 1.0;
        }
        self.state.lock().used_slots as f64 / self.spec.task_slots as f64
    }
}

impl Reservation {
    /// Release early (otherwise drop does it).
    pub fn release(mut self) {
        self.do_release();
    }

    fn do_release(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        let mut st = self.node.state.lock();
        st.used_memory_mb = st.used_memory_mb.saturating_sub(self.memory_mb);
        st.used_slots = st.used_slots.saturating_sub(1);
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.do_release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let node = NodeHandle::new(NodeSpec::new("n0", 2000, 2));
        assert_eq!(node.free_memory_mb(), 2000);
        let r1 = node.reserve(1000).unwrap();
        assert_eq!(node.free_memory_mb(), 1000);
        assert_eq!(node.free_slots(), 1);
        let r2 = node.reserve(500).unwrap();
        assert_eq!(node.free_slots(), 0);
        assert!(matches!(node.reserve(100), Err(ReserveError::NoFreeSlots)));
        drop(r1);
        assert_eq!(node.free_slots(), 1);
        assert_eq!(node.free_memory_mb(), 1500);
        r2.release();
        assert_eq!(node.free_memory_mb(), 2000);
    }

    #[test]
    fn memory_exhaustion() {
        let node = NodeHandle::new(NodeSpec::new("n0", 1000, 8));
        let _r = node.reserve(800).unwrap();
        match node.reserve(500) {
            Err(ReserveError::InsufficientMemory { requested_mb: 500, free_mb: 200 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crash_and_restart() {
        let node = NodeHandle::new(NodeSpec::new("n0", 1000, 1));
        let _r = node.reserve(100).unwrap();
        node.crash();
        assert!(!node.is_alive());
        assert!(matches!(node.reserve(1), Err(ReserveError::NodeDown)));
        node.restart();
        assert!(node.is_alive());
        assert_eq!(node.free_slots(), 1);
        assert_eq!(node.free_memory_mb(), 1000);
    }

    #[test]
    fn can_host_matches_reserve() {
        let node = NodeHandle::new(NodeSpec::new("n0", 1000, 1));
        assert!(node.can_host(1000));
        assert!(!node.can_host(1001));
        let _r = node.reserve(1000).unwrap();
        assert!(!node.can_host(1));
    }

    #[test]
    fn load_factor() {
        let node = NodeHandle::new(NodeSpec::new("n0", 4000, 4));
        assert_eq!(node.load(), 0.0);
        let _r1 = node.reserve(100).unwrap();
        let _r2 = node.reserve(100).unwrap();
        assert_eq!(node.load(), 0.5);
    }

    #[test]
    fn fleet_builder() {
        let fleet = NodeSpec::fleet(3, 1024, 2);
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet[2].name, "node2");
        assert_eq!(fleet[0].memory_mb, 1024);
        assert_eq!(fleet[0].speed_pct, 100);
    }

    #[test]
    fn skewed_fleet_scales_work() {
        let fleet = NodeSpec::fleet_skewed(1024, 2, &[100, 100, 25]);
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet[2].speed_pct, 25);
        let fast = NodeHandle::new(fleet[0].clone());
        let slow = NodeHandle::new(fleet[2].clone());
        assert_eq!(fast.work_scale(), 1.0);
        assert_eq!(slow.work_scale(), 4.0);
        // Zero speed clamps instead of dividing by zero.
        let n = NodeHandle::new(NodeSpec::new("z", 1, 1).with_speed_pct(0));
        assert_eq!(n.spec().speed_pct, 1);
        assert_eq!(n.work_scale(), 100.0);
    }

    #[test]
    fn capacity_of_uniform_fleet() {
        let cap = ClusterCapacity::uniform(4, 2048, 2);
        assert_eq!(cap.nodes, 4);
        assert_eq!(cap.max_node_memory_mb, 2048);
        assert_eq!(cap.total_memory_mb, 8192);
        assert_eq!(cap.total_slots, 8);
        assert_eq!(ClusterCapacity::uniform(0, 2048, 2).max_node_memory_mb, 0);
    }

    #[test]
    fn capacity_of_mixed_fleet() {
        let specs = vec![NodeSpec::new("big", 8000, 4), NodeSpec::new("small", 1000, 1)];
        let cap = ClusterCapacity::of(&specs);
        assert_eq!(cap.nodes, 2);
        assert_eq!(cap.max_node_memory_mb, 8000);
        assert_eq!(cap.total_memory_mb, 9000);
        assert_eq!(cap.total_slots, 5);
        assert_eq!(
            ClusterCapacity::of(&NodeSpec::fleet(3, 1024, 2)),
            ClusterCapacity::uniform(3, 1024, 2)
        );
        assert_eq!(ClusterCapacity::of(&[]).nodes, 0);
    }

    #[test]
    fn handles_share_state() {
        let node = NodeHandle::new(NodeSpec::new("n0", 1000, 1));
        let clone = node.clone();
        let _r = node.reserve(500).unwrap();
        assert_eq!(clone.free_memory_mb(), 500);
    }
}
