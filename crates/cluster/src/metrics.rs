//! Lightweight atomic counters for the network fabric and runtime benches.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters, updated lock-free on the hot send/deliver paths.
#[derive(Debug, Default)]
pub struct NetworkMetrics {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    multicasts: AtomicU64,
}

impl NetworkMetrics {
    #[inline]
    pub fn record_send(&self) {
        self.sent.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_delivery(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_multicast(&self) {
        self.multicasts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            multicasts: self.multicasts.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub sent: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub multicasts: u64,
}

impl MetricsSnapshot {
    /// Fraction of sent messages that were lost.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    /// Counter-wise difference (for measuring a window of activity).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            sent: self.sent - earlier.sent,
            delivered: self.delivered - earlier.delivered,
            dropped: self.dropped - earlier.dropped,
            multicasts: self.multicasts - earlier.multicasts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NetworkMetrics::default();
        m.record_send();
        m.record_send();
        m.record_delivery();
        m.record_drop();
        m.record_multicast();
        let s = m.snapshot();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.multicasts, 1);
    }

    #[test]
    fn loss_rate() {
        let s = MetricsSnapshot { sent: 10, delivered: 7, dropped: 3, multicasts: 0 };
        assert!((s.loss_rate() - 0.3).abs() < 1e-9);
        assert_eq!(MetricsSnapshot::default().loss_rate(), 0.0);
    }

    #[test]
    fn delta() {
        let a = MetricsSnapshot { sent: 5, delivered: 4, dropped: 1, multicasts: 2 };
        let b = MetricsSnapshot { sent: 9, delivered: 7, dropped: 2, multicasts: 2 };
        let d = b.delta_since(&a);
        assert_eq!(d, MetricsSnapshot { sent: 4, delivered: 3, dropped: 1, multicasts: 0 });
    }

    #[test]
    fn concurrent_updates() {
        let m = std::sync::Arc::new(NetworkMetrics::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_send();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().sent, 4000);
    }
}
