//! Network counters, backed by the `cn-observe` metrics registry.
//!
//! This module used to carry its own `AtomicU64` plumbing; the counters now
//! live in [`cn_observe::metrics`] so `cnctl stats` and the bench harness
//! see them alongside every other runtime metric. The original call-site
//! API (`record_*`, [`NetworkMetrics::snapshot`], [`MetricsSnapshot`]) is
//! unchanged, and the counters stay always-on: fabric accounting does not
//! depend on whether span tracing is enabled.

use cn_observe::{Counter, Registry};

/// Shared counters, updated lock-free on the hot send/deliver paths.
#[derive(Debug, Clone)]
pub struct NetworkMetrics {
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
    multicasts: Counter,
}

impl Default for NetworkMetrics {
    fn default() -> Self {
        NetworkMetrics {
            sent: Counter::standalone(),
            delivered: Counter::standalone(),
            dropped: Counter::standalone(),
            multicasts: Counter::standalone(),
        }
    }
}

impl NetworkMetrics {
    /// Counters registered in `registry` under the `net.*` names, so a
    /// recorder-aware fabric shares them with the rest of the stack.
    pub fn registered(registry: &Registry) -> NetworkMetrics {
        NetworkMetrics {
            sent: registry.counter("net.sent"),
            delivered: registry.counter("net.delivered"),
            dropped: registry.counter("net.dropped"),
            multicasts: registry.counter("net.multicasts"),
        }
    }

    #[inline]
    pub fn record_send(&self) {
        self.sent.inc();
    }

    #[inline]
    pub fn record_delivery(&self) {
        self.delivered.inc();
    }

    #[inline]
    pub fn record_drop(&self) {
        self.dropped.inc();
    }

    #[inline]
    pub fn record_multicast(&self) {
        self.multicasts.inc();
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sent: self.sent.get(),
            delivered: self.delivered.get(),
            dropped: self.dropped.get(),
            multicasts: self.multicasts.get(),
        }
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub sent: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub multicasts: u64,
}

impl MetricsSnapshot {
    /// Fraction of sent messages that were lost.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    /// Counter-wise difference (for measuring a window of activity).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            sent: self.sent - earlier.sent,
            delivered: self.delivered - earlier.delivered,
            dropped: self.dropped - earlier.dropped,
            multicasts: self.multicasts - earlier.multicasts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NetworkMetrics::default();
        m.record_send();
        m.record_send();
        m.record_delivery();
        m.record_drop();
        m.record_multicast();
        let s = m.snapshot();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.multicasts, 1);
    }

    #[test]
    fn registered_counters_surface_in_the_registry() {
        let registry = Registry::new();
        let m = NetworkMetrics::registered(&registry);
        m.record_send();
        m.record_drop();
        let snap = registry.snapshot();
        let get = |name: &str| snap.counters.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("net.sent"), 1);
        assert_eq!(get("net.dropped"), 1);
        assert_eq!(get("net.delivered"), 0);
        // The NetworkMetrics view and the registry view are the same cells.
        assert_eq!(m.snapshot().sent, 1);
    }

    #[test]
    fn loss_rate() {
        let s = MetricsSnapshot { sent: 10, delivered: 7, dropped: 3, multicasts: 0 };
        assert!((s.loss_rate() - 0.3).abs() < 1e-9);
        assert_eq!(MetricsSnapshot::default().loss_rate(), 0.0);
    }

    #[test]
    fn delta() {
        let a = MetricsSnapshot { sent: 5, delivered: 4, dropped: 1, multicasts: 2 };
        let b = MetricsSnapshot { sent: 9, delivered: 7, dropped: 2, multicasts: 2 };
        let d = b.delta_since(&a);
        assert_eq!(d, MetricsSnapshot { sent: 4, delivered: 3, dropped: 1, multicasts: 0 });
    }

    #[test]
    fn concurrent_updates() {
        let m = std::sync::Arc::new(NetworkMetrics::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_send();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().sent, 4000);
    }
}
