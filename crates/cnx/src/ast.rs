//! The CNX descriptor AST, mirroring Figure 2 of the paper.
//!
//! Parsed nodes carry a [`Span`] pointing back at the source text; spans are
//! deliberately excluded from equality so descriptors compare structurally
//! (parse → write → parse round-trips stay `==`).

use std::fmt;
use std::str::FromStr;

use crate::span::Span;

/// How a task is executed by its TaskManager.
///
/// The paper's descriptors use `RUN_AS_THREAD_IN_TM` ("TaskManager ... then
/// executes each Task in a separate thread"); `RUN_AS_PROCESS` is the
/// process-isolated variant the CN code base also names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RunModel {
    #[default]
    RunAsThreadInTm,
    RunAsProcess,
}

impl RunModel {
    pub fn as_str(self) -> &'static str {
        match self {
            RunModel::RunAsThreadInTm => "RUN_AS_THREAD_IN_TM",
            RunModel::RunAsProcess => "RUN_AS_PROCESS",
        }
    }
}

impl fmt::Display for RunModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for RunModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "RUN_AS_THREAD_IN_TM" => Ok(RunModel::RunAsThreadInTm),
            "RUN_AS_PROCESS" => Ok(RunModel::RunAsProcess),
            other => Err(format!("unknown run model {other:?}")),
        }
    }
}

/// Parameter types as they appear in CNX (`<param type="Integer">`).
///
/// Tagged values in the UML model use the Java class names
/// (`java.lang.Integer`); [`ParamType::parse`] normalizes both spellings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParamType {
    Str,
    Integer,
    Long,
    Double,
    Boolean,
    Other(String),
}

impl ParamType {
    /// Accepts both the CNX short names and the `java.lang.*` spellings the
    /// tagged values use.
    pub fn parse(s: &str) -> ParamType {
        match s.strip_prefix("java.lang.").unwrap_or(s) {
            "String" => ParamType::Str,
            "Integer" => ParamType::Integer,
            "Long" => ParamType::Long,
            "Double" => ParamType::Double,
            "Boolean" => ParamType::Boolean,
            other => ParamType::Other(other.to_string()),
        }
    }

    /// The CNX short name.
    pub fn as_str(&self) -> &str {
        match self {
            ParamType::Str => "String",
            ParamType::Integer => "Integer",
            ParamType::Long => "Long",
            ParamType::Double => "Double",
            ParamType::Boolean => "Boolean",
            ParamType::Other(s) => s,
        }
    }
}

impl fmt::Display for ParamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed task parameter.
#[derive(Debug, Clone, Eq)]
pub struct Param {
    pub ty: ParamType,
    pub value: String,
    /// Where the `<param>` element starts in the source (excluded from `==`).
    pub span: Span,
}

impl PartialEq for Param {
    fn eq(&self, other: &Self) -> bool {
        self.ty == other.ty && self.value == other.value
    }
}

impl Param {
    pub fn new(ty: ParamType, value: impl Into<String>) -> Self {
        Param { ty, value: value.into(), span: Span::synthetic() }
    }

    pub fn string(value: impl Into<String>) -> Self {
        Param::new(ParamType::Str, value)
    }

    pub fn integer(value: i64) -> Self {
        Param::new(ParamType::Integer, value.to_string())
    }

    /// Parse the value according to its declared type; `None` if malformed.
    pub fn as_i64(&self) -> Option<i64> {
        matches!(self.ty, ParamType::Integer | ParamType::Long)
            .then(|| self.value.parse().ok())
            .flatten()
    }
}

/// The `task-req` block: resource requirements the JobManager matches
/// against willing TaskManagers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskReq {
    /// Memory requirement in MB (`<memory>1000</memory>`).
    pub memory_mb: u64,
    pub runmodel: RunModel,
    /// Any additional requirement elements, preserved verbatim.
    pub extras: Vec<(String, String)>,
}

impl Default for TaskReq {
    fn default() -> Self {
        TaskReq { memory_mb: 1000, runmodel: RunModel::RunAsThreadInTm, extras: Vec::new() }
    }
}

/// One `<task>` element.
#[derive(Debug, Clone, Eq)]
pub struct Task {
    pub name: String,
    pub jar: String,
    pub class: String,
    /// Names of tasks this one depends on (`depends="tctask1,tctask2"`).
    pub depends: Vec<String>,
    pub req: TaskReq,
    pub params: Vec<Param>,
    /// Dynamic-invocation multiplicity (Figure 5 extension): when set, the
    /// runtime expands this task into N instances at execution time.
    pub multiplicity: Option<String>,
    /// Where the `<task>` element starts in the source (excluded from `==`).
    pub span: Span,
}

impl PartialEq for Task {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.jar == other.jar
            && self.class == other.class
            && self.depends == other.depends
            && self.req == other.req
            && self.params == other.params
            && self.multiplicity == other.multiplicity
    }
}

impl Task {
    pub fn new(name: impl Into<String>, jar: impl Into<String>, class: impl Into<String>) -> Self {
        Task {
            name: name.into(),
            jar: jar.into(),
            class: class.into(),
            depends: Vec::new(),
            req: TaskReq::default(),
            params: Vec::new(),
            multiplicity: None,
            span: Span::synthetic(),
        }
    }

    pub fn depends_on(mut self, deps: &[&str]) -> Self {
        self.depends = deps.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_param(mut self, p: Param) -> Self {
        self.params.push(p);
        self
    }

    pub fn with_memory(mut self, mb: u64) -> Self {
        self.req.memory_mb = mb;
        self
    }
}

/// One `<job>` element — an ordered set of tasks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Job {
    pub tasks: Vec<Task>,
}

impl Job {
    pub fn task(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

/// The `<client>` element.
#[derive(Debug, Clone, Eq)]
pub struct Client {
    /// Generated client class name (`class="TransClosure"`).
    pub class: String,
    /// Log file name (`log="CN_Client....log"`).
    pub log: Option<String>,
    /// Client port.
    pub port: Option<u16>,
    pub jobs: Vec<Job>,
    /// Where the `<client>` element starts in the source (excluded from `==`).
    pub span: Span,
}

impl PartialEq for Client {
    fn eq(&self, other: &Self) -> bool {
        self.class == other.class
            && self.log == other.log
            && self.port == other.port
            && self.jobs == other.jobs
    }
}

impl Client {
    pub fn new(class: impl Into<String>) -> Self {
        Client {
            class: class.into(),
            log: None,
            port: None,
            jobs: Vec::new(),
            span: Span::synthetic(),
        }
    }
}

/// A complete `<cn2>` descriptor document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnxDocument {
    pub client: Client,
}

impl CnxDocument {
    pub fn new(client: Client) -> Self {
        CnxDocument { client }
    }

    /// Total number of tasks across all jobs.
    pub fn task_count(&self) -> usize {
        self.client.jobs.iter().map(|j| j.tasks.len()).sum()
    }
}

/// Build the descriptor of the paper's Figure 2: the transitive-closure
/// client with `workers` TCTask workers (the paper shows 5), a splitter and
/// a joiner.
///
/// Note: the paper's listing contains an apparent typo — `tctask1` is shown
/// with `depends="tctask1"` (itself). Every other worker depends on
/// `tctask0` (the splitter), so we generate the evidently intended
/// dependency. EXPERIMENTS.md records the deviation.
pub fn figure2_descriptor(workers: usize) -> CnxDocument {
    let mut job = Job::default();
    job.tasks.push(
        Task::new("tctask0", "tasksplit.jar", "org.jhpc.cn2.transcloser.TaskSplit")
            .with_param(Param::string("matrix.txt")),
    );
    for i in 1..=workers {
        job.tasks.push(
            Task::new(format!("tctask{i}"), "tctask.jar", "org.jhpc.cn2.trnsclsrtask.TCTask")
                .depends_on(&["tctask0"])
                .with_param(Param::integer(i as i64)),
        );
    }
    let worker_names: Vec<String> = (1..=workers).map(|i| format!("tctask{i}")).collect();
    let mut join = Task::new("tctask999", "taskjoin.jar", "org.jhpc.cn2.transcloser.TaskJoin")
        .with_param(Param::string("matrix.txt"));
    join.depends = worker_names;
    job.tasks.push(join);

    let mut client = Client::new("TransClosure");
    client.log = Some("CN_Client1047909210005.log".to_string());
    client.port = Some(5666);
    client.jobs.push(job);
    CnxDocument::new(client)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runmodel_roundtrip() {
        assert_eq!("RUN_AS_THREAD_IN_TM".parse::<RunModel>().unwrap(), RunModel::RunAsThreadInTm);
        assert_eq!("RUN_AS_PROCESS".parse::<RunModel>().unwrap(), RunModel::RunAsProcess);
        assert!("THREADS".parse::<RunModel>().is_err());
        assert_eq!(RunModel::RunAsThreadInTm.to_string(), "RUN_AS_THREAD_IN_TM");
    }

    #[test]
    fn param_type_normalizes_java_names() {
        assert_eq!(ParamType::parse("java.lang.Integer"), ParamType::Integer);
        assert_eq!(ParamType::parse("Integer"), ParamType::Integer);
        assert_eq!(ParamType::parse("java.lang.String"), ParamType::Str);
        assert_eq!(
            ParamType::parse("com.example.Custom"),
            ParamType::Other("com.example.Custom".into())
        );
    }

    #[test]
    fn param_typed_accessors() {
        assert_eq!(Param::integer(5).as_i64(), Some(5));
        assert_eq!(Param::string("x").as_i64(), None);
        assert_eq!(Param::new(ParamType::Integer, "oops").as_i64(), None);
    }

    #[test]
    fn figure2_shape() {
        let doc = figure2_descriptor(5);
        assert_eq!(doc.client.class, "TransClosure");
        assert_eq!(doc.client.port, Some(5666));
        assert_eq!(doc.task_count(), 7);
        let job = &doc.client.jobs[0];
        assert_eq!(job.task("tctask0").unwrap().depends.len(), 0);
        assert_eq!(job.task("tctask3").unwrap().depends, vec!["tctask0"]);
        let join = job.task("tctask999").unwrap();
        assert_eq!(join.depends.len(), 5);
        assert_eq!(join.class, "org.jhpc.cn2.transcloser.TaskJoin");
        assert_eq!(job.task("tctask2").unwrap().params[0], Param::integer(2));
    }

    #[test]
    fn default_req_matches_paper() {
        let req = TaskReq::default();
        assert_eq!(req.memory_mb, 1000);
        assert_eq!(req.runmodel, RunModel::RunAsThreadInTm);
    }
}
