//! CNX parsing: XML text → [`CnxDocument`].

use std::fmt;

use cn_xml::{Document, NodeId};

use crate::ast::{Client, CnxDocument, Job, Param, ParamType, RunModel, Task, TaskReq};
use crate::span::Span;

/// Parse failure (either XML-level or CNX-structure-level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnxParseError {
    pub msg: String,
    /// Where the problem was detected, when known.
    pub span: Option<Span>,
}

impl CnxParseError {
    fn new(msg: impl Into<String>) -> Self {
        CnxParseError { msg: msg.into(), span: None }
    }

    fn at(msg: impl Into<String>, span: Span) -> Self {
        CnxParseError { msg: msg.into(), span: Some(span) }
    }
}

impl fmt::Display for CnxParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "CNX parse error at {span}: {}", self.msg),
            None => write!(f, "CNX parse error: {}", self.msg),
        }
    }
}

impl std::error::Error for CnxParseError {}

/// Parse a descriptor from XML text.
pub fn parse_cnx(src: &str) -> Result<CnxDocument, CnxParseError> {
    let doc =
        cn_xml::parse(src).map_err(|e| CnxParseError::at(e.kind.to_string(), e.pos.into()))?;
    parse_cnx_doc(&doc)
}

/// Parse a descriptor from an already-built DOM (e.g. the output of the
/// XMI2CNX transform).
pub fn parse_cnx_doc(doc: &Document) -> Result<CnxDocument, CnxParseError> {
    let root = doc.root_element().ok_or_else(|| CnxParseError::new("empty document"))?;
    if !doc.name(root).is_some_and(|n| n.is("cn2")) {
        return Err(CnxParseError::new(format!(
            "root element is <{}>, expected <cn2>",
            doc.name(root).map(|n| n.as_str()).unwrap_or("?")
        )));
    }
    let client_el = doc
        .first_child_named(root, "client")
        .ok_or_else(|| CnxParseError::new("<cn2> has no <client>"))?;
    let class = doc
        .attr(client_el, "class")
        .ok_or_else(|| CnxParseError::new("<client> missing class="))?
        .to_string();
    let mut client = Client::new(class);
    client.span = doc.node_pos(client_el).into();
    client.log = doc.attr(client_el, "log").map(str::to_string);
    client.port = match doc.attr(client_el, "port") {
        Some(p) => Some(p.parse::<u16>().map_err(|_| {
            CnxParseError::at(format!("bad port {p:?}"), doc.node_pos(client_el).into())
        })?),
        None => None,
    };

    for job_el in doc.children_named(client_el, "job") {
        let mut job = Job::default();
        for task_el in doc.children_named(job_el, "task") {
            job.tasks.push(parse_task(doc, task_el)?);
        }
        client.jobs.push(job);
    }
    if client.jobs.is_empty() {
        return Err(CnxParseError::new("<client> has no <job>"));
    }
    Ok(CnxDocument::new(client))
}

fn parse_task(doc: &Document, el: NodeId) -> Result<Task, CnxParseError> {
    let span: crate::span::Span = doc.node_pos(el).into();
    let name = doc
        .attr(el, "name")
        .ok_or_else(|| CnxParseError::at("<task> missing name=", span))?
        .to_string();
    let jar = doc
        .attr(el, "jar")
        .ok_or_else(|| CnxParseError::at(format!("task {name:?} missing jar="), span))?
        .to_string();
    let class = doc
        .attr(el, "class")
        .ok_or_else(|| CnxParseError::at(format!("task {name:?} missing class="), span))?
        .to_string();
    let mut task = Task::new(name.clone(), jar, class);
    task.span = span;
    task.depends = doc
        .attr(el, "depends")
        .unwrap_or("")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    task.multiplicity = doc.attr(el, "multiplicity").map(str::to_string);

    if let Some(req_el) = doc.first_child_named(el, "task-req") {
        let mut req = TaskReq::default();
        for child in doc.child_elements(req_el) {
            let cname = doc.name(child).unwrap().as_str().to_string();
            let text = doc.text_content(child);
            match cname.as_str() {
                "memory" => {
                    req.memory_mb = text.trim().parse::<u64>().map_err(|_| {
                        CnxParseError::at(
                            format!("task {name:?}: bad memory {text:?}"),
                            doc.node_pos(child).into(),
                        )
                    })?;
                }
                "runmodel" => {
                    req.runmodel = text.trim().parse::<RunModel>().map_err(|e| {
                        CnxParseError::at(format!("task {name:?}: {e}"), doc.node_pos(child).into())
                    })?;
                }
                other => req.extras.push((other.to_string(), text.trim().to_string())),
            }
        }
        task.req = req;
    }

    for param_el in doc.children_named(el, "param") {
        let ty = ParamType::parse(doc.attr(param_el, "type").unwrap_or("String"));
        let mut param = Param::new(ty, doc.text_content(param_el));
        param.span = doc.node_pos(param_el).into();
        task.params.push(param);
    }
    Ok(task)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 listing (elided middle workers restored, and the
    /// apparent `tctask1 depends="tctask1"` typo corrected to `tctask0`).
    pub const FIGURE2: &str = r#"<?xml version="1.0"?>
<cn2>
<client class="TransClosure" log="CN_Client1047909210005.log" port="5666">
<job>
<task name="tctask0" jar="tasksplit.jar"
class="org.jhpc.cn2.transcloser.TaskSplit" depends="">
<task-req>
<memory>1000</memory>
<runmodel>RUN_AS_THREAD_IN_TM</runmodel>
</task-req>
<param type="String">matrix.txt</param>
</task>
<task name="tctask1" jar="tctask.jar"
class="org.jhpc.cn2.trnsclsrtask.TCTask" depends="tctask0">
<param type="Integer">1</param>
<task-req>
<memory>1000</memory>
<runmodel>RUN_AS_THREAD_IN_TM</runmodel>
</task-req>
</task>
<task name="tctask5" jar="tctask.jar"
class="org.jhpc.cn2.trnsclsrtask.TCTask" depends="tctask0">
<param type="Integer">5</param>
<task-req>
<memory>1000</memory>
<runmodel>RUN_AS_THREAD_IN_TM</runmodel>
</task-req>
</task>
<task name="tctask999" jar="taskjoin.jar"
class="org.jhpc.cn2.transcloser.TaskJoin"
depends="tctask1,tctask2,tctask3,tctask4,tctask5">
<task-req>
<memory>1000</memory>
<runmodel>RUN_AS_THREAD_IN_TM</runmodel>
</task-req>
<param type="String">matrix.txt</param>
</task>
</job>
</client>
</cn2>"#;

    #[test]
    fn parses_figure2_listing() {
        let doc = parse_cnx(FIGURE2).unwrap();
        assert_eq!(doc.client.class, "TransClosure");
        assert_eq!(doc.client.log.as_deref(), Some("CN_Client1047909210005.log"));
        assert_eq!(doc.client.port, Some(5666));
        let job = &doc.client.jobs[0];
        assert_eq!(job.tasks.len(), 4);
        let t0 = job.task("tctask0").unwrap();
        assert_eq!(t0.jar, "tasksplit.jar");
        assert_eq!(t0.req.memory_mb, 1000);
        assert_eq!(t0.req.runmodel, RunModel::RunAsThreadInTm);
        assert_eq!(t0.params, vec![Param::string("matrix.txt")]);
        assert!(t0.depends.is_empty());
        let join = job.task("tctask999").unwrap();
        assert_eq!(join.depends.len(), 5);
        assert_eq!(join.depends[2], "tctask3");
    }

    #[test]
    fn parsed_tasks_carry_spans() {
        let doc = parse_cnx(FIGURE2).unwrap();
        let job = &doc.client.jobs[0];
        let t0 = job.task("tctask0").unwrap();
        // <task name="tctask0"> opens on line 5 of the FIGURE2 listing.
        assert_eq!(t0.span.line, 5);
        assert!(!t0.span.is_synthetic());
        assert_eq!(t0.params[0].span.line, 11);
        let t1 = job.task("tctask1").unwrap();
        assert!(t1.span > t0.span);
        assert!(!doc.client.span.is_synthetic());
        assert_eq!(doc.client.span.line, 3);
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let parsed = parse_cnx(FIGURE2).unwrap();
        let mut resynth = parsed.clone();
        for job in &mut resynth.client.jobs {
            for t in &mut job.tasks {
                t.span = crate::span::Span::synthetic();
                for p in &mut t.params {
                    p.span = crate::span::Span::synthetic();
                }
            }
        }
        resynth.client.span = crate::span::Span::synthetic();
        assert_eq!(parsed, resynth);
    }

    #[test]
    fn parse_errors_carry_spans() {
        let err = parse_cnx("<cn2>\n  <client class=\"C\" port=\"banana\"><job/></client>\n</cn2>")
            .unwrap_err();
        assert_eq!(err.span.map(|s| s.line), Some(2));
        let err = parse_cnx(
            "<cn2><client class=\"C\"><job>\n<task jar=\"j\" class=\"K\"/>\n</job></client></cn2>",
        )
        .unwrap_err();
        assert_eq!(err.span.map(|s| s.line), Some(2));
        // XML-level failures point at the malformed construct too.
        let err = parse_cnx("<cn2>\n  <client class=C></client>\n</cn2>").unwrap_err();
        assert!(err.span.is_some());
    }

    #[test]
    fn depends_parsing_handles_spacing_and_empty() {
        let doc = parse_cnx(
            r#"<cn2><client class="C"><job>
                <task name="a" jar="j" class="K" depends=" x , y ,"/>
                <task name="b" jar="j" class="K"/>
            </job></client></cn2>"#,
        )
        .unwrap();
        let job = &doc.client.jobs[0];
        assert_eq!(job.task("a").unwrap().depends, vec!["x", "y"]);
        assert!(job.task("b").unwrap().depends.is_empty());
    }

    #[test]
    fn multiplicity_extension_parses() {
        let doc = parse_cnx(
            r#"<cn2><client class="C"><job>
                <task name="w" jar="j" class="K" multiplicity="*"/>
            </job></client></cn2>"#,
        )
        .unwrap();
        assert_eq!(doc.client.jobs[0].tasks[0].multiplicity.as_deref(), Some("*"));
    }

    #[test]
    fn extra_requirements_preserved() {
        let doc = parse_cnx(
            r#"<cn2><client class="C"><job>
                <task name="a" jar="j" class="K">
                  <task-req><memory>2000</memory><cpus>4</cpus></task-req>
                </task>
            </job></client></cn2>"#,
        )
        .unwrap();
        let t = &doc.client.jobs[0].tasks[0];
        assert_eq!(t.req.memory_mb, 2000);
        assert_eq!(t.req.extras, vec![("cpus".to_string(), "4".to_string())]);
    }

    #[test]
    fn error_cases() {
        assert!(parse_cnx("<notcn2/>").is_err());
        assert!(parse_cnx("<cn2/>").is_err());
        assert!(parse_cnx(r#"<cn2><client class="C"/></cn2>"#).is_err());
        assert!(parse_cnx(r#"<cn2><client><job/></client></cn2>"#).is_err());
        assert!(parse_cnx(r#"<cn2><client class="C" port="99999"><job/></client></cn2>"#).is_err());
        assert!(parse_cnx(
            r#"<cn2><client class="C"><job><task name="a" jar="j" class="K">
               <task-req><memory>lots</memory></task-req></task></job></client></cn2>"#
        )
        .is_err());
        assert!(parse_cnx(
            r#"<cn2><client class="C"><job><task name="a" jar="j" class="K">
               <task-req><runmodel>WEIRD</runmodel></task-req></task></job></client></cn2>"#
        )
        .is_err());
        assert!(parse_cnx(
            r#"<cn2><client class="C"><job><task jar="j" class="K"/></job></client></cn2>"#
        )
        .is_err());
    }

    #[test]
    fn multiple_jobs() {
        let doc = parse_cnx(
            r#"<cn2><client class="C">
                <job><task name="a" jar="j" class="K"/></job>
                <job><task name="b" jar="j" class="K"/></job>
            </client></cn2>"#,
        )
        .unwrap();
        assert_eq!(doc.client.jobs.len(), 2);
        assert_eq!(doc.task_count(), 2);
    }
}
