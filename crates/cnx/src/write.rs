//! CNX serialization in the paper's Figure 2 shape.

use cn_xml::{Document, WriteOptions};

use crate::ast::{CnxDocument, Task};

/// Serialize to the canonical pretty-printed text form.
pub fn write_cnx(doc: &CnxDocument) -> String {
    cn_xml::write_document(&write_cnx_doc(doc), &WriteOptions::default())
}

/// Build the XML DOM for a descriptor.
pub fn write_cnx_doc(cnx: &CnxDocument) -> Document {
    let mut doc = Document::new();
    let root = doc.add_element(doc.document_node(), "cn2");
    let client = doc.add_element(root, "client");
    doc.set_attr(client, "class", &cnx.client.class);
    if let Some(log) = &cnx.client.log {
        doc.set_attr(client, "log", log);
    }
    if let Some(port) = cnx.client.port {
        doc.set_attr(client, "port", port.to_string());
    }
    for job in &cnx.client.jobs {
        let job_el = doc.add_element(client, "job");
        for task in &job.tasks {
            write_task(&mut doc, job_el, task);
        }
    }
    doc
}

fn write_task(doc: &mut Document, parent: cn_xml::NodeId, task: &Task) {
    let el = doc.add_element(parent, "task");
    doc.set_attr(el, "name", &task.name);
    doc.set_attr(el, "jar", &task.jar);
    doc.set_attr(el, "class", &task.class);
    doc.set_attr(el, "depends", task.depends.join(","));
    if let Some(m) = &task.multiplicity {
        doc.set_attr(el, "multiplicity", m);
    }
    let req = doc.add_element(el, "task-req");
    let memory = doc.add_element(req, "memory");
    doc.add_text(memory, task.req.memory_mb.to_string());
    let runmodel = doc.add_element(req, "runmodel");
    doc.add_text(runmodel, task.req.runmodel.as_str());
    for (name, value) in &task.req.extras {
        let extra = doc.add_element(req, name.as_str());
        doc.add_text(extra, value.as_str());
    }
    for param in &task.params {
        let p = doc.add_element(el, "param");
        doc.set_attr(p, "type", param.ty.as_str());
        doc.add_text(p, param.value.as_str());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::figure2_descriptor;
    use crate::parse::parse_cnx;

    #[test]
    fn figure2_roundtrip() {
        let original = figure2_descriptor(5);
        let text = write_cnx(&original);
        let reparsed = parse_cnx(&text).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn output_has_figure2_vocabulary() {
        let text = write_cnx(&figure2_descriptor(5));
        assert!(text.contains("<cn2>"));
        assert!(text.contains(r#"client class="TransClosure""#));
        assert!(text.contains(r#"port="5666""#));
        assert!(text.contains(r#"name="tctask0" jar="tasksplit.jar""#));
        assert!(text.contains("<memory>1000</memory>"));
        assert!(text.contains("<runmodel>RUN_AS_THREAD_IN_TM</runmodel>"));
        assert!(text.contains(r#"<param type="String">matrix.txt</param>"#));
        assert!(text.contains(r#"depends="tctask1,tctask2,tctask3,tctask4,tctask5""#));
    }

    #[test]
    fn empty_depends_written_as_empty_attr() {
        let text = write_cnx(&figure2_descriptor(1));
        assert!(text.contains(r#"depends="""#));
    }

    #[test]
    fn multiplicity_written() {
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[1].multiplicity = Some("*".to_string());
        let text = write_cnx(&doc);
        assert!(text.contains(r#"multiplicity="*""#));
        let back = parse_cnx(&text).unwrap();
        assert_eq!(back.client.jobs[0].tasks[1].multiplicity.as_deref(), Some("*"));
    }

    #[test]
    fn extras_roundtrip() {
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[0].req.extras.push(("cpus".into(), "4".into()));
        let back = parse_cnx(&write_cnx(&doc)).unwrap();
        assert_eq!(
            back.client.jobs[0].tasks[0].req.extras,
            vec![("cpus".to_string(), "4".to_string())]
        );
    }
}
