//! Semantic validation of CNX descriptors, run before deployment.

use std::fmt;

use crate::ast::CnxDocument;
use crate::graph::{DependencyGraph, GraphError};

/// Validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CnxValidationError {
    NoJobs,
    EmptyJob { job_index: usize },
    EmptyField { task: String, field: &'static str },
    ZeroMemory { task: String },
    BadMultiplicity { task: String, multiplicity: String },
    Graph { job_index: usize, error: GraphError },
}

impl fmt::Display for CnxValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnxValidationError::NoJobs => write!(f, "client declares no jobs"),
            CnxValidationError::EmptyJob { job_index } => {
                write!(f, "job #{job_index} has no tasks")
            }
            CnxValidationError::EmptyField { task, field } => {
                write!(f, "task {task:?} has an empty {field}")
            }
            CnxValidationError::ZeroMemory { task } => {
                write!(f, "task {task:?} requests zero memory")
            }
            CnxValidationError::BadMultiplicity { task, multiplicity } => {
                write!(f, "task {task:?} has invalid multiplicity {multiplicity:?} (expected '*' or a positive integer)")
            }
            CnxValidationError::Graph { job_index, error } => {
                write!(f, "job #{job_index}: {error}")
            }
        }
    }
}

impl std::error::Error for CnxValidationError {}

/// Validate a descriptor; first error wins (use [`validate_all`] for the
/// full list).
pub fn validate(doc: &CnxDocument) -> Result<(), CnxValidationError> {
    match validate_all(doc).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Collect every validation problem.
pub fn validate_all(doc: &CnxDocument) -> Vec<CnxValidationError> {
    let mut errors = Vec::new();
    if doc.client.jobs.is_empty() {
        errors.push(CnxValidationError::NoJobs);
    }
    for (job_index, job) in doc.client.jobs.iter().enumerate() {
        if job.tasks.is_empty() {
            errors.push(CnxValidationError::EmptyJob { job_index });
            continue;
        }
        for t in &job.tasks {
            if t.name.trim().is_empty() {
                errors.push(CnxValidationError::EmptyField { task: t.name.clone(), field: "name" });
            }
            if t.jar.trim().is_empty() {
                errors.push(CnxValidationError::EmptyField { task: t.name.clone(), field: "jar" });
            }
            if t.class.trim().is_empty() {
                errors
                    .push(CnxValidationError::EmptyField { task: t.name.clone(), field: "class" });
            }
            if t.req.memory_mb == 0 {
                errors.push(CnxValidationError::ZeroMemory { task: t.name.clone() });
            }
            if let Some(m) = &t.multiplicity {
                if !multiplicity_is_valid(m) {
                    errors.push(CnxValidationError::BadMultiplicity {
                        task: t.name.clone(),
                        multiplicity: m.clone(),
                    });
                }
            }
        }
        if let Err(error) = DependencyGraph::build(job) {
            errors.push(CnxValidationError::Graph { job_index, error });
        }
    }
    errors
}

/// Strict multiplicity syntax: `*` or a positive decimal integer, nothing
/// else. `u64::from_str` alone is too lenient — it accepts a leading `+`
/// (`"+3"`), and callers that trim first would accept `" 3"` — and those
/// spellings never appear in CNX descriptors, so they are almost certainly
/// typos worth rejecting.
pub fn multiplicity_is_valid(m: &str) -> bool {
    if m == "*" {
        return true;
    }
    !m.is_empty()
        && m.bytes().all(|b| b.is_ascii_digit())
        && m.parse::<u64>().map(|n| n > 0).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{figure2_descriptor, Client, CnxDocument, Job, Task};

    #[test]
    fn figure2_is_valid() {
        assert!(validate(&figure2_descriptor(5)).is_ok());
    }

    #[test]
    fn no_jobs_rejected() {
        let doc = CnxDocument::new(Client::new("C"));
        assert_eq!(validate(&doc), Err(CnxValidationError::NoJobs));
    }

    #[test]
    fn empty_job_rejected() {
        let mut client = Client::new("C");
        client.jobs.push(Job::default());
        let errs = validate_all(&CnxDocument::new(client));
        assert!(errs.contains(&CnxValidationError::EmptyJob { job_index: 0 }));
    }

    #[test]
    fn empty_fields_rejected() {
        let mut client = Client::new("C");
        let mut job = Job::default();
        job.tasks.push(Task::new("t", "", ""));
        client.jobs.push(job);
        let errs = validate_all(&CnxDocument::new(client));
        assert!(errs
            .iter()
            .any(|e| matches!(e, CnxValidationError::EmptyField { field: "jar", .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, CnxValidationError::EmptyField { field: "class", .. })));
    }

    #[test]
    fn zero_memory_rejected() {
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[0].req.memory_mb = 0;
        let errs = validate_all(&doc);
        assert!(errs.iter().any(|e| matches!(e, CnxValidationError::ZeroMemory { .. })));
    }

    #[test]
    fn bad_multiplicity_rejected() {
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[1].multiplicity = Some("-3".to_string());
        let errs = validate_all(&doc);
        assert!(errs.iter().any(|e| matches!(e, CnxValidationError::BadMultiplicity { .. })));
        doc.client.jobs[0].tasks[1].multiplicity = Some("*".to_string());
        assert!(validate(&doc).is_ok());
        doc.client.jobs[0].tasks[1].multiplicity = Some("8".to_string());
        assert!(validate(&doc).is_ok());
        doc.client.jobs[0].tasks[1].multiplicity = Some("0".to_string());
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn multiplicity_rejects_lenient_integer_spellings() {
        // `u64::from_str` accepts "+3"; a trimming caller would accept " 3".
        // Neither is valid CNX multiplicity syntax.
        for bad in ["+3", " 3", "3 ", "03x", "3.0", "", "  ", "**", "+0", "１"] {
            let mut doc = figure2_descriptor(1);
            doc.client.jobs[0].tasks[1].multiplicity = Some(bad.to_string());
            assert!(validate(&doc).is_err(), "multiplicity {bad:?} should be rejected");
        }
        for good in ["*", "1", "8", "42", "007"] {
            let mut doc = figure2_descriptor(1);
            doc.client.jobs[0].tasks[1].multiplicity = Some(good.to_string());
            assert!(validate(&doc).is_ok(), "multiplicity {good:?} should pass");
        }
    }

    #[test]
    fn multiplicity_helper_is_strict() {
        assert!(multiplicity_is_valid("*"));
        assert!(multiplicity_is_valid("5"));
        assert!(!multiplicity_is_valid("+5"));
        assert!(!multiplicity_is_valid(" 5"));
        assert!(!multiplicity_is_valid("0"));
        assert!(!multiplicity_is_valid("-1"));
        assert!(!multiplicity_is_valid(""));
        // 20-digit overflow of u64 must not panic, just fail.
        assert!(!multiplicity_is_valid("99999999999999999999"));
    }

    #[test]
    fn graph_errors_surface_with_job_index() {
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[1].depends = vec!["ghost".to_string()];
        let errs = validate_all(&doc);
        assert!(errs.iter().any(|e| matches!(e, CnxValidationError::Graph { job_index: 0, .. })));
    }
}
