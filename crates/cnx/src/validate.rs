//! Semantic validation of CNX descriptors, run before deployment.

use std::fmt;

use crate::ast::CnxDocument;
use crate::graph::{DependencyGraph, GraphError};

/// Validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CnxValidationError {
    NoJobs,
    EmptyJob { job_index: usize },
    EmptyField { task: String, field: &'static str },
    ZeroMemory { task: String },
    BadMultiplicity { task: String, multiplicity: String },
    Graph { job_index: usize, error: GraphError },
}

impl fmt::Display for CnxValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnxValidationError::NoJobs => write!(f, "client declares no jobs"),
            CnxValidationError::EmptyJob { job_index } => {
                write!(f, "job #{job_index} has no tasks")
            }
            CnxValidationError::EmptyField { task, field } => {
                write!(f, "task {task:?} has an empty {field}")
            }
            CnxValidationError::ZeroMemory { task } => {
                write!(f, "task {task:?} requests zero memory")
            }
            CnxValidationError::BadMultiplicity { task, multiplicity } => {
                write!(f, "task {task:?} has invalid multiplicity {multiplicity:?} (expected '*' or a positive integer)")
            }
            CnxValidationError::Graph { job_index, error } => {
                write!(f, "job #{job_index}: {error}")
            }
        }
    }
}

impl std::error::Error for CnxValidationError {}

/// Validate a descriptor; first error wins (use [`validate_all`] for the
/// full list).
pub fn validate(doc: &CnxDocument) -> Result<(), CnxValidationError> {
    match validate_all(doc).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Collect every validation problem.
pub fn validate_all(doc: &CnxDocument) -> Vec<CnxValidationError> {
    let mut errors = Vec::new();
    if doc.client.jobs.is_empty() {
        errors.push(CnxValidationError::NoJobs);
    }
    for (job_index, job) in doc.client.jobs.iter().enumerate() {
        if job.tasks.is_empty() {
            errors.push(CnxValidationError::EmptyJob { job_index });
            continue;
        }
        for t in &job.tasks {
            if t.name.trim().is_empty() {
                errors.push(CnxValidationError::EmptyField { task: t.name.clone(), field: "name" });
            }
            if t.jar.trim().is_empty() {
                errors.push(CnxValidationError::EmptyField { task: t.name.clone(), field: "jar" });
            }
            if t.class.trim().is_empty() {
                errors
                    .push(CnxValidationError::EmptyField { task: t.name.clone(), field: "class" });
            }
            if t.req.memory_mb == 0 {
                errors.push(CnxValidationError::ZeroMemory { task: t.name.clone() });
            }
            if let Some(m) = &t.multiplicity {
                let ok = m == "*" || m.parse::<u64>().map(|n| n > 0).unwrap_or(false);
                if !ok {
                    errors.push(CnxValidationError::BadMultiplicity {
                        task: t.name.clone(),
                        multiplicity: m.clone(),
                    });
                }
            }
        }
        if let Err(error) = DependencyGraph::build(job) {
            errors.push(CnxValidationError::Graph { job_index, error });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{figure2_descriptor, Client, CnxDocument, Job, Task};

    #[test]
    fn figure2_is_valid() {
        assert!(validate(&figure2_descriptor(5)).is_ok());
    }

    #[test]
    fn no_jobs_rejected() {
        let doc = CnxDocument::new(Client::new("C"));
        assert_eq!(validate(&doc), Err(CnxValidationError::NoJobs));
    }

    #[test]
    fn empty_job_rejected() {
        let mut client = Client::new("C");
        client.jobs.push(Job::default());
        let errs = validate_all(&CnxDocument::new(client));
        assert!(errs.contains(&CnxValidationError::EmptyJob { job_index: 0 }));
    }

    #[test]
    fn empty_fields_rejected() {
        let mut client = Client::new("C");
        let mut job = Job::default();
        job.tasks.push(Task::new("t", "", ""));
        client.jobs.push(job);
        let errs = validate_all(&CnxDocument::new(client));
        assert!(errs
            .iter()
            .any(|e| matches!(e, CnxValidationError::EmptyField { field: "jar", .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, CnxValidationError::EmptyField { field: "class", .. })));
    }

    #[test]
    fn zero_memory_rejected() {
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[0].req.memory_mb = 0;
        let errs = validate_all(&doc);
        assert!(errs.iter().any(|e| matches!(e, CnxValidationError::ZeroMemory { .. })));
    }

    #[test]
    fn bad_multiplicity_rejected() {
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[1].multiplicity = Some("-3".to_string());
        let errs = validate_all(&doc);
        assert!(errs.iter().any(|e| matches!(e, CnxValidationError::BadMultiplicity { .. })));
        doc.client.jobs[0].tasks[1].multiplicity = Some("*".to_string());
        assert!(validate(&doc).is_ok());
        doc.client.jobs[0].tasks[1].multiplicity = Some("8".to_string());
        assert!(validate(&doc).is_ok());
        doc.client.jobs[0].tasks[1].multiplicity = Some("0".to_string());
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn graph_errors_surface_with_job_index() {
        let mut doc = figure2_descriptor(1);
        doc.client.jobs[0].tasks[1].depends = vec!["ghost".to_string()];
        let errs = validate_all(&doc);
        assert!(errs
            .iter()
            .any(|e| matches!(e, CnxValidationError::Graph { job_index: 0, .. })));
    }
}
