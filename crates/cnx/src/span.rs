//! Source spans threaded from the XML layer into the CNX AST.
//!
//! Every AST node produced by [`crate::parse`] carries the position of the
//! XML construct it came from, so downstream diagnostics (the `cn-analysis`
//! lint engine, `cnctl lint`) can point at the offending line. AST nodes
//! built programmatically sit at [`Span::synthetic`], and spans never
//! participate in equality: `parse(write(doc)) == doc` holds regardless of
//! where the nodes came from.

use std::fmt;

use cn_xml::Pos;

/// A location in CNX source text: 1-based line/column plus the 0-based byte
/// offset. The all-zero value marks synthetic (programmatically built) nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
    pub offset: usize,
}

impl Span {
    /// The span of a node that has no source text (built in code, not parsed).
    pub const fn synthetic() -> Span {
        Span { line: 0, col: 0, offset: 0 }
    }

    pub fn new(line: u32, col: u32, offset: usize) -> Span {
        Span { line, col, offset }
    }

    /// True for nodes that were never parsed from text.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }
}

impl From<Pos> for Span {
    fn from(p: Pos) -> Span {
        Span { line: p.line, col: p.col, offset: p.offset }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            f.write_str("<builtin>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_span_displays_as_builtin() {
        assert_eq!(Span::synthetic().to_string(), "<builtin>");
        assert!(Span::synthetic().is_synthetic());
    }

    #[test]
    fn real_span_displays_line_col() {
        let s = Span::new(12, 3, 400);
        assert_eq!(s.to_string(), "12:3");
        assert!(!s.is_synthetic());
    }

    #[test]
    fn spans_order_by_position() {
        let a = Span::new(1, 5, 4);
        let b = Span::new(2, 1, 20);
        let c = Span::new(2, 9, 28);
        assert!(a < b && b < c);
    }

    #[test]
    fn from_pos_copies_fields() {
        let p = Pos { line: 7, col: 2, offset: 99 };
        let s: Span = p.into();
        assert_eq!((s.line, s.col, s.offset), (7, 2, 99));
    }
}
