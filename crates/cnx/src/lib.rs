//! CNX — the XML compositional language of the CN framework.
//!
//! "CNX (XML) is a compositional language that captures the details of the
//! client program" (paper, Figure 1). A CNX *client descriptor* (Figure 2)
//! declares a client, its jobs, and for each task: `name`, `jar`, `class`,
//! `depends`, a `task-req` block (`memory`, `runmodel`) and typed `param`s.
//!
//! This crate provides:
//!
//! * the descriptor AST ([`ast`]),
//! * XML parsing ([`parse`]) and serialization ([`write`]) in the exact
//!   Figure 2 shape,
//! * semantic validation ([`validate`]): unique names, resolvable and
//!   acyclic `depends`, well-formed requirements,
//! * dependency-graph analytics ([`graph`]): topological order, execution
//!   waves, critical path — the ordering information the CN runtime
//!   schedules by.

pub mod ast;
pub mod graph;
pub mod parse;
pub mod span;
pub mod validate;
pub mod write;

pub use ast::{Client, CnxDocument, Job, Param, ParamType, RunModel, Task, TaskReq};
pub use graph::{DependencyGraph, GraphError};
pub use parse::{parse_cnx, parse_cnx_doc, CnxParseError};
pub use span::Span;
pub use validate::{multiplicity_is_valid, validate, validate_all, CnxValidationError};
pub use write::{write_cnx, write_cnx_doc};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_validate_write_roundtrip() {
        let src = r#"<cn2><client class="C"><job>
            <task name="a" jar="a.jar" class="A" depends=""/>
            <task name="b" jar="b.jar" class="B" depends="a"/>
        </job></client></cn2>"#;
        let doc = parse_cnx(src).unwrap();
        validate(&doc).unwrap();
        let text = write_cnx(&doc);
        let doc2 = parse_cnx(&text).unwrap();
        assert_eq!(doc, doc2);
    }
}
