//! Dependency-graph analytics over a CNX job.
//!
//! "a computational job typically consists of one or more concurrent tasks
//! whose dependencies form a directed acyclic graph" (paper Section 4). The
//! CN runtime schedules by this DAG: a task may start once everything in its
//! `depends` list has terminated. [`DependencyGraph`] exposes the orderings
//! the scheduler and the analytics need.

use std::collections::HashMap;
use std::fmt;

use crate::ast::Job;

/// Graph construction/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    UnknownDependency { task: String, depends_on: String },
    Cycle(Vec<String>),
    DuplicateTask(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownDependency { task, depends_on } => {
                write!(f, "task {task:?} depends on unknown task {depends_on:?}")
            }
            GraphError::Cycle(names) => write!(f, "dependency cycle: {}", names.join(" -> ")),
            GraphError::DuplicateTask(name) => write!(f, "duplicate task name {name:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable dependency DAG over task indices.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    names: Vec<String>,
    /// `deps[i]` = indices task `i` depends on.
    deps: Vec<Vec<usize>>,
    /// `rdeps[i]` = indices that depend on task `i`.
    rdeps: Vec<Vec<usize>>,
}

impl DependencyGraph {
    /// Build from a job, validating name resolution and acyclicity.
    pub fn build(job: &Job) -> Result<DependencyGraph, GraphError> {
        let mut index: HashMap<&str, usize> = HashMap::with_capacity(job.tasks.len());
        for (i, t) in job.tasks.iter().enumerate() {
            if index.insert(t.name.as_str(), i).is_some() {
                return Err(GraphError::DuplicateTask(t.name.clone()));
            }
        }
        let mut deps = vec![Vec::new(); job.tasks.len()];
        let mut rdeps = vec![Vec::new(); job.tasks.len()];
        for (i, t) in job.tasks.iter().enumerate() {
            for d in &t.depends {
                let &j = index.get(d.as_str()).ok_or_else(|| GraphError::UnknownDependency {
                    task: t.name.clone(),
                    depends_on: d.clone(),
                })?;
                deps[i].push(j);
                rdeps[j].push(i);
            }
        }
        let g = DependencyGraph {
            names: job.tasks.iter().map(|t| t.name.clone()).collect(),
            deps,
            rdeps,
        };
        if let Some(cycle) = g.find_cycle() {
            return Err(GraphError::Cycle(cycle));
        }
        Ok(g)
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    pub fn dependencies(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    pub fn dependents(&self, i: usize) -> &[usize] {
        &self.rdeps[i]
    }

    /// Tasks with no dependencies (runnable immediately).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.deps[i].is_empty()).collect()
    }

    /// Tasks nothing depends on (the job is done when these finish).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.rdeps[i].is_empty()).collect()
    }

    /// Kahn topological order (stable: ties broken by task index).
    pub fn topological_order(&self) -> Vec<usize> {
        let mut indegree: Vec<usize> = self.deps.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = self.roots();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(self.len());
        // `ready` kept sorted by draining from the front.
        let mut at = 0;
        while at < ready.len() {
            let n = ready[at];
            at += 1;
            order.push(n);
            let mut newly: Vec<usize> = Vec::new();
            for &m in &self.rdeps[n] {
                indegree[m] -= 1;
                if indegree[m] == 0 {
                    newly.push(m);
                }
            }
            newly.sort_unstable();
            ready.extend(newly);
        }
        order
    }

    /// Execution waves: wave k contains tasks whose longest dependency chain
    /// has length k. All tasks in a wave can run concurrently — this is the
    /// fork/join structure the activity diagram draws.
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let order = self.topological_order();
        let mut level = vec![0usize; self.len()];
        for &i in &order {
            level[i] = self.deps[i].iter().map(|&d| level[d] + 1).max().unwrap_or(0);
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut waves = vec![Vec::new(); max_level + 1];
        for (i, &l) in level.iter().enumerate() {
            waves[l].push(i);
        }
        if self.is_empty() {
            waves.clear();
        }
        waves
    }

    /// Length (in tasks) of the longest dependency chain — the critical
    /// path, i.e. the minimum number of sequential steps.
    pub fn critical_path_len(&self) -> usize {
        self.waves().len()
    }

    /// The widest wave — the maximum achievable parallelism.
    pub fn max_parallelism(&self) -> usize {
        self.waves().iter().map(Vec::len).max().unwrap_or(0)
    }

    fn find_cycle(&self) -> Option<Vec<String>> {
        // Shared deterministic cycle search: the smallest cycle (in the
        // `depends` direction) is reported first, so cnx and model
        // diagnostics agree on the same culprit.
        let cycle = cn_graph::shortest_cycle(&self.deps)?;
        Some(cycle.into_iter().map(|i| self.names[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{figure2_descriptor, Job, Task};

    fn job(specs: &[(&str, &[&str])]) -> Job {
        let mut job = Job::default();
        for (name, deps) in specs {
            job.tasks.push(Task::new(*name, "j.jar", "K").depends_on(deps));
        }
        job
    }

    #[test]
    fn figure2_graph_analytics() {
        let doc = figure2_descriptor(5);
        let g = DependencyGraph::build(&doc.client.jobs[0]).unwrap();
        assert_eq!(g.len(), 7);
        assert_eq!(g.roots(), vec![0]); // the splitter
        assert_eq!(g.leaves(), vec![6]); // the joiner
        let waves = g.waves();
        assert_eq!(waves.len(), 3); // split | workers | join
        assert_eq!(waves[0].len(), 1);
        assert_eq!(waves[1].len(), 5);
        assert_eq!(waves[2].len(), 1);
        assert_eq!(g.critical_path_len(), 3);
        assert_eq!(g.max_parallelism(), 5);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let g = DependencyGraph::build(&job(&[
            ("d", &["b", "c"]),
            ("b", &["a"]),
            ("c", &["a"]),
            ("a", &[]),
        ]))
        .unwrap();
        let order = g.topological_order();
        let pos = |name: &str| order.iter().position(|&i| g.name(i) == name).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("a") < pos("c"));
        assert!(pos("b") < pos("d"));
        assert!(pos("c") < pos("d"));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn unknown_dependency_rejected() {
        let err = DependencyGraph::build(&job(&[("a", &["ghost"])])).unwrap_err();
        assert!(matches!(err, GraphError::UnknownDependency { .. }));
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        // The paper's Figure 2 literally prints `tctask1 depends="tctask1"`;
        // our validator classifies that as a cycle (see EXPERIMENTS.md).
        let err = DependencyGraph::build(&job(&[("tctask1", &["tctask1"])])).unwrap_err();
        assert!(matches!(err, GraphError::Cycle(_)));
    }

    #[test]
    fn longer_cycle_detected_with_path() {
        let err = DependencyGraph::build(&job(&[("a", &["c"]), ("b", &["a"]), ("c", &["b"])]))
            .unwrap_err();
        match err {
            GraphError::Cycle(names) => {
                assert!(names.len() >= 3);
                assert_eq!(names.first(), names.last());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn smallest_cycle_reported_first() {
        // A 3-cycle (a,b,c) plus a 2-cycle (x,y): diagnostics must name the
        // 2-cycle, and deterministically so.
        let spec: &[(&str, &[&str])] =
            &[("a", &["c"]), ("b", &["a"]), ("c", &["b"]), ("x", &["y"]), ("y", &["x"])];
        let err = DependencyGraph::build(&job(spec)).unwrap_err();
        match err {
            GraphError::Cycle(names) => {
                assert_eq!(names, vec!["x", "y", "x"]);
            }
            other => panic!("{other:?}"),
        }
        let first = DependencyGraph::build(&job(spec)).unwrap_err();
        for _ in 0..5 {
            assert_eq!(DependencyGraph::build(&job(spec)).unwrap_err(), first);
        }
    }

    #[test]
    fn duplicate_task_rejected() {
        let err = DependencyGraph::build(&job(&[("a", &[]), ("a", &[])])).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateTask(_)));
    }

    #[test]
    fn diamond_waves() {
        let g = DependencyGraph::build(&job(&[
            ("a", &[]),
            ("b", &["a"]),
            ("c", &["a"]),
            ("d", &["b", "c"]),
        ]))
        .unwrap();
        let waves = g.waves();
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[1].len(), 2);
        assert_eq!(g.max_parallelism(), 2);
    }

    #[test]
    fn chain_has_no_parallelism() {
        let g = DependencyGraph::build(&job(&[("a", &[]), ("b", &["a"]), ("c", &["b"])])).unwrap();
        assert_eq!(g.critical_path_len(), 3);
        assert_eq!(g.max_parallelism(), 1);
    }

    #[test]
    fn empty_job() {
        let g = DependencyGraph::build(&Job::default()).unwrap();
        assert!(g.is_empty());
        assert!(g.waves().is_empty());
        assert_eq!(g.critical_path_len(), 0);
    }

    #[test]
    fn independent_tasks_form_one_wave() {
        let g = DependencyGraph::build(&job(&[("a", &[]), ("b", &[]), ("c", &[])])).unwrap();
        assert_eq!(g.waves(), vec![vec![0, 1, 2]]);
        assert_eq!(g.max_parallelism(), 3);
    }
}
