//! The `std::net` fabric: TCP unicast + UDP discovery over localhost.
//!
//! One [`SocketFabric`] per OS process. Every endpoint registered on it
//! shares the process's TCP listener; the listener port is encoded in the
//! high bits of each [`Addr`], which is what routes a message to the right
//! process. Unicast frames travel over one length-prefixed TCP connection
//! per peer (writes are serialized per connection, so per-peer delivery
//! order matches send order). Multicast (the CN discovery group) travels
//! as UDP datagrams — either to a real multicast group or, in loopback
//! mode, unicast to each configured peer port.
//!
//! Faults are first-class: connects and reads have timeouts, connects are
//! retried with bounded exponential backoff, and every drop, timeout and
//! reconnect lands in the flight recorder with a `wire.*` counter.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_cluster::{Addr, Envelope, GroupId, SendError};
use cn_observe::{Counter, Recorder, Severity, SpanId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::codec::{decode_payload, encode_frame, encode_payload, WireEncode, MAX_FRAME_BYTES};
use crate::{addr_group, addr_port, group_addr, is_group_addr, Fabric, ADDR_PORT_SHIFT};

/// How the discovery group reaches other processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Discovery {
    /// Real UDP multicast: every process joins `group:port` (with
    /// `SO_REUSEADDR` so they can share the port on one host).
    Multicast { group: Ipv4Addr, port: u16 },
    /// Loopback fallback: discovery datagrams are unicast to each peer's
    /// port on 127.0.0.1 (the peer list is the deployment's "subnet").
    Loopback { peers: Vec<u16> },
}

/// The default multicast group for CN discovery (site-local scope).
pub const DEFAULT_MULTICAST_GROUP: Ipv4Addr = Ipv4Addr::new(239, 77, 7, 7);
/// The default UDP port the discovery group shares in multicast mode.
pub const DEFAULT_MULTICAST_PORT: u16 = 47077;

/// Socket fabric tuning.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// TCP listen port (0 picks an ephemeral port).
    pub port: u16,
    pub discovery: Discovery,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Deadline for reading the rest of a frame once its header arrived,
    /// and for blocking writes.
    pub read_timeout: Duration,
    /// Extra connect attempts after the first fails.
    pub max_retries: u32,
    /// Backoff before retry N is `retry_base * 2^(N-1)`, capped at 1s.
    pub retry_base: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            port: 0,
            discovery: Discovery::Loopback { peers: Vec::new() },
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            max_retries: 3,
            retry_base: Duration::from_millis(50),
        }
    }
}

/// How often blocked reads/accepts wake up to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// Backoff cap between connect retries.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

struct WireCounters {
    frames_sent: Counter,
    frames_recv: Counter,
    bytes_sent: Counter,
    bytes_recv: Counter,
    connects: Counter,
    reconnects: Counter,
    retries: Counter,
    timeouts: Counter,
    drops: Counter,
    decode_errors: Counter,
    discovery_dgrams: Counter,
}

impl WireCounters {
    fn new(rec: &Recorder) -> WireCounters {
        WireCounters {
            frames_sent: rec.counter("wire.frames_sent"),
            frames_recv: rec.counter("wire.frames_recv"),
            bytes_sent: rec.counter("wire.bytes_sent"),
            bytes_recv: rec.counter("wire.bytes_recv"),
            connects: rec.counter("wire.connects"),
            reconnects: rec.counter("wire.reconnects"),
            retries: rec.counter("wire.connect_retries"),
            timeouts: rec.counter("wire.timeouts"),
            drops: rec.counter("wire.drops"),
            decode_errors: rec.counter("wire.decode_errors"),
            discovery_dgrams: rec.counter("wire.discovery_dgrams"),
        }
    }
}

struct Conn {
    stream: Arc<Mutex<TcpStream>>,
    span: Option<SpanId>,
}

struct Inner<M> {
    port: u16,
    cfg: WireConfig,
    rec: Recorder,
    c: WireCounters,
    endpoints: Mutex<HashMap<u64, Sender<Envelope<M>>>>,
    groups: Mutex<HashMap<u32, HashSet<Addr>>>,
    /// Outbound connections, one per peer port. All writes to a peer go
    /// through its single stream, serialized by the mutex — that is the
    /// per-peer ordering guarantee.
    conns: Mutex<HashMap<u16, Conn>>,
    /// Serializes connection establishment so two senders racing to the
    /// same (new) peer cannot create two streams and reorder their frames.
    connect_lock: Mutex<()>,
    udp: UdpSocket,
    next_ep: AtomicU64,
    stop: AtomicBool,
}

/// A real-socket [`Fabric`]. One per process; see the module docs.
pub struct SocketFabric<M: WireEncode + Send + Clone + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: WireEncode + Send + Clone + 'static> SocketFabric<M> {
    /// Bind the TCP listener and discovery socket, start the accept and
    /// discovery threads.
    pub fn new(cfg: WireConfig, rec: Recorder) -> std::io::Result<SocketFabric<M>> {
        let listener = TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, cfg.port))?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let udp = match &cfg.discovery {
            Discovery::Multicast { group, port: mc_port } => {
                let sock = bind_reuse(*mc_port).or_else(|_| {
                    UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, *mc_port))
                })?;
                sock.join_multicast_v4(group, &Ipv4Addr::UNSPECIFIED)?;
                sock.set_multicast_loop_v4(true)?;
                sock
            }
            // Loopback mode: the discovery socket shares the TCP port
            // number (different protocol, so no clash) — peers only need
            // to know one port per process.
            Discovery::Loopback { .. } => {
                UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))?
            }
        };
        udp.set_read_timeout(Some(POLL_INTERVAL))?;
        let inner = Arc::new(Inner {
            port,
            c: WireCounters::new(&rec),
            rec,
            cfg,
            endpoints: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            connect_lock: Mutex::new(()),
            udp: udp.try_clone()?,
            next_ep: AtomicU64::new(1),
            stop: AtomicBool::new(false),
        });
        spawn_accept_loop(Arc::clone(&inner), listener);
        spawn_udp_loop(Arc::clone(&inner), udp);
        Ok(SocketFabric { inner })
    }

    /// The bound TCP port (the process's identity on the wire).
    pub fn port(&self) -> u16 {
        self.inner.port
    }

    /// Stop the background threads and close all connections. Idempotent;
    /// also invoked when the fabric is dropped.
    pub fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut conns = self.inner.conns.lock();
        for (_, conn) in conns.drain() {
            self.inner.rec.span_end(conn.span);
            let _ = conn.stream.lock().shutdown(std::net::Shutdown::Both);
        }
    }
}

impl<M: WireEncode + Send + Clone + 'static> Drop for SocketFabric<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<M: WireEncode + Send + Clone + 'static> Fabric<M> for SocketFabric<M> {
    fn register(&self) -> (Addr, Receiver<Envelope<M>>) {
        let ep = self.inner.next_ep.fetch_add(1, Ordering::Relaxed);
        let addr = Addr(((self.inner.port as u64) << ADDR_PORT_SHIFT) | ep);
        let (tx, rx) = unbounded();
        self.inner.endpoints.lock().insert(addr.0, tx);
        (addr, rx)
    }

    fn unregister(&self, addr: Addr) {
        self.inner.endpoints.lock().remove(&addr.0);
        for members in self.inner.groups.lock().values_mut() {
            members.remove(&addr);
        }
    }

    fn join_group(&self, addr: Addr, group: GroupId) {
        self.inner.groups.lock().entry(group.0).or_default().insert(addr);
    }

    fn leave_group(&self, addr: Addr, group: GroupId) {
        if let Some(members) = self.inner.groups.lock().get_mut(&group.0) {
            members.remove(&addr);
        }
    }

    fn send(&self, from: Addr, to: Addr, msg: M) -> Result<(), SendError> {
        if is_group_addr(to) {
            self.inner.do_multicast(from, addr_group(to), msg);
            return Ok(());
        }
        if addr_port(to) == self.inner.port {
            return self.inner.deliver_local(Envelope { from, to, msg });
        }
        let frame = encode_frame(&Envelope { from, to, msg });
        self.inner.send_frame(addr_port(to), &frame, to)
    }

    fn multicast(&self, from: Addr, group: GroupId, msg: M) -> usize {
        self.inner.do_multicast(from, group, msg)
    }

    fn recorder(&self) -> &Recorder {
        &self.inner.rec
    }

    fn shared_memory(&self) -> bool {
        false
    }
}

impl<M: WireEncode + Send + Clone + 'static> Inner<M> {
    fn deliver_local(&self, env: Envelope<M>) -> Result<(), SendError> {
        let to = env.to;
        let tx = self.endpoints.lock().get(&to.0).cloned();
        match tx {
            Some(tx) => {
                if tx.send(env).is_err() {
                    self.endpoints.lock().remove(&to.0);
                    return Err(SendError::Closed(to));
                }
                Ok(())
            }
            None => Err(SendError::UnknownAddr(to)),
        }
    }

    /// Deliver an envelope that arrived off the wire. Unknown endpoints
    /// are counted, not errors — the sender is in another process.
    fn dispatch(&self, env: Envelope<M>) {
        self.c.frames_recv.inc();
        if is_group_addr(env.to) {
            // Our own discovery datagram echoed back (multicast loop is on
            // so *other* processes on this host hear us): local members
            // already got a direct delivery at send time.
            if addr_port(env.from) == self.port {
                return;
            }
            let gid = addr_group(env.to);
            let members: Vec<Addr> = self
                .groups
                .lock()
                .get(&gid.0)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            for to in members {
                if to == env.from {
                    continue;
                }
                let _ = self.deliver_local(Envelope { from: env.from, to, msg: env.msg.clone() });
            }
            return;
        }
        if self.deliver_local(env).is_err() {
            self.c.drops.inc();
        }
    }

    fn do_multicast(&self, from: Addr, group: GroupId, msg: M) -> usize {
        let members: Vec<Addr> = self
            .groups
            .lock()
            .get(&group.0)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut count = 0;
        for to in members {
            if to == from {
                continue;
            }
            count += 1;
            let _ = self.deliver_local(Envelope { from, to, msg: msg.clone() });
        }
        let payload = encode_payload(&Envelope { from, to: group_addr(group), msg });
        match &self.cfg.discovery {
            Discovery::Multicast { group: g, port } => {
                if self.udp.send_to(&payload, SocketAddrV4::new(*g, *port)).is_ok() {
                    self.c.discovery_dgrams.inc();
                    count += 1;
                }
            }
            Discovery::Loopback { peers } => {
                for p in peers {
                    if *p == self.port {
                        continue;
                    }
                    if self
                        .udp
                        .send_to(&payload, SocketAddrV4::new(Ipv4Addr::LOCALHOST, *p))
                        .is_ok()
                    {
                        self.c.discovery_dgrams.inc();
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Write one frame to a peer, reconnecting once if the connection
    /// died underneath us.
    fn send_frame(&self, port: u16, frame: &[u8], to: Addr) -> Result<(), SendError> {
        let mut reconnected = false;
        loop {
            let stream = self.get_conn(port, to)?;
            let res = {
                let mut s = stream.lock();
                s.write_all(frame)
            };
            match res {
                Ok(()) => {
                    self.c.frames_sent.inc();
                    self.c.bytes_sent.add(frame.len() as u64);
                    return Ok(());
                }
                Err(err) => {
                    self.drop_conn(port, &format!("write failed: {err}"));
                    if reconnected {
                        return Err(
                            if err.kind() == std::io::ErrorKind::TimedOut
                                || err.kind() == std::io::ErrorKind::WouldBlock
                            {
                                self.c.timeouts.inc();
                                SendError::Timeout(to)
                            } else {
                                SendError::PeerClosed(to)
                            },
                        );
                    }
                    self.c.reconnects.inc();
                    self.rec.event_with(Severity::Warn, "wire", None, || {
                        format!("reconnecting to peer :{port} after write failure")
                    });
                    reconnected = true;
                }
            }
        }
    }

    fn get_conn(&self, port: u16, to: Addr) -> Result<Arc<Mutex<TcpStream>>, SendError> {
        if let Some(c) = self.conns.lock().get(&port) {
            return Ok(Arc::clone(&c.stream));
        }
        let _guard = self.connect_lock.lock();
        // Double-check: another sender may have connected while we waited.
        if let Some(c) = self.conns.lock().get(&port) {
            return Ok(Arc::clone(&c.stream));
        }
        let target = SocketAddr::from(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
        let mut delay = self.cfg.retry_base;
        let mut last_timeout = false;
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.c.retries.inc();
                std::thread::sleep(delay);
                delay = (delay * 2).min(MAX_BACKOFF);
            }
            match TcpStream::connect_timeout(&target, self.cfg.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(self.cfg.read_timeout));
                    self.c.connects.inc();
                    let span = self.rec.span_start("wire", &format!("conn:{port}"), None);
                    let arc = Arc::new(Mutex::new(stream));
                    self.conns.lock().insert(port, Conn { stream: Arc::clone(&arc), span });
                    return Ok(arc);
                }
                Err(err) => {
                    last_timeout = err.kind() == std::io::ErrorKind::TimedOut;
                    self.rec.event_with(Severity::Warn, "wire", None, || {
                        format!(
                            "connect to :{port} failed (attempt {}/{}): {err}",
                            attempt + 1,
                            self.cfg.max_retries + 1
                        )
                    });
                }
            }
        }
        self.c.drops.inc();
        Err(if last_timeout {
            self.c.timeouts.inc();
            SendError::Timeout(to)
        } else {
            SendError::ConnectFailed(to)
        })
    }

    fn drop_conn(&self, port: u16, why: &str) {
        if let Some(conn) = self.conns.lock().remove(&port) {
            self.rec.span_end(conn.span);
            let _ = conn.stream.lock().shutdown(std::net::Shutdown::Both);
            self.rec.event_with(Severity::Warn, "wire", None, || {
                format!("dropped conn :{port}: {why}")
            });
        }
    }
}

/// Create a UDP socket bound to `0.0.0.0:port` with `SO_REUSEADDR`, so
/// several processes on one host can share the discovery port. `std::net`
/// cannot set socket options before bind, so this goes through the libc
/// already linked into every Rust binary.
#[cfg(unix)]
fn bind_reuse(port: u16) -> std::io::Result<UdpSocket> {
    use std::os::fd::FromRawFd;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    unsafe {
        let fd = socket(AF_INET, SOCK_DGRAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one as *const i32 as *const u8, 4) < 0 {
            let err = std::io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        let sa = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: 0, // INADDR_ANY
            sin_zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
            let err = std::io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        Ok(UdpSocket::from_raw_fd(fd))
    }
}

#[cfg(not(unix))]
fn bind_reuse(port: u16) -> std::io::Result<UdpSocket> {
    UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, port))
}

fn spawn_accept_loop<M: WireEncode + Send + Clone + 'static>(
    inner: Arc<Inner<M>>,
    listener: TcpListener,
) {
    std::thread::Builder::new()
        .name(format!("cn-wire-accept-{}", inner.port))
        .spawn(move || loop {
            if inner.stop.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                    let inner2 = Arc::clone(&inner);
                    let _ = std::thread::Builder::new()
                        .name(format!("cn-wire-read-{}", inner.port))
                        .spawn(move || read_loop(inner2, stream));
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(POLL_INTERVAL.min(Duration::from_millis(5)));
                }
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        })
        .expect("spawn wire accept thread");
}

/// Outcome of filling a buffer from a stream.
enum ReadOutcome {
    Full,
    /// Clean EOF before any byte of this buffer arrived.
    Eof,
    /// Deadline passed mid-buffer.
    TimedOut,
    Error(std::io::Error),
    Stopped,
}

fn read_full<M: WireEncode + Send + Clone + 'static>(
    inner: &Inner<M>,
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Option<Instant>,
) -> ReadOutcome {
    let mut read = 0;
    while read < buf.len() {
        if inner.stop.load(Ordering::Relaxed) {
            return ReadOutcome::Stopped;
        }
        match stream.read(&mut buf[read..]) {
            Ok(0) => return if read == 0 { ReadOutcome::Eof } else { ReadOutcome::TimedOut },
            Ok(n) => read += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        return ReadOutcome::TimedOut;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return ReadOutcome::Error(e),
        }
    }
    ReadOutcome::Full
}

/// Per-inbound-connection frame reader.
fn read_loop<M: WireEncode + Send + Clone + 'static>(inner: Arc<Inner<M>>, mut stream: TcpStream) {
    loop {
        let mut header = [0u8; 4];
        // Idle waiting for the next frame is unbounded; only the frame
        // body has a read deadline.
        match read_full(&inner, &mut stream, &mut header, None) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Stopped => return,
            ReadOutcome::TimedOut => {
                inner.c.timeouts.inc();
                inner.rec.event_with(Severity::Warn, "wire", None, || {
                    "inbound frame header timed out mid-read".to_string()
                });
                return;
            }
            ReadOutcome::Error(e) => {
                inner.rec.event_with(Severity::Warn, "wire", None, || {
                    format!("inbound connection error: {e}")
                });
                return;
            }
        }
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME_BYTES {
            inner.c.decode_errors.inc();
            inner.rec.event_with(Severity::Error, "wire", None, || {
                format!("inbound frame length {len} exceeds cap; dropping connection")
            });
            return;
        }
        let mut payload = vec![0u8; len as usize];
        let deadline = Instant::now() + inner.cfg.read_timeout;
        match read_full(&inner, &mut stream, &mut payload, Some(deadline)) {
            ReadOutcome::Full => {}
            ReadOutcome::TimedOut | ReadOutcome::Eof => {
                inner.c.timeouts.inc();
                inner.rec.event_with(Severity::Warn, "wire", None, || {
                    format!("inbound frame body ({len} bytes) timed out; dropping connection")
                });
                return;
            }
            ReadOutcome::Stopped => return,
            ReadOutcome::Error(e) => {
                inner.rec.event_with(Severity::Warn, "wire", None, || {
                    format!("inbound connection error: {e}")
                });
                return;
            }
        }
        inner.c.bytes_recv.add(4 + len as u64);
        match decode_payload::<M>(&payload) {
            Ok(env) => inner.dispatch(env),
            Err(e) => {
                // Framing is length-delimited, so a bad payload does not
                // desynchronize the stream; log and keep reading.
                inner.c.decode_errors.inc();
                inner.rec.event_with(Severity::Error, "wire", None, || format!("{e}"));
            }
        }
    }
}

/// Discovery datagram reader.
fn spawn_udp_loop<M: WireEncode + Send + Clone + 'static>(inner: Arc<Inner<M>>, udp: UdpSocket) {
    std::thread::Builder::new()
        .name(format!("cn-wire-udp-{}", inner.port))
        .spawn(move || {
            let mut buf = vec![0u8; 64 * 1024];
            loop {
                if inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                match udp.recv_from(&mut buf) {
                    Ok((n, _peer)) => match decode_payload::<M>(&buf[..n]) {
                        Ok(env) => inner.dispatch(env),
                        Err(e) => {
                            inner.c.decode_errors.inc();
                            inner
                                .rec
                                .event_with(Severity::Warn, "wire", None, || format!("udp: {e}"));
                        }
                    },
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
        })
        .expect("spawn wire udp thread");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FabricHandle;

    // u64 is a fine stand-in message for transport tests.
    impl WireEncode for u64 {
        fn encode(&self, w: &mut crate::codec::Writer) {
            w.put_u64(*self);
        }

        fn decode(r: &mut crate::codec::Reader<'_>) -> Result<Self, crate::codec::WireError> {
            r.get_u64()
        }
    }

    fn loopback_pair() -> (SocketFabric<u64>, SocketFabric<u64>) {
        // Bind both fabrics first (ephemeral ports), then wire the peer
        // lists via a rebuild: simplest is to create with explicit ports.
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let b: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        (a, b)
    }

    fn recv_within(rx: &Receiver<Envelope<u64>>, ms: u64) -> Envelope<u64> {
        rx.recv_timeout(Duration::from_millis(ms)).expect("message within deadline")
    }

    #[test]
    fn tcp_unicast_crosses_fabrics() {
        let (a, b) = loopback_pair();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        a.send(addr_a, addr_b, 42).unwrap();
        let env = recv_within(&rx_b, 2000);
        assert_eq!(env.msg, 42);
        assert_eq!(env.from, addr_a);
    }

    #[test]
    fn per_peer_order_is_preserved() {
        let (a, b) = loopback_pair();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        for i in 0..200u64 {
            a.send(addr_a, addr_b, i).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(recv_within(&rx_b, 2000).msg, i);
        }
    }

    #[test]
    fn local_fast_path_does_not_touch_tcp() {
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let (x, _rx_x) = a.register();
        let (y, rx_y) = a.register();
        a.send(x, y, 7).unwrap();
        assert_eq!(recv_within(&rx_y, 500).msg, 7);
    }

    #[test]
    fn send_to_dead_peer_is_typed_error_with_retries() {
        let rec = Recorder::new();
        // Reserve a port nobody listens on.
        let dead_port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = WireConfig {
            max_retries: 2,
            retry_base: Duration::from_millis(5),
            connect_timeout: Duration::from_millis(200),
            ..WireConfig::default()
        };
        let a: SocketFabric<u64> = SocketFabric::new(cfg, rec.clone()).unwrap();
        let (addr_a, _rx) = a.register();
        let dead = Addr(((dead_port as u64) << ADDR_PORT_SHIFT) | 1);
        let t0 = Instant::now();
        let err = a.send(addr_a, dead, 1).unwrap_err();
        assert!(
            matches!(err, SendError::ConnectFailed(d) | SendError::Timeout(d) if d == dead),
            "{err:?}"
        );
        assert!(t0.elapsed() < Duration::from_secs(5), "bounded backoff");
        assert_eq!(
            rec.counter("wire.connect_retries").get(),
            2,
            "exponential backoff retries recorded"
        );
    }

    #[test]
    fn peer_death_mid_conversation_surfaces_peer_closed() {
        let rec = Recorder::new();
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let b: SocketFabric<u64> = SocketFabric::new(
            WireConfig {
                max_retries: 0,
                connect_timeout: Duration::from_millis(200),
                ..WireConfig::default()
            },
            rec.clone(),
        )
        .unwrap();
        let (addr_a, rx_a) = a.register();
        let (addr_b, _rx_b) = b.register();
        b.send(addr_b, addr_a, 1).unwrap();
        assert_eq!(recv_within(&rx_a, 2000).msg, 1);
        // Kill fabric A: its listener thread stops accepting and the
        // established connection is reset when dropped.
        let a_port = a.port();
        drop(a);
        std::thread::sleep(Duration::from_millis(100));
        // The first send may still land in a kernel buffer; keep sending
        // until the failure surfaces. It must be a typed wire error.
        let mut last = Ok(());
        for i in 0..50 {
            last = b.send(addr_b, Addr(((a_port as u64) << ADDR_PORT_SHIFT) | 1), i);
            if last.is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let err = last.unwrap_err();
        assert!(
            matches!(
                err,
                SendError::PeerClosed(_) | SendError::ConnectFailed(_) | SendError::Timeout(_)
            ),
            "{err:?}"
        );
        // The reconnect attempt and failure are flight-recorder material.
        let events = rec.flight().dump();
        assert!(
            events.iter().any(|e| e.category == "wire"),
            "expected wire flight events, got {events:?}"
        );
    }

    #[test]
    fn loopback_discovery_reaches_remote_group_members() {
        let rec = Recorder::disabled();
        let a: SocketFabric<u64> = SocketFabric::new(WireConfig::default(), rec.clone()).unwrap();
        let b_cfg = WireConfig {
            discovery: Discovery::Loopback { peers: vec![a.port()] },
            ..WireConfig::default()
        };
        let b: SocketFabric<u64> = SocketFabric::new(b_cfg, rec).unwrap();
        let g = GroupId(0);
        let (addr_a, rx_a) = a.register();
        a.join_group(addr_a, g);
        let (addr_b, _rx_b) = b.register();
        // b multicasts; its peer list names a's port.
        let n = b.multicast(addr_b, g, 99);
        assert!(n >= 1);
        assert_eq!(recv_within(&rx_a, 2000).msg, 99);
    }

    #[test]
    fn multicast_discovery_reaches_remote_group_members() {
        // Real UDP multicast on a dedicated group/port (skip silently if
        // the environment forbids it — loopback mode is the fallback).
        let mk = |rec: Recorder| -> Option<SocketFabric<u64>> {
            SocketFabric::new(
                WireConfig {
                    discovery: Discovery::Multicast {
                        group: Ipv4Addr::new(239, 77, 7, 9),
                        port: 47179,
                    },
                    ..WireConfig::default()
                },
                rec,
            )
            .ok()
        };
        let Some(a) = mk(Recorder::disabled()) else { return };
        let Some(b) = mk(Recorder::disabled()) else { return };
        let g = GroupId(0);
        let (addr_a, rx_a) = a.register();
        a.join_group(addr_a, g);
        let (addr_b, _rx_b) = b.register();
        b.multicast(addr_b, g, 123);
        match rx_a.recv_timeout(Duration::from_millis(2000)) {
            Ok(env) => assert_eq!(env.msg, 123),
            // Multicast may be unavailable in a sandbox; not a failure.
            Err(_) => eprintln!("multicast unavailable; loopback fallback covers discovery"),
        }
    }

    #[test]
    fn fabric_handle_wraps_socket_fabric() {
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let h = FabricHandle::new(a);
        assert!(!h.shared_memory());
        let (x, _rx) = h.register();
        let (y, rx_y) = h.register();
        h.send(x, y, 5).unwrap();
        assert_eq!(rx_y.recv_timeout(Duration::from_millis(500)).unwrap().msg, 5);
    }
}
