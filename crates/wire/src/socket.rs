//! The `std::net` fabric: TCP unicast + UDP discovery over localhost,
//! driven by the `cn-reactor` sharded event loop.
//!
//! One [`SocketFabric`] per OS process. Every endpoint registered on it
//! shares the process's TCP listener; the listener port is encoded in the
//! high bits of each [`Addr`], which is what routes a message to the right
//! process. Unicast frames travel over one length-prefixed TCP connection
//! per peer. Multicast (the CN discovery group) travels as UDP datagrams —
//! either to a real multicast group or, in loopback mode, unicast to each
//! configured peer port.
//!
//! There are no per-connection threads. Each peer connection is an
//! [`EventHandler`] state machine (connecting → backoff → established)
//! pinned to one reactor shard: nonblocking reads feed the shared
//! [`FrameDecoder`], sends enqueue [`Frame`]s on the connection's
//! [`PeerQueue`] and ring the shard's eventfd only on the empty→non-empty
//! edge, and the shard flushes whatever accumulated with one vectored
//! `writev` — batching emerges from backpressure exactly as it did with
//! writer threads, and the shard's single-threaded drain preserves
//! per-peer order. Connect timeouts, bounded exponential backoff, and
//! mid-frame read deadlines all ride the shard's timer wheel.
//!
//! Faults are first-class: every drop, timeout and reconnect lands in the
//! flight recorder with a `wire.*` counter.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{Ipv4Addr, SocketAddrV4, TcpListener, TcpStream, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_cluster::{Addr, Envelope, GroupId, SendError};
use cn_observe::{Counter, Recorder, Severity, SpanId};
use cn_reactor::{sys, Action, EventHandler, Reactor, ShardCtx, TimerId, Token};
use cn_sync::channel::{unbounded_named, Receiver, Sender};
use cn_sync::{Condvar, Mutex};

use crate::codec::{
    decode_payload, encode_payload_into, with_scratch, Frame, FrameDecoder, WireEncode,
};
use crate::peer::{PeerQueue, PushOutcome};
use crate::{addr_group, addr_port, group_addr, is_group_addr, Fabric, ADDR_PORT_SHIFT};

/// How the discovery group reaches other processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Discovery {
    /// Real UDP multicast: every process joins `group:port` (with
    /// `SO_REUSEADDR` so they can share the port on one host).
    Multicast { group: Ipv4Addr, port: u16 },
    /// Loopback fallback: discovery datagrams are unicast to each peer's
    /// port on 127.0.0.1 (the peer list is the deployment's "subnet").
    Loopback { peers: Vec<u16> },
}

/// The default multicast group for CN discovery (site-local scope).
pub const DEFAULT_MULTICAST_GROUP: Ipv4Addr = Ipv4Addr::new(239, 77, 7, 7);
/// The default UDP port the discovery group shares in multicast mode.
pub const DEFAULT_MULTICAST_PORT: u16 = 47077;

/// Socket fabric tuning.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// TCP listen port (0 picks an ephemeral port).
    pub port: u16,
    pub discovery: Discovery,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Deadline for reading the rest of a frame once its header arrived.
    pub read_timeout: Duration,
    /// Extra connect attempts after the first fails.
    pub max_retries: u32,
    /// Backoff before retry N is `retry_base * 2^(N-1)`, capped at 1s.
    pub retry_base: Duration,
    /// Coalesce writes per peer: sends enqueue on the connection's queue
    /// and the reactor packs whatever accumulated while the previous
    /// flush was in flight into one `writev`. Off, every frame is its own
    /// write syscall.
    pub batch: bool,
    /// Most frames a single coalesced flush may carry.
    pub batch_max_frames: usize,
    /// Soft byte cap per coalesced flush (a single frame may exceed it).
    pub batch_max_bytes: usize,
    /// Reactor event-loop threads; peers hash to a shard. 0 means one per
    /// available core (capped — see [`cn_reactor::default_shards`]).
    pub reactor_shards: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            port: 0,
            discovery: Discovery::Loopback { peers: Vec::new() },
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            max_retries: 3,
            retry_base: Duration::from_millis(50),
            batch: true,
            batch_max_frames: 128,
            batch_max_bytes: 256 * 1024,
            reactor_shards: 0,
        }
    }
}

/// How often waiting senders re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// Backoff cap between connect retries.
const MAX_BACKOFF: Duration = Duration::from_secs(1);
/// Reads a single `on_ready` may issue before yielding the shard, so one
/// firehose connection cannot starve its shard-mates (level-triggered
/// epoll re-reports unread data immediately).
const MAX_READS_PER_WAKE: usize = 16;

/// Timer tags for the peer connection state machine.
const TAG_CONNECT: u64 = 1;
const TAG_BACKOFF: u64 = 2;
const TAG_READ_DEADLINE: u64 = 3;

struct WireCounters {
    frames_sent: Counter,
    frames_recv: Counter,
    bytes_sent: Counter,
    bytes_recv: Counter,
    connects: Counter,
    reconnects: Counter,
    retries: Counter,
    timeouts: Counter,
    drops: Counter,
    decode_errors: Counter,
    discovery_dgrams: Counter,
    batch_flushes: Counter,
    batch_frames: Counter,
    batch_bytes: Counter,
}

impl WireCounters {
    fn new(rec: &Recorder) -> WireCounters {
        WireCounters {
            frames_sent: rec.counter("wire.frames_sent"),
            frames_recv: rec.counter("wire.frames_recv"),
            bytes_sent: rec.counter("wire.bytes_sent"),
            bytes_recv: rec.counter("wire.bytes_recv"),
            connects: rec.counter("wire.connects"),
            reconnects: rec.counter("wire.reconnects"),
            retries: rec.counter("wire.connect_retries"),
            timeouts: rec.counter("wire.timeouts"),
            drops: rec.counter("wire.drops"),
            decode_errors: rec.counter("wire.decode_errors"),
            discovery_dgrams: rec.counter("wire.discovery_dgrams"),
            batch_flushes: rec.counter("wire.batch.flushes"),
            batch_frames: rec.counter("wire.batch.frames"),
            batch_bytes: rec.counter("wire.batch.bytes"),
        }
    }
}

/// Why a connect cycle gave up — mapped to the typed [`SendError`] the
/// waiting senders surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailKind {
    Refused,
    Timeout,
}

/// The sender-visible lifecycle of one outbound connection.
enum LinkPhase {
    /// The reactor is driving the connect/retry state machine; senders
    /// block on the link condvar until it resolves.
    Connecting,
    /// Established: enqueue on the queue, notify the reactor token.
    Up,
    /// The connect cycle exhausted its retries. Terminal; the entry is
    /// already out of the connection map.
    Failed(FailKind),
}

struct LinkState {
    phase: LinkPhase,
    /// Reactor token of the connection's handler, set at registration.
    token: Token,
    span: Option<SpanId>,
}

/// One outbound peer connection as the send paths see it: the shared
/// frame queue plus the phase gate senders wait on. The reactor-side
/// state machine lives in [`PeerHandler`].
struct PeerLink {
    port: u16,
    q: PeerQueue,
    state: Mutex<LinkState>,
    cv: Condvar,
}

impl PeerLink {
    fn new(port: u16) -> PeerLink {
        PeerLink {
            port,
            q: PeerQueue::new(),
            state: Mutex::named(
                "wire.link",
                LinkState { phase: LinkPhase::Connecting, token: 0, span: None },
            ),
            cv: Condvar::named("wire.link_cv"),
        }
    }
}

struct Inner<M> {
    port: u16,
    cfg: WireConfig,
    rec: Recorder,
    c: WireCounters,
    endpoints: Mutex<HashMap<u64, Sender<Envelope<M>>>>,
    groups: Mutex<HashMap<u32, HashSet<Addr>>>,
    /// Outbound connections, one per peer port. Each peer's frames drain
    /// on a single reactor shard in FIFO order — that is the per-peer
    /// ordering guarantee.
    conns: Mutex<HashMap<u16, Arc<PeerLink>>>,
    /// Serializes connection establishment so two senders racing to the
    /// same (new) peer cannot create two streams and reorder their frames.
    connect_lock: Mutex<()>,
    reactor: Reactor,
    /// Blocking discovery send socket (the nonblocking receive socket
    /// lives on the reactor).
    udp_send: UdpSocket,
    next_ep: AtomicU64,
    /// Round-robins inbound connections across reactor shards.
    next_inbound: AtomicU64,
    stop: AtomicBool,
    /// Self-reference so `&self` methods can hand an owning handle to the
    /// per-connection reactor handlers they register.
    weak: std::sync::Weak<Inner<M>>,
}

/// A real-socket [`Fabric`]. One per process; see the module docs.
pub struct SocketFabric<M: WireEncode + Send + Clone + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: WireEncode + Send + Clone + 'static> SocketFabric<M> {
    /// Bind the TCP listener and discovery sockets and start the reactor
    /// shards that drive them.
    pub fn new(cfg: WireConfig, rec: Recorder) -> std::io::Result<SocketFabric<M>> {
        let listener = TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, cfg.port))?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let (udp_recv, udp_send) = match &cfg.discovery {
            Discovery::Multicast { group, port: mc_port } => {
                let recv = bind_reuse(*mc_port).or_else(|_| {
                    UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, *mc_port))
                })?;
                recv.join_multicast_v4(group, &Ipv4Addr::UNSPECIFIED)?;
                let send = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0))?;
                // Loop our own datagrams back so other processes on this
                // host (the whole localhost-cluster use case) hear us.
                send.set_multicast_loop_v4(true)?;
                (recv, send)
            }
            // Loopback mode: the discovery socket shares the TCP port
            // number (different protocol, so no clash) — peers only need
            // to know one port per process.
            Discovery::Loopback { .. } => (
                UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))?,
                UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?,
            ),
        };
        udp_recv.set_nonblocking(true)?;
        let shards =
            if cfg.reactor_shards == 0 { cn_reactor::default_shards() } else { cfg.reactor_shards };
        let reactor = Reactor::new(&format!("wire-{port}"), shards)?;
        let inner = Arc::new_cyclic(|weak| Inner {
            port,
            c: WireCounters::new(&rec),
            rec,
            cfg,
            endpoints: Mutex::named("wire.endpoints", HashMap::new()),
            groups: Mutex::named("wire.groups", HashMap::new()),
            conns: Mutex::named("wire.conns", HashMap::new()),
            connect_lock: Mutex::named("wire.connect", ()),
            reactor,
            udp_send,
            next_ep: AtomicU64::new(1),
            next_inbound: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            weak: weak.clone(),
        });
        inner
            .reactor
            .register_on(0, Box::new(AcceptHandler { inner: Arc::clone(&inner), listener }));
        inner
            .reactor
            .register_on(0, Box::new(UdpHandler { inner: Arc::clone(&inner), udp: udp_recv }));
        Ok(SocketFabric { inner })
    }

    /// The bound TCP port (the process's identity on the wire).
    pub fn port(&self) -> u16 {
        self.inner.port
    }

    /// Reactor shards driving this fabric's sockets.
    pub fn reactor_shards(&self) -> usize {
        self.inner.reactor.shards()
    }

    /// Stop the reactor and close all connections. Idempotent; also
    /// invoked when the fabric is dropped.
    pub fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let links: Vec<Arc<PeerLink>> = self.inner.conns.lock().drain().map(|(_, l)| l).collect();
        for link in links {
            link.q.kill();
            let mut st = link.state.lock();
            self.inner.rec.span_end(st.span.take());
            if matches!(st.phase, LinkPhase::Connecting) {
                st.phase = LinkPhase::Failed(FailKind::Refused);
            }
            drop(st);
            link.cv.notify_all();
        }
        // Joins the shard threads; every handler's `on_close` drops its
        // socket, which is what stops the listener accepting and resets
        // established connections.
        self.inner.reactor.shutdown();
    }
}

impl<M: WireEncode + Send + Clone + 'static> Drop for SocketFabric<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<M: WireEncode + Send + Clone + 'static> Fabric<M> for SocketFabric<M> {
    fn register(&self) -> (Addr, Receiver<Envelope<M>>) {
        let ep = self.inner.next_ep.fetch_add(1, Ordering::Relaxed);
        let addr = Addr(((self.inner.port as u64) << ADDR_PORT_SHIFT) | ep);
        let (tx, rx) = unbounded_named("wire.endpoint");
        self.inner.endpoints.lock().insert(addr.0, tx);
        (addr, rx)
    }

    fn unregister(&self, addr: Addr) {
        self.inner.endpoints.lock().remove(&addr.0);
        for members in self.inner.groups.lock().values_mut() {
            members.remove(&addr);
        }
    }

    fn join_group(&self, addr: Addr, group: GroupId) {
        self.inner.groups.lock().entry(group.0).or_default().insert(addr);
    }

    fn leave_group(&self, addr: Addr, group: GroupId) {
        if let Some(members) = self.inner.groups.lock().get_mut(&group.0) {
            members.remove(&addr);
        }
    }

    fn send(&self, from: Addr, to: Addr, msg: M) -> Result<(), SendError> {
        if is_group_addr(to) {
            self.inner.do_multicast(from, addr_group(to), msg);
            return Ok(());
        }
        if addr_port(to) == self.inner.port {
            return self.inner.deliver_local(Envelope { from, to, msg });
        }
        self.inner.enqueue_frame(addr_port(to), Frame::encode(from, to, &msg), to)
    }

    fn send_many(&self, from: Addr, tos: &[Addr], msg: M) -> Result<usize, SendError> {
        let inner = &self.inner;
        let mut remote: Vec<Addr> = Vec::new();
        let mut local: Vec<Addr> = Vec::new();
        for &to in tos {
            if is_group_addr(to) {
                // Groups have their own encode-once path.
                inner.do_multicast(from, addr_group(to), msg.clone());
            } else if addr_port(to) == inner.port {
                local.push(to);
            } else {
                remote.push(to);
            }
        }
        // Every remote destination shares one serialization: the base
        // frame's bytes are copied-and-readdressed, never re-encoded.
        if let Some((&first, rest)) = remote.split_first() {
            let base = Frame::encode(from, first, &msg);
            for &to in rest {
                inner.enqueue_frame(addr_port(to), base.for_to(to), to)?;
            }
            inner.enqueue_frame(addr_port(first), base, first)?;
        }
        // Local members last so the final one takes the message by move.
        if let Some((&last, rest)) = local.split_last() {
            for &to in rest {
                inner.deliver_local(Envelope { from, to, msg: msg.clone() })?;
            }
            inner.deliver_local(Envelope { from, to: last, msg })?;
        }
        Ok(tos.len())
    }

    fn multicast(&self, from: Addr, group: GroupId, msg: M) -> usize {
        self.inner.do_multicast(from, group, msg)
    }

    fn recorder(&self) -> &Recorder {
        &self.inner.rec
    }

    fn shared_memory(&self) -> bool {
        false
    }
}

impl<M: WireEncode + Send + Clone + 'static> Inner<M> {
    fn deliver_local(&self, env: Envelope<M>) -> Result<(), SendError> {
        let to = env.to;
        let tx = self.endpoints.lock().get(&to.0).cloned();
        match tx {
            Some(tx) => {
                if tx.send(env).is_err() {
                    self.endpoints.lock().remove(&to.0);
                    return Err(SendError::Closed(to));
                }
                Ok(())
            }
            None => Err(SendError::UnknownAddr(to)),
        }
    }

    /// Deliver an envelope that arrived off the wire. Unknown endpoints
    /// are counted, not errors — the sender is in another process.
    fn dispatch(&self, env: Envelope<M>) {
        self.c.frames_recv.inc();
        if is_group_addr(env.to) {
            // Our own discovery datagram echoed back (multicast loop is on
            // so *other* processes on this host hear us): local members
            // already got a direct delivery at send time.
            if addr_port(env.from) == self.port {
                return;
            }
            let gid = addr_group(env.to);
            let mut members: Vec<Addr> = self
                .groups
                .lock()
                .get(&gid.0)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            members.retain(|&to| to != env.from);
            // Decode-once fan-out: the last member takes the message by
            // move, so k members cost k-1 clones (and one member, none).
            let Some((&last, rest)) = members.split_last() else { return };
            for &to in rest {
                let _ = self.deliver_local(Envelope { from: env.from, to, msg: env.msg.clone() });
            }
            let _ = self.deliver_local(Envelope { from: env.from, to: last, msg: env.msg });
            return;
        }
        if self.deliver_local(env).is_err() {
            self.c.drops.inc();
        }
    }

    fn do_multicast(&self, from: Addr, group: GroupId, msg: M) -> usize {
        let mut members: Vec<Addr> = self
            .groups
            .lock()
            .get(&group.0)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        members.retain(|&to| to != from);
        let mut count = members.len();
        // One serialization feeds every remote datagram, straight from the
        // thread's scratch buffer — no per-destination encode or alloc.
        count += with_scratch(|w| {
            encode_payload_into(from, group_addr(group), &msg, w);
            let payload = w.as_slice();
            let mut sent = 0;
            match &self.cfg.discovery {
                Discovery::Multicast { group: g, port } => {
                    if self.udp_send.send_to(payload, SocketAddrV4::new(*g, *port)).is_ok() {
                        self.c.discovery_dgrams.inc();
                        sent += 1;
                    }
                }
                Discovery::Loopback { peers } => {
                    for p in peers {
                        if *p == self.port {
                            continue;
                        }
                        if self
                            .udp_send
                            .send_to(payload, SocketAddrV4::new(Ipv4Addr::LOCALHOST, *p))
                            .is_ok()
                        {
                            self.c.discovery_dgrams.inc();
                            sent += 1;
                        }
                    }
                }
            }
            sent
        });
        // Local members: the last one takes the message by move.
        if let Some((&last, rest)) = members.split_last() {
            for &to in rest {
                let _ = self.deliver_local(Envelope { from, to, msg: msg.clone() });
            }
            let _ = self.deliver_local(Envelope { from, to: last, msg });
        }
        count
    }

    /// Hand a frame to the peer's connection queue (establishing the
    /// connection first if needed), reconnecting once if the reactor
    /// observed a dead stream since we last looked.
    fn enqueue_frame(&self, port: u16, frame: Frame, to: Addr) -> Result<(), SendError> {
        for attempt in 0..2 {
            let link = self.get_link(port, to)?;
            match link.q.push_frame(frame.clone()) {
                PushOutcome::Queued { was_empty } => {
                    if was_empty {
                        // The shard may be asleep with nothing to flush;
                        // this is the one push that must ring its eventfd.
                        let token = link.state.lock().token;
                        self.reactor.notify(token);
                    }
                    return Ok(());
                }
                PushOutcome::Dead => {
                    self.drop_conn_matching(port, &link, "connection dead at enqueue");
                    if attempt == 0 {
                        self.c.reconnects.inc();
                        self.rec.event_with(Severity::Warn, "wire", None, || {
                            format!("reconnecting to peer :{port} after connection death")
                        });
                    }
                }
            }
        }
        Err(SendError::PeerClosed(to))
    }

    /// Upper bound on how long one whole connect cycle (all attempts plus
    /// backoff) may take, used to bound the sender-side wait.
    fn connect_budget(&self) -> Duration {
        let mut total = self.cfg.connect_timeout * (self.cfg.max_retries + 1);
        let mut delay = self.cfg.retry_base;
        for _ in 0..self.cfg.max_retries {
            total += delay;
            delay = (delay * 2).min(MAX_BACKOFF);
        }
        total + Duration::from_secs(2)
    }

    /// Resolve the link for `port`: reuse the live connection, or install
    /// a [`PeerHandler`] on the reactor and wait for its connect cycle to
    /// resolve. Failures surface as the same typed errors (and counter
    /// increments) the blocking connect produced.
    fn get_link(&self, port: u16, to: Addr) -> Result<Arc<PeerLink>, SendError> {
        if self.stop.load(Ordering::Relaxed) {
            return Err(SendError::ConnectFailed(to));
        }
        // Bind the fast-path lookup before matching: a lock guard living
        // in the match scrutinee would still be held inside the arms.
        let cached = self.conns.lock().get(&port).cloned();
        let link = match cached {
            Some(l) => l,
            None => {
                let _guard = self.connect_lock.lock();
                // Double-check: another sender may have connected while we
                // waited for the lock.
                let existing = self.conns.lock().get(&port).cloned();
                match existing {
                    Some(l) => l,
                    None => {
                        let link = Arc::new(PeerLink::new(port));
                        let inner = self.weak.upgrade().expect("fabric alive during send");
                        let handler = PeerHandler {
                            inner,
                            link: Arc::clone(&link),
                            attempt: 0,
                            delay: self.cfg.retry_base,
                            last_timeout: false,
                            conn: PeerConn::Idle,
                            connect_timer: None,
                            read_timer: None,
                        };
                        let token = self.reactor.register_hashed(port as u64, Box::new(handler));
                        link.state.lock().token = token;
                        self.conns.lock().insert(port, Arc::clone(&link));
                        link
                    }
                }
            }
        };
        let deadline = Instant::now() + self.connect_budget();
        let mut st = link.state.lock();
        loop {
            match st.phase {
                LinkPhase::Up => {
                    drop(st);
                    return Ok(link);
                }
                LinkPhase::Failed(kind) => {
                    drop(st);
                    return Err(match kind {
                        FailKind::Timeout => SendError::Timeout(to),
                        FailKind::Refused => SendError::ConnectFailed(to),
                    });
                }
                LinkPhase::Connecting => {
                    if self.stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
                        drop(st);
                        return Err(SendError::ConnectFailed(to));
                    }
                    link.cv.wait_for(&mut st, POLL_INTERVAL);
                }
            }
        }
    }

    /// Drop the connection to `port` only if it is still `link` — a dying
    /// handler must not tear down a replacement connection another sender
    /// already established.
    fn drop_conn_matching(&self, port: u16, link: &Arc<PeerLink>, why: &str) {
        let mut conns = self.conns.lock();
        let matches = matches!(conns.get(&port), Some(l) if Arc::ptr_eq(l, link));
        if matches {
            conns.remove(&port);
        }
        drop(conns);
        if matches {
            link.q.kill();
            self.rec.span_end(link.state.lock().span.take());
            self.rec.event_with(Severity::Warn, "wire", None, || {
                format!("dropped conn :{port}: {why}")
            });
        }
    }
}

/// The per-connection send state while established.
enum PeerConn {
    /// Before the first attempt or between backoff retries (no fd).
    Idle,
    /// Nonblocking connect in flight; waiting for writability.
    Connecting(TcpStream),
    /// Established. `inflight` holds frames taken from the queue but not
    /// yet fully written; `skip` is how much of the front frame already
    /// went out in a previous partial `writev`.
    Up { stream: TcpStream, inflight: VecDeque<Frame>, skip: usize },
}

/// Reactor-side state machine for one outbound peer connection:
/// `Idle → Connecting → Up`, with wheel-timed connect deadlines and
/// bounded exponential backoff looping back through `Idle`, and vectored
/// flushes of the link's [`PeerQueue`] while `Up`.
struct PeerHandler<M: WireEncode + Send + Clone + 'static> {
    inner: Arc<Inner<M>>,
    link: Arc<PeerLink>,
    attempt: u32,
    delay: Duration,
    last_timeout: bool,
    conn: PeerConn,
    connect_timer: Option<TimerId>,
    read_timer: Option<TimerId>,
}

impl<M: WireEncode + Send + Clone + 'static> PeerHandler<M> {
    fn port(&self) -> u16 {
        self.link.port
    }

    fn start_attempt(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        let target = SocketAddrV4::new(Ipv4Addr::LOCALHOST, self.port());
        match sys::connect_nonblocking(target) {
            Ok((stream, true)) => self.establish(ctx, stream),
            Ok((stream, false)) => {
                if ctx.register_fd(stream.as_raw_fd(), false, true).is_err() {
                    return self.retry_or_fail(ctx, false, "epoll register failed");
                }
                self.connect_timer =
                    Some(ctx.arm_timer(self.inner.cfg.connect_timeout, TAG_CONNECT));
                self.conn = PeerConn::Connecting(stream);
                Action::Continue
            }
            Err(err) => self.retry_or_fail(ctx, false, &err.to_string()),
        }
    }

    /// One attempt failed: back off and retry, or fail the whole cycle
    /// with the same counters and typed error the blocking path had.
    fn retry_or_fail(&mut self, ctx: &mut ShardCtx<'_>, timed_out: bool, err: &str) -> Action {
        ctx.deregister_fd();
        if let Some(t) = self.connect_timer.take() {
            ctx.cancel_timer(t);
        }
        self.conn = PeerConn::Idle;
        self.last_timeout = timed_out;
        let (port, attempt, max) = (self.port(), self.attempt, self.inner.cfg.max_retries);
        self.inner.rec.event_with(Severity::Warn, "wire", None, || {
            format!("connect to :{port} failed (attempt {}/{}): {err}", attempt + 1, max + 1)
        });
        if self.attempt < max {
            self.attempt += 1;
            ctx.arm_timer(self.delay, TAG_BACKOFF);
            self.delay = (self.delay * 2).min(MAX_BACKOFF);
            return Action::Continue;
        }
        self.inner.c.drops.inc();
        let kind = if self.last_timeout {
            self.inner.c.timeouts.inc();
            FailKind::Timeout
        } else {
            FailKind::Refused
        };
        {
            let mut conns = self.inner.conns.lock();
            if matches!(conns.get(&port), Some(l) if Arc::ptr_eq(l, &self.link)) {
                conns.remove(&port);
            }
        }
        self.link.state.lock().phase = LinkPhase::Failed(kind);
        self.link.cv.notify_all();
        Action::Close
    }

    fn establish(&mut self, ctx: &mut ShardCtx<'_>, stream: TcpStream) -> Action {
        ctx.deregister_fd();
        if let Some(t) = self.connect_timer.take() {
            ctx.cancel_timer(t);
        }
        let _ = stream.set_nodelay(true);
        if ctx.register_fd(stream.as_raw_fd(), true, false).is_err() {
            return self.retry_or_fail(ctx, false, "epoll register failed");
        }
        self.inner.c.connects.inc();
        let span = self.inner.rec.span_start("wire", &format!("conn:{}", self.port()), None);
        self.conn = PeerConn::Up { stream, inflight: VecDeque::new(), skip: 0 };
        {
            let mut st = self.link.state.lock();
            st.span = span;
            st.phase = LinkPhase::Up;
        }
        self.link.cv.notify_all();
        // Senders may already be pushing; flush whatever raced in.
        self.flush(ctx)
    }

    /// Tear down an established connection: poison the queue so senders
    /// reconnect, drop the map entry (if still ours), close.
    fn die(&mut self, why: &str) -> Action {
        self.link.q.kill();
        self.inner.drop_conn_matching(self.port(), &self.link, why);
        Action::Close
    }

    /// Drain the link queue through vectored writes until it runs dry or
    /// the socket backpressures. Write interest is armed exactly while a
    /// partial flush is pending.
    fn flush(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        let cfg = &self.inner.cfg;
        let (max_frames, max_bytes) =
            if cfg.batch { (cfg.batch_max_frames, cfg.batch_max_bytes) } else { (1, usize::MAX) };
        let PeerConn::Up { stream, inflight, skip } = &mut self.conn else {
            return Action::Continue;
        };
        loop {
            if inflight.is_empty() {
                *skip = 0;
                if self.link.q.try_take_batch(inflight, max_frames, max_bytes) == 0 {
                    // Dry: sleep on readiness alone until the next enqueue
                    // rings the shard.
                    if ctx.set_interest(true, false).is_err() {
                        return self.die("epoll rearm failed");
                    }
                    return Action::Continue;
                }
            }
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(inflight.len());
            for (i, f) in inflight.iter().enumerate() {
                let bytes = f.bytes();
                slices.push(IoSlice::new(if i == 0 { &bytes[*skip..] } else { bytes }));
            }
            match (*stream).write_vectored(&slices) {
                Ok(0) => return self.die("connection closed during write"),
                Ok(mut n) => {
                    self.inner.c.bytes_sent.add(n as u64);
                    if cfg.batch {
                        self.inner.c.batch_flushes.inc();
                        self.inner.c.batch_bytes.add(n as u64);
                    }
                    let mut done = 0u64;
                    while let Some(front) = inflight.front() {
                        let remaining = front.len() - *skip;
                        if n >= remaining {
                            n -= remaining;
                            *skip = 0;
                            inflight.pop_front();
                            done += 1;
                        } else {
                            *skip += n;
                            break;
                        }
                    }
                    self.inner.c.frames_sent.add(done);
                    if cfg.batch {
                        self.inner.c.batch_frames.add(done);
                    }
                }
                Err(e) if sys::is_would_block(&e) => {
                    // Kernel buffer full: pick the flush back up on
                    // writability, batching whatever accumulates meanwhile.
                    if ctx.set_interest(true, true).is_err() {
                        return self.die("epoll rearm failed");
                    }
                    return Action::Continue;
                }
                Err(e) => {
                    if e.kind() == std::io::ErrorKind::TimedOut {
                        self.inner.c.timeouts.inc();
                    }
                    return self.die(&format!("batched write failed: {e}"));
                }
            }
        }
    }

    /// Drain whatever the peer sent back. The protocol sends nothing on
    /// outbound connections, so this is EOF/reset detection (plus
    /// tolerant consumption of any future backchannel traffic).
    fn drain_reads(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        let mut buf = ctx.take_scratch();
        let action = loop {
            let PeerConn::Up { stream, .. } = &mut self.conn else { break Action::Continue };
            match stream.read(&mut buf) {
                Ok(0) => break self.die("peer closed connection"),
                Ok(_) => continue,
                Err(e) if sys::is_would_block(&e) => break Action::Continue,
                Err(e) => break self.die(&format!("connection error: {e}")),
            }
        };
        ctx.put_scratch(buf);
        action
    }
}

impl<M: WireEncode + Send + Clone + 'static> EventHandler for PeerHandler<M> {
    fn on_register(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        self.start_attempt(ctx)
    }

    fn on_ready(&mut self, ctx: &mut ShardCtx<'_>, readable: bool, writable: bool) -> Action {
        match &mut self.conn {
            PeerConn::Connecting(stream) => {
                // Writable (or error) on a connecting socket is the
                // verdict; SO_ERROR says which.
                match sys::take_socket_error(stream) {
                    Ok(()) => {
                        let PeerConn::Connecting(stream) =
                            std::mem::replace(&mut self.conn, PeerConn::Idle)
                        else {
                            unreachable!("matched above")
                        };
                        self.establish(ctx, stream)
                    }
                    Err(e) => {
                        let timed_out = e.kind() == std::io::ErrorKind::TimedOut;
                        self.retry_or_fail(ctx, timed_out, &e.to_string())
                    }
                }
            }
            PeerConn::Up { .. } => {
                if readable {
                    if let Action::Close = self.drain_reads(ctx) {
                        return Action::Close;
                    }
                }
                if writable {
                    return self.flush(ctx);
                }
                Action::Continue
            }
            PeerConn::Idle => Action::Continue,
        }
    }

    fn on_timer(&mut self, ctx: &mut ShardCtx<'_>, tag: u64) -> Action {
        match tag {
            TAG_CONNECT => {
                self.connect_timer = None;
                if matches!(self.conn, PeerConn::Connecting(_)) {
                    self.retry_or_fail(ctx, true, "timed out")
                } else {
                    Action::Continue
                }
            }
            TAG_BACKOFF => {
                if matches!(self.conn, PeerConn::Idle) {
                    self.inner.c.retries.inc();
                    self.start_attempt(ctx)
                } else {
                    Action::Continue
                }
            }
            _ => Action::Continue,
        }
    }

    fn on_notify(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        self.flush(ctx)
    }

    fn on_close(&mut self) {
        // Dropping the stream closes the fd; poison the queue so senders
        // observe the death instead of queueing into the void.
        self.link.q.kill();
        let _ = self.read_timer.take();
        self.conn = PeerConn::Idle;
    }
}

/// Accepts inbound connections and spreads them across reactor shards.
struct AcceptHandler<M: WireEncode + Send + Clone + 'static> {
    inner: Arc<Inner<M>>,
    listener: TcpListener,
}

impl<M: WireEncode + Send + Clone + 'static> EventHandler for AcceptHandler<M> {
    fn on_register(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        match ctx.register_fd(self.listener.as_raw_fd(), true, false) {
            Ok(()) => Action::Continue,
            Err(_) => Action::Close,
        }
    }

    fn on_ready(&mut self, _ctx: &mut ShardCtx<'_>, _readable: bool, _writable: bool) -> Action {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let shard = self.inner.next_inbound.fetch_add(1, Ordering::Relaxed);
                    self.inner.reactor.register_hashed(
                        shard,
                        Box::new(InboundHandler {
                            inner: Arc::clone(&self.inner),
                            stream,
                            dec: FrameDecoder::new(),
                            read_timer: None,
                        }),
                    );
                }
                Err(e) if sys::is_would_block(&e) => return Action::Continue,
                Err(_) => return Action::Continue,
            }
        }
    }
}

/// Per-inbound-connection frame reader: each `read` takes whatever the
/// socket has — one frame or a coalesced batch — and [`FrameDecoder`]
/// splits it, so a flush of N frames costs one syscall, not 2N. A frame
/// left part-way in past `read_timeout` drops the connection (the
/// deadline rides the shard's timer wheel; idle waiting between frames
/// stays unbounded).
struct InboundHandler<M: WireEncode + Send + Clone + 'static> {
    inner: Arc<Inner<M>>,
    stream: TcpStream,
    dec: FrameDecoder,
    read_timer: Option<TimerId>,
}

enum ReadOutcome {
    KeepOpen,
    Close,
}

impl<M: WireEncode + Send + Clone + 'static> InboundHandler<M> {
    fn drain(&mut self, buf: &mut [u8]) -> ReadOutcome {
        for _ in 0..MAX_READS_PER_WAKE {
            match self.stream.read(buf) {
                Ok(0) => {
                    if self.dec.has_partial() {
                        self.inner.c.timeouts.inc();
                        let pending = self.dec.pending_bytes();
                        self.inner.rec.event_with(Severity::Warn, "wire", None, || {
                            format!("connection closed mid-frame ({pending} bytes pending)")
                        });
                    }
                    return ReadOutcome::Close;
                }
                Ok(n) => {
                    self.dec.feed(&buf[..n]);
                    loop {
                        match self.dec.next_payload() {
                            Ok(Some(payload)) => {
                                self.inner.c.bytes_recv.add(4 + payload.len() as u64);
                                match decode_payload::<M>(&payload) {
                                    Ok(env) => self.inner.dispatch(env),
                                    Err(e) => {
                                        // Framing is length-delimited, so a
                                        // bad payload does not desynchronize
                                        // the stream; log and keep reading.
                                        self.inner.c.decode_errors.inc();
                                        self.inner.rec.event_with(
                                            Severity::Error,
                                            "wire",
                                            None,
                                            || format!("{e}"),
                                        );
                                    }
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                // An oversized length prefix: the stream
                                // offset is no longer trustworthy, drop the
                                // connection.
                                self.inner.c.decode_errors.inc();
                                self.inner.rec.event_with(Severity::Error, "wire", None, || {
                                    format!("{e}; dropping connection")
                                });
                                return ReadOutcome::Close;
                            }
                        }
                    }
                }
                Err(e) if sys::is_would_block(&e) => return ReadOutcome::KeepOpen,
                Err(e) => {
                    self.inner.rec.event_with(Severity::Warn, "wire", None, || {
                        format!("inbound connection error: {e}")
                    });
                    return ReadOutcome::Close;
                }
            }
        }
        // Read budget spent; level-triggered epoll re-reports the rest so
        // shard-mates get a turn.
        ReadOutcome::KeepOpen
    }
}

impl<M: WireEncode + Send + Clone + 'static> EventHandler for InboundHandler<M> {
    fn on_register(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        match ctx.register_fd(self.stream.as_raw_fd(), true, false) {
            Ok(()) => Action::Continue,
            Err(_) => Action::Close,
        }
    }

    fn on_ready(&mut self, ctx: &mut ShardCtx<'_>, _readable: bool, _writable: bool) -> Action {
        let mut buf = ctx.take_scratch();
        let outcome = self.drain(&mut buf);
        ctx.put_scratch(buf);
        // Rearm the mid-frame deadline to track the newest partial; a
        // completed frame disarms it.
        if let Some(t) = self.read_timer.take() {
            ctx.cancel_timer(t);
        }
        match outcome {
            ReadOutcome::KeepOpen => {
                if self.dec.has_partial() {
                    self.read_timer =
                        Some(ctx.arm_timer(self.inner.cfg.read_timeout, TAG_READ_DEADLINE));
                }
                Action::Continue
            }
            ReadOutcome::Close => Action::Close,
        }
    }

    fn on_timer(&mut self, _ctx: &mut ShardCtx<'_>, tag: u64) -> Action {
        if tag != TAG_READ_DEADLINE {
            return Action::Continue;
        }
        self.read_timer = None;
        if self.dec.has_partial() {
            self.inner.c.timeouts.inc();
            let pending = self.dec.pending_bytes();
            self.inner.rec.event_with(Severity::Warn, "wire", None, || {
                format!("inbound frame timed out mid-read ({pending} bytes pending); dropping connection")
            });
            return Action::Close;
        }
        Action::Continue
    }
}

/// Discovery datagram reader.
struct UdpHandler<M: WireEncode + Send + Clone + 'static> {
    inner: Arc<Inner<M>>,
    udp: UdpSocket,
}

impl<M: WireEncode + Send + Clone + 'static> EventHandler for UdpHandler<M> {
    fn on_register(&mut self, ctx: &mut ShardCtx<'_>) -> Action {
        match ctx.register_fd(self.udp.as_raw_fd(), true, false) {
            Ok(()) => Action::Continue,
            Err(_) => Action::Close,
        }
    }

    fn on_ready(&mut self, ctx: &mut ShardCtx<'_>, _readable: bool, _writable: bool) -> Action {
        let mut buf = ctx.take_scratch();
        for _ in 0..MAX_READS_PER_WAKE {
            match self.udp.recv_from(&mut buf) {
                Ok((n, _peer)) => match decode_payload::<M>(&buf[..n]) {
                    Ok(env) => self.inner.dispatch(env),
                    Err(e) => {
                        self.inner.c.decode_errors.inc();
                        self.inner
                            .rec
                            .event_with(Severity::Warn, "wire", None, || format!("udp: {e}"));
                    }
                },
                Err(e) if sys::is_would_block(&e) => break,
                Err(_) => break,
            }
        }
        ctx.put_scratch(buf);
        Action::Continue
    }
}

/// Create a UDP socket bound to `0.0.0.0:port` with `SO_REUSEADDR`, so
/// several processes on one host can share the discovery port. `std::net`
/// cannot set socket options before bind, so this goes through the libc
/// already linked into every Rust binary.
#[cfg(unix)]
fn bind_reuse(port: u16) -> std::io::Result<UdpSocket> {
    use std::os::fd::FromRawFd;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    unsafe {
        let fd = socket(AF_INET, SOCK_DGRAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one as *const i32 as *const u8, 4) < 0 {
            let err = std::io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        let sa = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: 0, // INADDR_ANY
            sin_zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
            let err = std::io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        Ok(UdpSocket::from_raw_fd(fd))
    }
}

#[cfg(not(unix))]
fn bind_reuse(port: u16) -> std::io::Result<UdpSocket> {
    UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, port))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FabricHandle;
    use std::net::TcpListener;

    // u64 is a fine stand-in message for transport tests.
    impl WireEncode for u64 {
        fn encode(&self, w: &mut crate::codec::Writer) {
            w.put_u64(*self);
        }

        fn decode(r: &mut crate::codec::Reader<'_>) -> Result<Self, crate::codec::WireError> {
            r.get_u64()
        }
    }

    fn loopback_pair() -> (SocketFabric<u64>, SocketFabric<u64>) {
        // Bind both fabrics first (ephemeral ports), then wire the peer
        // lists via a rebuild: simplest is to create with explicit ports.
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let b: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        (a, b)
    }

    fn recv_within(rx: &Receiver<Envelope<u64>>, ms: u64) -> Envelope<u64> {
        rx.recv_timeout(Duration::from_millis(ms)).expect("message within deadline")
    }

    #[test]
    fn tcp_unicast_crosses_fabrics() {
        let (a, b) = loopback_pair();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        a.send(addr_a, addr_b, 42).unwrap();
        let env = recv_within(&rx_b, 2000);
        assert_eq!(env.msg, 42);
        assert_eq!(env.from, addr_a);
    }

    #[test]
    fn per_peer_order_is_preserved() {
        let (a, b) = loopback_pair();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        for i in 0..200u64 {
            a.send(addr_a, addr_b, i).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(recv_within(&rx_b, 2000).msg, i);
        }
    }

    #[test]
    fn local_fast_path_does_not_touch_tcp() {
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let (x, _rx_x) = a.register();
        let (y, rx_y) = a.register();
        a.send(x, y, 7).unwrap();
        assert_eq!(recv_within(&rx_y, 500).msg, 7);
    }

    #[test]
    fn send_to_dead_peer_is_typed_error_with_retries() {
        let rec = Recorder::new();
        // Reserve a port nobody listens on.
        let dead_port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = WireConfig {
            max_retries: 2,
            retry_base: Duration::from_millis(5),
            connect_timeout: Duration::from_millis(200),
            ..WireConfig::default()
        };
        let a: SocketFabric<u64> = SocketFabric::new(cfg, rec.clone()).unwrap();
        let (addr_a, _rx) = a.register();
        let dead = Addr(((dead_port as u64) << ADDR_PORT_SHIFT) | 1);
        let t0 = Instant::now();
        let err = a.send(addr_a, dead, 1).unwrap_err();
        assert!(
            matches!(err, SendError::ConnectFailed(d) | SendError::Timeout(d) if d == dead),
            "{err:?}"
        );
        assert!(t0.elapsed() < Duration::from_secs(5), "bounded backoff");
        assert_eq!(
            rec.counter("wire.connect_retries").get(),
            2,
            "exponential backoff retries recorded"
        );
    }

    #[test]
    fn peer_death_mid_conversation_surfaces_peer_closed() {
        let rec = Recorder::new();
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let b: SocketFabric<u64> = SocketFabric::new(
            WireConfig {
                max_retries: 0,
                connect_timeout: Duration::from_millis(200),
                ..WireConfig::default()
            },
            rec.clone(),
        )
        .unwrap();
        let (addr_a, rx_a) = a.register();
        let (addr_b, _rx_b) = b.register();
        b.send(addr_b, addr_a, 1).unwrap();
        assert_eq!(recv_within(&rx_a, 2000).msg, 1);
        // Kill fabric A: its listener stops accepting and the established
        // connection is reset when its handler closes.
        let a_port = a.port();
        drop(a);
        std::thread::sleep(Duration::from_millis(100));
        // The first send may still land in a kernel buffer; keep sending
        // until the failure surfaces. It must be a typed wire error.
        let mut last = Ok(());
        for i in 0..50 {
            last = b.send(addr_b, Addr(((a_port as u64) << ADDR_PORT_SHIFT) | 1), i);
            if last.is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let err = last.unwrap_err();
        assert!(
            matches!(
                err,
                SendError::PeerClosed(_) | SendError::ConnectFailed(_) | SendError::Timeout(_)
            ),
            "{err:?}"
        );
        // The reconnect attempt and failure are flight-recorder material.
        let events = rec.flight().dump();
        assert!(
            events.iter().any(|e| e.category == "wire"),
            "expected wire flight events, got {events:?}"
        );
    }

    #[test]
    fn loopback_discovery_reaches_remote_group_members() {
        let rec = Recorder::disabled();
        let a: SocketFabric<u64> = SocketFabric::new(WireConfig::default(), rec.clone()).unwrap();
        let b_cfg = WireConfig {
            discovery: Discovery::Loopback { peers: vec![a.port()] },
            ..WireConfig::default()
        };
        let b: SocketFabric<u64> = SocketFabric::new(b_cfg, rec).unwrap();
        let g = GroupId(0);
        let (addr_a, rx_a) = a.register();
        a.join_group(addr_a, g);
        let (addr_b, _rx_b) = b.register();
        // b multicasts; its peer list names a's port.
        let n = b.multicast(addr_b, g, 99);
        assert!(n >= 1);
        assert_eq!(recv_within(&rx_a, 2000).msg, 99);
    }

    #[test]
    fn multicast_discovery_reaches_remote_group_members() {
        // Real UDP multicast on a dedicated group/port (skip silently if
        // the environment forbids it — loopback mode is the fallback).
        let mk = |rec: Recorder| -> Option<SocketFabric<u64>> {
            SocketFabric::new(
                WireConfig {
                    discovery: Discovery::Multicast {
                        group: Ipv4Addr::new(239, 77, 7, 9),
                        port: 47179,
                    },
                    ..WireConfig::default()
                },
                rec,
            )
            .ok()
        };
        let Some(a) = mk(Recorder::disabled()) else { return };
        let Some(b) = mk(Recorder::disabled()) else { return };
        let g = GroupId(0);
        let (addr_a, rx_a) = a.register();
        a.join_group(addr_a, g);
        let (addr_b, _rx_b) = b.register();
        b.multicast(addr_b, g, 123);
        match rx_a.recv_timeout(Duration::from_millis(2000)) {
            Ok(env) => assert_eq!(env.msg, 123),
            // Multicast may be unavailable in a sandbox; not a failure.
            Err(_) => eprintln!("multicast unavailable; loopback fallback covers discovery"),
        }
    }

    #[test]
    fn batched_writes_flow_through_the_writer_and_count() {
        let rec = Recorder::new();
        let a: SocketFabric<u64> = SocketFabric::new(WireConfig::default(), rec.clone()).unwrap();
        let b: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        for i in 0..500u64 {
            a.send(addr_a, addr_b, i).unwrap();
        }
        for i in 0..500u64 {
            assert_eq!(recv_within(&rx_b, 2000).msg, i);
        }
        assert_eq!(rec.counter("wire.batch.frames").get(), 500);
        assert_eq!(rec.counter("wire.frames_sent").get(), 500);
        let flushes = rec.counter("wire.batch.flushes").get();
        assert!(flushes >= 1 && flushes <= 500, "{flushes}");
        assert!(rec.counter("wire.batch.bytes").get() > 0);
    }

    #[test]
    fn unbatched_path_is_still_selectable() {
        let rec = Recorder::new();
        let cfg = WireConfig { batch: false, ..WireConfig::default() };
        let a: SocketFabric<u64> = SocketFabric::new(cfg.clone(), rec.clone()).unwrap();
        let b: SocketFabric<u64> = SocketFabric::new(cfg, Recorder::disabled()).unwrap();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        for i in 0..50u64 {
            a.send(addr_a, addr_b, i).unwrap();
        }
        for i in 0..50u64 {
            assert_eq!(recv_within(&rx_b, 2000).msg, i);
        }
        assert_eq!(rec.counter("wire.frames_sent").get(), 50);
        assert_eq!(rec.counter("wire.batch.flushes").get(), 0, "no coalescing when off");
    }

    #[test]
    fn send_many_reaches_remote_and_local_destinations() {
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let b: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let c: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let (addr_a, _rx_a) = a.register();
        let (local, rx_local) = a.register();
        let (addr_b, rx_b) = b.register();
        let (addr_c, rx_c) = c.register();
        // One encoding fans out to two processes; the local member gets
        // the message by move.
        let n = a.send_many(addr_a, &[addr_b, addr_c, local], 77).unwrap();
        assert_eq!(n, 3);
        for (rx, expect_from) in [(&rx_b, addr_a), (&rx_c, addr_a), (&rx_local, addr_a)] {
            let env = recv_within(rx, 2000);
            assert_eq!(env.msg, 77);
            assert_eq!(env.from, expect_from);
        }
        // Each recipient saw its own address as destination, not the
        // first destination the frame was originally encoded for.
        // (Verified implicitly: delivery is routed by the `to` field.)
    }

    #[test]
    fn fabric_handle_wraps_socket_fabric() {
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let h = FabricHandle::new(a);
        assert!(!h.shared_memory());
        let (x, _rx) = h.register();
        let (y, rx_y) = h.register();
        h.send(x, y, 5).unwrap();
        assert_eq!(rx_y.recv_timeout(Duration::from_millis(500)).unwrap().msg, 5);
    }

    #[test]
    fn explicit_shard_count_is_respected() {
        let cfg = WireConfig { reactor_shards: 3, ..WireConfig::default() };
        let a: SocketFabric<u64> = SocketFabric::new(cfg, Recorder::disabled()).unwrap();
        assert_eq!(a.reactor_shards(), 3);
        let b: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        for i in 0..20u64 {
            a.send(addr_a, addr_b, i).unwrap();
        }
        for i in 0..20u64 {
            assert_eq!(recv_within(&rx_b, 2000).msg, i);
        }
    }
}
