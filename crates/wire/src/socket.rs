//! The `std::net` fabric: TCP unicast + UDP discovery over localhost.
//!
//! One [`SocketFabric`] per OS process. Every endpoint registered on it
//! shares the process's TCP listener; the listener port is encoded in the
//! high bits of each [`Addr`], which is what routes a message to the right
//! process. Unicast frames travel over one length-prefixed TCP connection
//! per peer (writes are serialized per connection, so per-peer delivery
//! order matches send order). Multicast (the CN discovery group) travels
//! as UDP datagrams — either to a real multicast group or, in loopback
//! mode, unicast to each configured peer port.
//!
//! Faults are first-class: connects and reads have timeouts, connects are
//! retried with bounded exponential backoff, and every drop, timeout and
//! reconnect lands in the flight recorder with a `wire.*` counter.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cn_cluster::{Addr, Envelope, GroupId, SendError};
use cn_observe::{Counter, Recorder, Severity, SpanId};
use cn_sync::channel::{unbounded_named, Receiver, Sender};
use cn_sync::Mutex;

use crate::codec::{
    decode_payload, encode_frame_into, encode_payload_into, with_scratch, Frame, FrameDecoder,
    WireEncode,
};
use crate::peer::PeerQueue;
use crate::{addr_group, addr_port, group_addr, is_group_addr, Fabric, ADDR_PORT_SHIFT};

/// How the discovery group reaches other processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Discovery {
    /// Real UDP multicast: every process joins `group:port` (with
    /// `SO_REUSEADDR` so they can share the port on one host).
    Multicast { group: Ipv4Addr, port: u16 },
    /// Loopback fallback: discovery datagrams are unicast to each peer's
    /// port on 127.0.0.1 (the peer list is the deployment's "subnet").
    Loopback { peers: Vec<u16> },
}

/// The default multicast group for CN discovery (site-local scope).
pub const DEFAULT_MULTICAST_GROUP: Ipv4Addr = Ipv4Addr::new(239, 77, 7, 7);
/// The default UDP port the discovery group shares in multicast mode.
pub const DEFAULT_MULTICAST_PORT: u16 = 47077;

/// Socket fabric tuning.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// TCP listen port (0 picks an ephemeral port).
    pub port: u16,
    pub discovery: Discovery,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Deadline for reading the rest of a frame once its header arrived,
    /// and for blocking writes.
    pub read_timeout: Duration,
    /// Extra connect attempts after the first fails.
    pub max_retries: u32,
    /// Backoff before retry N is `retry_base * 2^(N-1)`, capped at 1s.
    pub retry_base: Duration,
    /// Coalesce writes per peer: sends enqueue on a per-connection writer
    /// thread that packs whatever accumulated while the previous write was
    /// in flight into one `write_all`. Off, every send is its own write.
    pub batch: bool,
    /// Most frames a single coalesced flush may carry.
    pub batch_max_frames: usize,
    /// Soft byte cap per coalesced flush (a single frame may exceed it).
    pub batch_max_bytes: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            port: 0,
            discovery: Discovery::Loopback { peers: Vec::new() },
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            max_retries: 3,
            retry_base: Duration::from_millis(50),
            batch: true,
            batch_max_frames: 128,
            batch_max_bytes: 256 * 1024,
        }
    }
}

/// How often blocked reads/accepts wake up to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// Backoff cap between connect retries.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

struct WireCounters {
    frames_sent: Counter,
    frames_recv: Counter,
    bytes_sent: Counter,
    bytes_recv: Counter,
    connects: Counter,
    reconnects: Counter,
    retries: Counter,
    timeouts: Counter,
    drops: Counter,
    decode_errors: Counter,
    discovery_dgrams: Counter,
    batch_flushes: Counter,
    batch_frames: Counter,
    batch_bytes: Counter,
}

impl WireCounters {
    fn new(rec: &Recorder) -> WireCounters {
        WireCounters {
            frames_sent: rec.counter("wire.frames_sent"),
            frames_recv: rec.counter("wire.frames_recv"),
            bytes_sent: rec.counter("wire.bytes_sent"),
            bytes_recv: rec.counter("wire.bytes_recv"),
            connects: rec.counter("wire.connects"),
            reconnects: rec.counter("wire.reconnects"),
            retries: rec.counter("wire.connect_retries"),
            timeouts: rec.counter("wire.timeouts"),
            drops: rec.counter("wire.drops"),
            decode_errors: rec.counter("wire.decode_errors"),
            discovery_dgrams: rec.counter("wire.discovery_dgrams"),
            batch_flushes: rec.counter("wire.batch.flushes"),
            batch_frames: rec.counter("wire.batch.frames"),
            batch_bytes: rec.counter("wire.batch.bytes"),
        }
    }
}

/// The send side of one peer connection.
#[derive(Clone)]
enum Link {
    /// Unbatched: callers write frames directly under the stream lock.
    Direct(Arc<Mutex<TcpStream>>),
    /// Batched: callers enqueue shared [`Frame`]s; the connection's writer
    /// thread owns the stream and coalesces.
    Batched(Arc<PeerQueue>),
}

struct Conn {
    link: Link,
    span: Option<SpanId>,
}

struct Inner<M> {
    port: u16,
    cfg: WireConfig,
    rec: Recorder,
    c: WireCounters,
    endpoints: Mutex<HashMap<u64, Sender<Envelope<M>>>>,
    groups: Mutex<HashMap<u32, HashSet<Addr>>>,
    /// Outbound connections, one per peer port. All writes to a peer go
    /// through its single stream, serialized by the mutex — that is the
    /// per-peer ordering guarantee.
    conns: Mutex<HashMap<u16, Conn>>,
    /// Serializes connection establishment so two senders racing to the
    /// same (new) peer cannot create two streams and reorder their frames.
    connect_lock: Mutex<()>,
    udp: UdpSocket,
    next_ep: AtomicU64,
    stop: AtomicBool,
    /// Self-reference so `&self` methods can hand an owning handle to the
    /// per-connection writer threads they spawn.
    weak: std::sync::Weak<Inner<M>>,
}

/// A real-socket [`Fabric`]. One per process; see the module docs.
pub struct SocketFabric<M: WireEncode + Send + Clone + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: WireEncode + Send + Clone + 'static> SocketFabric<M> {
    /// Bind the TCP listener and discovery socket, start the accept and
    /// discovery threads.
    pub fn new(cfg: WireConfig, rec: Recorder) -> std::io::Result<SocketFabric<M>> {
        let listener = TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, cfg.port))?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let udp = match &cfg.discovery {
            Discovery::Multicast { group, port: mc_port } => {
                let sock = bind_reuse(*mc_port).or_else(|_| {
                    UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, *mc_port))
                })?;
                sock.join_multicast_v4(group, &Ipv4Addr::UNSPECIFIED)?;
                sock.set_multicast_loop_v4(true)?;
                sock
            }
            // Loopback mode: the discovery socket shares the TCP port
            // number (different protocol, so no clash) — peers only need
            // to know one port per process.
            Discovery::Loopback { .. } => {
                UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))?
            }
        };
        udp.set_read_timeout(Some(POLL_INTERVAL))?;
        let udp_send = udp.try_clone()?;
        let inner = Arc::new_cyclic(|weak| Inner {
            port,
            c: WireCounters::new(&rec),
            rec,
            cfg,
            endpoints: Mutex::named("wire.endpoints", HashMap::new()),
            groups: Mutex::named("wire.groups", HashMap::new()),
            conns: Mutex::named("wire.conns", HashMap::new()),
            connect_lock: Mutex::named("wire.connect", ()),
            udp: udp_send,
            next_ep: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            weak: weak.clone(),
        });
        spawn_accept_loop(Arc::clone(&inner), listener);
        spawn_udp_loop(Arc::clone(&inner), udp);
        Ok(SocketFabric { inner })
    }

    /// The bound TCP port (the process's identity on the wire).
    pub fn port(&self) -> u16 {
        self.inner.port
    }

    /// Stop the background threads and close all connections. Idempotent;
    /// also invoked when the fabric is dropped.
    pub fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut conns = self.inner.conns.lock();
        for (_, conn) in conns.drain() {
            self.inner.rec.span_end(conn.span);
            match conn.link {
                Link::Direct(stream) => {
                    let _ = stream.lock().shutdown(std::net::Shutdown::Both);
                }
                // The writer thread owns the stream; waking it with the
                // dead flag set makes it exit and drop (close) the stream.
                Link::Batched(q) => q.kill(),
            }
        }
    }
}

impl<M: WireEncode + Send + Clone + 'static> Drop for SocketFabric<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<M: WireEncode + Send + Clone + 'static> Fabric<M> for SocketFabric<M> {
    fn register(&self) -> (Addr, Receiver<Envelope<M>>) {
        let ep = self.inner.next_ep.fetch_add(1, Ordering::Relaxed);
        let addr = Addr(((self.inner.port as u64) << ADDR_PORT_SHIFT) | ep);
        let (tx, rx) = unbounded_named("wire.endpoint");
        self.inner.endpoints.lock().insert(addr.0, tx);
        (addr, rx)
    }

    fn unregister(&self, addr: Addr) {
        self.inner.endpoints.lock().remove(&addr.0);
        for members in self.inner.groups.lock().values_mut() {
            members.remove(&addr);
        }
    }

    fn join_group(&self, addr: Addr, group: GroupId) {
        self.inner.groups.lock().entry(group.0).or_default().insert(addr);
    }

    fn leave_group(&self, addr: Addr, group: GroupId) {
        if let Some(members) = self.inner.groups.lock().get_mut(&group.0) {
            members.remove(&addr);
        }
    }

    fn send(&self, from: Addr, to: Addr, msg: M) -> Result<(), SendError> {
        if is_group_addr(to) {
            self.inner.do_multicast(from, addr_group(to), msg);
            return Ok(());
        }
        if addr_port(to) == self.inner.port {
            return self.inner.deliver_local(Envelope { from, to, msg });
        }
        self.inner.send_remote(from, to, &msg)
    }

    fn send_many(&self, from: Addr, tos: &[Addr], msg: M) -> Result<usize, SendError> {
        let inner = &self.inner;
        let mut remote: Vec<Addr> = Vec::new();
        let mut local: Vec<Addr> = Vec::new();
        for &to in tos {
            if is_group_addr(to) {
                // Groups have their own encode-once path.
                inner.do_multicast(from, addr_group(to), msg.clone());
            } else if addr_port(to) == inner.port {
                local.push(to);
            } else {
                remote.push(to);
            }
        }
        // Every remote destination shares one serialization: the base
        // frame's bytes are copied-and-readdressed, never re-encoded.
        if let Some((&first, rest)) = remote.split_first() {
            let base = Frame::encode(from, first, &msg);
            for &to in rest {
                inner.send_encoded(addr_port(to), base.for_to(to), to)?;
            }
            inner.send_encoded(addr_port(first), base, first)?;
        }
        // Local members last so the final one takes the message by move.
        if let Some((&last, rest)) = local.split_last() {
            for &to in rest {
                inner.deliver_local(Envelope { from, to, msg: msg.clone() })?;
            }
            inner.deliver_local(Envelope { from, to: last, msg })?;
        }
        Ok(tos.len())
    }

    fn multicast(&self, from: Addr, group: GroupId, msg: M) -> usize {
        self.inner.do_multicast(from, group, msg)
    }

    fn recorder(&self) -> &Recorder {
        &self.inner.rec
    }

    fn shared_memory(&self) -> bool {
        false
    }
}

impl<M: WireEncode + Send + Clone + 'static> Inner<M> {
    fn deliver_local(&self, env: Envelope<M>) -> Result<(), SendError> {
        let to = env.to;
        let tx = self.endpoints.lock().get(&to.0).cloned();
        match tx {
            Some(tx) => {
                if tx.send(env).is_err() {
                    self.endpoints.lock().remove(&to.0);
                    return Err(SendError::Closed(to));
                }
                Ok(())
            }
            None => Err(SendError::UnknownAddr(to)),
        }
    }

    /// Deliver an envelope that arrived off the wire. Unknown endpoints
    /// are counted, not errors — the sender is in another process.
    fn dispatch(&self, env: Envelope<M>) {
        self.c.frames_recv.inc();
        if is_group_addr(env.to) {
            // Our own discovery datagram echoed back (multicast loop is on
            // so *other* processes on this host hear us): local members
            // already got a direct delivery at send time.
            if addr_port(env.from) == self.port {
                return;
            }
            let gid = addr_group(env.to);
            let mut members: Vec<Addr> = self
                .groups
                .lock()
                .get(&gid.0)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            members.retain(|&to| to != env.from);
            // Decode-once fan-out: the last member takes the message by
            // move, so k members cost k-1 clones (and one member, none).
            let Some((&last, rest)) = members.split_last() else { return };
            for &to in rest {
                let _ = self.deliver_local(Envelope { from: env.from, to, msg: env.msg.clone() });
            }
            let _ = self.deliver_local(Envelope { from: env.from, to: last, msg: env.msg });
            return;
        }
        if self.deliver_local(env).is_err() {
            self.c.drops.inc();
        }
    }

    fn do_multicast(&self, from: Addr, group: GroupId, msg: M) -> usize {
        let mut members: Vec<Addr> = self
            .groups
            .lock()
            .get(&group.0)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        members.retain(|&to| to != from);
        let mut count = members.len();
        // One serialization feeds every remote datagram, straight from the
        // thread's scratch buffer — no per-destination encode or alloc.
        count += with_scratch(|w| {
            encode_payload_into(from, group_addr(group), &msg, w);
            let payload = w.as_slice();
            let mut sent = 0;
            match &self.cfg.discovery {
                Discovery::Multicast { group: g, port } => {
                    if self.udp.send_to(payload, SocketAddrV4::new(*g, *port)).is_ok() {
                        self.c.discovery_dgrams.inc();
                        sent += 1;
                    }
                }
                Discovery::Loopback { peers } => {
                    for p in peers {
                        if *p == self.port {
                            continue;
                        }
                        if self
                            .udp
                            .send_to(payload, SocketAddrV4::new(Ipv4Addr::LOCALHOST, *p))
                            .is_ok()
                        {
                            self.c.discovery_dgrams.inc();
                            sent += 1;
                        }
                    }
                }
            }
            sent
        });
        // Local members: the last one takes the message by move.
        if let Some((&last, rest)) = members.split_last() {
            for &to in rest {
                let _ = self.deliver_local(Envelope { from, to, msg: msg.clone() });
            }
            let _ = self.deliver_local(Envelope { from, to: last, msg });
        }
        count
    }

    /// Unicast one message to a remote peer, serializing straight from the
    /// thread's scratch buffer (unbatched) or into a shared [`Frame`] for
    /// the peer's writer queue (batched).
    fn send_remote(&self, from: Addr, to: Addr, msg: &M) -> Result<(), SendError> {
        let port = addr_port(to);
        if self.cfg.batch {
            self.enqueue_frame(port, Frame::encode(from, to, msg), to)
        } else {
            with_scratch(|w| {
                encode_frame_into(from, to, msg, w);
                self.send_frame(port, w.as_slice(), to)
            })
        }
    }

    /// Send an already-encoded frame (the shared fan-out path).
    fn send_encoded(&self, port: u16, frame: Frame, to: Addr) -> Result<(), SendError> {
        if self.cfg.batch {
            self.enqueue_frame(port, frame, to)
        } else {
            self.send_frame(port, frame.bytes(), to)
        }
    }

    /// Hand a frame to the peer's writer queue, reconnecting once if the
    /// writer observed a dead stream since we last looked.
    fn enqueue_frame(&self, port: u16, frame: Frame, to: Addr) -> Result<(), SendError> {
        for attempt in 0..2 {
            let q = match self.get_link(port, to)? {
                Link::Batched(q) => q,
                // get_link builds Direct links only when batching is off,
                // and this path is only taken when it is on.
                Link::Direct(_) => unreachable!("batched send on an unbatched link"),
            };
            if q.push(frame.clone()) {
                return Ok(());
            }
            self.drop_conn_matching(port, &q, "writer dead at enqueue");
            if attempt == 0 {
                self.c.reconnects.inc();
                self.rec.event_with(Severity::Warn, "wire", None, || {
                    format!("reconnecting to peer :{port} after writer death")
                });
            }
        }
        Err(SendError::PeerClosed(to))
    }

    /// Write one frame to a peer, reconnecting once if the connection
    /// died underneath us. The unbatched path.
    fn send_frame(&self, port: u16, frame: &[u8], to: Addr) -> Result<(), SendError> {
        let mut reconnected = false;
        loop {
            let stream = match self.get_link(port, to)? {
                Link::Direct(s) => s,
                Link::Batched(_) => unreachable!("unbatched send on a batched link"),
            };
            let res = {
                let mut s = stream.lock();
                s.write_all(frame)
            };
            match res {
                Ok(()) => {
                    self.c.frames_sent.inc();
                    self.c.bytes_sent.add(frame.len() as u64);
                    return Ok(());
                }
                Err(err) => {
                    self.drop_conn(port, &format!("write failed: {err}"));
                    if reconnected {
                        return Err(
                            if err.kind() == std::io::ErrorKind::TimedOut
                                || err.kind() == std::io::ErrorKind::WouldBlock
                            {
                                self.c.timeouts.inc();
                                SendError::Timeout(to)
                            } else {
                                SendError::PeerClosed(to)
                            },
                        );
                    }
                    self.c.reconnects.inc();
                    self.rec.event_with(Severity::Warn, "wire", None, || {
                        format!("reconnecting to peer :{port} after write failure")
                    });
                    reconnected = true;
                }
            }
        }
    }

    fn get_link(&self, port: u16, to: Addr) -> Result<Link, SendError> {
        if let Some(c) = self.conns.lock().get(&port) {
            return Ok(c.link.clone());
        }
        let _guard = self.connect_lock.lock();
        // Double-check: another sender may have connected while we waited.
        if let Some(c) = self.conns.lock().get(&port) {
            return Ok(c.link.clone());
        }
        let target = SocketAddr::from(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
        let mut delay = self.cfg.retry_base;
        let mut last_timeout = false;
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.c.retries.inc();
                std::thread::sleep(delay);
                delay = (delay * 2).min(MAX_BACKOFF);
            }
            match TcpStream::connect_timeout(&target, self.cfg.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(self.cfg.read_timeout));
                    self.c.connects.inc();
                    let span = self.rec.span_start("wire", &format!("conn:{port}"), None);
                    let link = if self.cfg.batch {
                        let q = Arc::new(PeerQueue::new());
                        let inner = self.weak.upgrade().expect("fabric alive during send");
                        spawn_writer_loop(inner, port, stream, Arc::clone(&q));
                        Link::Batched(q)
                    } else {
                        Link::Direct(Arc::new(Mutex::named("wire.stream", stream)))
                    };
                    self.conns.lock().insert(port, Conn { link: link.clone(), span });
                    return Ok(link);
                }
                Err(err) => {
                    last_timeout = err.kind() == std::io::ErrorKind::TimedOut;
                    self.rec.event_with(Severity::Warn, "wire", None, || {
                        format!(
                            "connect to :{port} failed (attempt {}/{}): {err}",
                            attempt + 1,
                            self.cfg.max_retries + 1
                        )
                    });
                }
            }
        }
        self.c.drops.inc();
        Err(if last_timeout {
            self.c.timeouts.inc();
            SendError::Timeout(to)
        } else {
            SendError::ConnectFailed(to)
        })
    }

    fn drop_conn(&self, port: u16, why: &str) {
        if let Some(conn) = self.conns.lock().remove(&port) {
            self.close_conn(port, conn, why);
        }
    }

    /// Drop the connection to `port` only if it is still the one whose
    /// queue is `q` — a failing writer must not tear down a replacement
    /// connection another sender already established.
    fn drop_conn_matching(&self, port: u16, q: &Arc<PeerQueue>, why: &str) {
        let mut conns = self.conns.lock();
        let matches = matches!(
            conns.get(&port),
            Some(Conn { link: Link::Batched(q2), .. }) if Arc::ptr_eq(q2, q)
        );
        if matches {
            let conn = conns.remove(&port).expect("checked above");
            drop(conns);
            self.close_conn(port, conn, why);
        }
    }

    fn close_conn(&self, port: u16, conn: Conn, why: &str) {
        self.rec.span_end(conn.span);
        match conn.link {
            Link::Direct(stream) => {
                let _ = stream.lock().shutdown(std::net::Shutdown::Both);
            }
            Link::Batched(q) => q.kill(),
        }
        self.rec
            .event_with(Severity::Warn, "wire", None, || format!("dropped conn :{port}: {why}"));
    }
}

/// Per-peer coalescing writer: drains whatever accumulated on the queue
/// while the previous `write_all` was in flight and flushes it as one
/// write. Idle queues flush immediately (the drain finds one frame);
/// saturated queues amortize the syscall across up to `batch_max_frames`.
fn spawn_writer_loop<M: WireEncode + Send + Clone + 'static>(
    inner: Arc<Inner<M>>,
    port: u16,
    mut stream: TcpStream,
    q: Arc<PeerQueue>,
) {
    cn_sync::thread::Builder::new()
        .name(format!("cn-wire-write-{port}"))
        .spawn(move || {
            let mut out: Vec<u8> = Vec::new();
            loop {
                let drained = q.drain_batch(
                    &mut out,
                    inner.cfg.batch_max_frames,
                    inner.cfg.batch_max_bytes,
                    POLL_INTERVAL,
                    || inner.stop.load(Ordering::Relaxed),
                );
                if drained == 0 {
                    return;
                }
                match stream.write_all(&out) {
                    Ok(()) => {
                        inner.c.frames_sent.add(drained as u64);
                        inner.c.bytes_sent.add(out.len() as u64);
                        inner.c.batch_flushes.inc();
                        inner.c.batch_frames.add(drained as u64);
                        inner.c.batch_bytes.add(out.len() as u64);
                    }
                    Err(err) => {
                        if err.kind() == std::io::ErrorKind::TimedOut
                            || err.kind() == std::io::ErrorKind::WouldBlock
                        {
                            inner.c.timeouts.inc();
                        }
                        q.kill();
                        inner.drop_conn_matching(port, &q, &format!("batched write failed: {err}"));
                        return;
                    }
                }
            }
        })
        .expect("spawn wire writer thread");
}

/// Create a UDP socket bound to `0.0.0.0:port` with `SO_REUSEADDR`, so
/// several processes on one host can share the discovery port. `std::net`
/// cannot set socket options before bind, so this goes through the libc
/// already linked into every Rust binary.
#[cfg(unix)]
fn bind_reuse(port: u16) -> std::io::Result<UdpSocket> {
    use std::os::fd::FromRawFd;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    unsafe {
        let fd = socket(AF_INET, SOCK_DGRAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one as *const i32 as *const u8, 4) < 0 {
            let err = std::io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        let sa = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: 0, // INADDR_ANY
            sin_zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
            let err = std::io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        Ok(UdpSocket::from_raw_fd(fd))
    }
}

#[cfg(not(unix))]
fn bind_reuse(port: u16) -> std::io::Result<UdpSocket> {
    UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, port))
}

fn spawn_accept_loop<M: WireEncode + Send + Clone + 'static>(
    inner: Arc<Inner<M>>,
    listener: TcpListener,
) {
    std::thread::Builder::new()
        .name(format!("cn-wire-accept-{}", inner.port))
        .spawn(move || loop {
            if inner.stop.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                    let inner2 = Arc::clone(&inner);
                    let _ = std::thread::Builder::new()
                        .name(format!("cn-wire-read-{}", inner.port))
                        .spawn(move || read_loop(inner2, stream));
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(POLL_INTERVAL.min(Duration::from_millis(5)));
                }
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        })
        .expect("spawn wire accept thread");
}

/// Per-inbound-connection frame reader: each `read` takes whatever the
/// socket has — one frame or a coalesced batch — and [`FrameDecoder`]
/// splits it, so a flush of N frames costs one syscall, not 2N.
fn read_loop<M: WireEncode + Send + Clone + 'static>(inner: Arc<Inner<M>>, mut stream: TcpStream) {
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    // Armed while a frame is part-way in: silence past the deadline drops
    // the connection. Idle waiting between frames stays unbounded.
    let mut partial_deadline: Option<Instant> = None;
    loop {
        if inner.stop.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if dec.has_partial() {
                    inner.c.timeouts.inc();
                    inner.rec.event_with(Severity::Warn, "wire", None, || {
                        format!(
                            "connection closed mid-frame ({} bytes pending)",
                            dec.pending_bytes()
                        )
                    });
                }
                return;
            }
            Ok(n) => {
                dec.feed(&buf[..n]);
                loop {
                    match dec.next_payload() {
                        Ok(Some(payload)) => {
                            inner.c.bytes_recv.add(4 + payload.len() as u64);
                            match decode_payload::<M>(&payload) {
                                Ok(env) => inner.dispatch(env),
                                Err(e) => {
                                    // Framing is length-delimited, so a bad
                                    // payload does not desynchronize the
                                    // stream; log and keep reading.
                                    inner.c.decode_errors.inc();
                                    inner.rec.event_with(Severity::Error, "wire", None, || {
                                        format!("{e}")
                                    });
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // An oversized length prefix: the stream offset
                            // is no longer trustworthy, drop the connection.
                            inner.c.decode_errors.inc();
                            inner.rec.event_with(Severity::Error, "wire", None, || {
                                format!("{e}; dropping connection")
                            });
                            return;
                        }
                    }
                }
                partial_deadline = if dec.has_partial() {
                    Some(Instant::now() + inner.cfg.read_timeout)
                } else {
                    None
                };
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(d) = partial_deadline {
                    if Instant::now() > d {
                        inner.c.timeouts.inc();
                        inner.rec.event_with(Severity::Warn, "wire", None, || {
                            format!(
                                "inbound frame timed out mid-read ({} bytes pending); dropping connection",
                                dec.pending_bytes()
                            )
                        });
                        return;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                inner.rec.event_with(Severity::Warn, "wire", None, || {
                    format!("inbound connection error: {e}")
                });
                return;
            }
        }
    }
}

/// Discovery datagram reader.
fn spawn_udp_loop<M: WireEncode + Send + Clone + 'static>(inner: Arc<Inner<M>>, udp: UdpSocket) {
    std::thread::Builder::new()
        .name(format!("cn-wire-udp-{}", inner.port))
        .spawn(move || {
            let mut buf = vec![0u8; 64 * 1024];
            loop {
                if inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                match udp.recv_from(&mut buf) {
                    Ok((n, _peer)) => match decode_payload::<M>(&buf[..n]) {
                        Ok(env) => inner.dispatch(env),
                        Err(e) => {
                            inner.c.decode_errors.inc();
                            inner
                                .rec
                                .event_with(Severity::Warn, "wire", None, || format!("udp: {e}"));
                        }
                    },
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
        })
        .expect("spawn wire udp thread");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FabricHandle;

    // u64 is a fine stand-in message for transport tests.
    impl WireEncode for u64 {
        fn encode(&self, w: &mut crate::codec::Writer) {
            w.put_u64(*self);
        }

        fn decode(r: &mut crate::codec::Reader<'_>) -> Result<Self, crate::codec::WireError> {
            r.get_u64()
        }
    }

    fn loopback_pair() -> (SocketFabric<u64>, SocketFabric<u64>) {
        // Bind both fabrics first (ephemeral ports), then wire the peer
        // lists via a rebuild: simplest is to create with explicit ports.
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let b: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        (a, b)
    }

    fn recv_within(rx: &Receiver<Envelope<u64>>, ms: u64) -> Envelope<u64> {
        rx.recv_timeout(Duration::from_millis(ms)).expect("message within deadline")
    }

    #[test]
    fn tcp_unicast_crosses_fabrics() {
        let (a, b) = loopback_pair();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        a.send(addr_a, addr_b, 42).unwrap();
        let env = recv_within(&rx_b, 2000);
        assert_eq!(env.msg, 42);
        assert_eq!(env.from, addr_a);
    }

    #[test]
    fn per_peer_order_is_preserved() {
        let (a, b) = loopback_pair();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        for i in 0..200u64 {
            a.send(addr_a, addr_b, i).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(recv_within(&rx_b, 2000).msg, i);
        }
    }

    #[test]
    fn local_fast_path_does_not_touch_tcp() {
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let (x, _rx_x) = a.register();
        let (y, rx_y) = a.register();
        a.send(x, y, 7).unwrap();
        assert_eq!(recv_within(&rx_y, 500).msg, 7);
    }

    #[test]
    fn send_to_dead_peer_is_typed_error_with_retries() {
        let rec = Recorder::new();
        // Reserve a port nobody listens on.
        let dead_port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = WireConfig {
            max_retries: 2,
            retry_base: Duration::from_millis(5),
            connect_timeout: Duration::from_millis(200),
            ..WireConfig::default()
        };
        let a: SocketFabric<u64> = SocketFabric::new(cfg, rec.clone()).unwrap();
        let (addr_a, _rx) = a.register();
        let dead = Addr(((dead_port as u64) << ADDR_PORT_SHIFT) | 1);
        let t0 = Instant::now();
        let err = a.send(addr_a, dead, 1).unwrap_err();
        assert!(
            matches!(err, SendError::ConnectFailed(d) | SendError::Timeout(d) if d == dead),
            "{err:?}"
        );
        assert!(t0.elapsed() < Duration::from_secs(5), "bounded backoff");
        assert_eq!(
            rec.counter("wire.connect_retries").get(),
            2,
            "exponential backoff retries recorded"
        );
    }

    #[test]
    fn peer_death_mid_conversation_surfaces_peer_closed() {
        let rec = Recorder::new();
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let b: SocketFabric<u64> = SocketFabric::new(
            WireConfig {
                max_retries: 0,
                connect_timeout: Duration::from_millis(200),
                ..WireConfig::default()
            },
            rec.clone(),
        )
        .unwrap();
        let (addr_a, rx_a) = a.register();
        let (addr_b, _rx_b) = b.register();
        b.send(addr_b, addr_a, 1).unwrap();
        assert_eq!(recv_within(&rx_a, 2000).msg, 1);
        // Kill fabric A: its listener thread stops accepting and the
        // established connection is reset when dropped.
        let a_port = a.port();
        drop(a);
        std::thread::sleep(Duration::from_millis(100));
        // The first send may still land in a kernel buffer; keep sending
        // until the failure surfaces. It must be a typed wire error.
        let mut last = Ok(());
        for i in 0..50 {
            last = b.send(addr_b, Addr(((a_port as u64) << ADDR_PORT_SHIFT) | 1), i);
            if last.is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let err = last.unwrap_err();
        assert!(
            matches!(
                err,
                SendError::PeerClosed(_) | SendError::ConnectFailed(_) | SendError::Timeout(_)
            ),
            "{err:?}"
        );
        // The reconnect attempt and failure are flight-recorder material.
        let events = rec.flight().dump();
        assert!(
            events.iter().any(|e| e.category == "wire"),
            "expected wire flight events, got {events:?}"
        );
    }

    #[test]
    fn loopback_discovery_reaches_remote_group_members() {
        let rec = Recorder::disabled();
        let a: SocketFabric<u64> = SocketFabric::new(WireConfig::default(), rec.clone()).unwrap();
        let b_cfg = WireConfig {
            discovery: Discovery::Loopback { peers: vec![a.port()] },
            ..WireConfig::default()
        };
        let b: SocketFabric<u64> = SocketFabric::new(b_cfg, rec).unwrap();
        let g = GroupId(0);
        let (addr_a, rx_a) = a.register();
        a.join_group(addr_a, g);
        let (addr_b, _rx_b) = b.register();
        // b multicasts; its peer list names a's port.
        let n = b.multicast(addr_b, g, 99);
        assert!(n >= 1);
        assert_eq!(recv_within(&rx_a, 2000).msg, 99);
    }

    #[test]
    fn multicast_discovery_reaches_remote_group_members() {
        // Real UDP multicast on a dedicated group/port (skip silently if
        // the environment forbids it — loopback mode is the fallback).
        let mk = |rec: Recorder| -> Option<SocketFabric<u64>> {
            SocketFabric::new(
                WireConfig {
                    discovery: Discovery::Multicast {
                        group: Ipv4Addr::new(239, 77, 7, 9),
                        port: 47179,
                    },
                    ..WireConfig::default()
                },
                rec,
            )
            .ok()
        };
        let Some(a) = mk(Recorder::disabled()) else { return };
        let Some(b) = mk(Recorder::disabled()) else { return };
        let g = GroupId(0);
        let (addr_a, rx_a) = a.register();
        a.join_group(addr_a, g);
        let (addr_b, _rx_b) = b.register();
        b.multicast(addr_b, g, 123);
        match rx_a.recv_timeout(Duration::from_millis(2000)) {
            Ok(env) => assert_eq!(env.msg, 123),
            // Multicast may be unavailable in a sandbox; not a failure.
            Err(_) => eprintln!("multicast unavailable; loopback fallback covers discovery"),
        }
    }

    #[test]
    fn batched_writes_flow_through_the_writer_and_count() {
        let rec = Recorder::new();
        let a: SocketFabric<u64> = SocketFabric::new(WireConfig::default(), rec.clone()).unwrap();
        let b: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        for i in 0..500u64 {
            a.send(addr_a, addr_b, i).unwrap();
        }
        for i in 0..500u64 {
            assert_eq!(recv_within(&rx_b, 2000).msg, i);
        }
        assert_eq!(rec.counter("wire.batch.frames").get(), 500);
        assert_eq!(rec.counter("wire.frames_sent").get(), 500);
        let flushes = rec.counter("wire.batch.flushes").get();
        assert!(flushes >= 1 && flushes <= 500, "{flushes}");
        assert!(rec.counter("wire.batch.bytes").get() > 0);
    }

    #[test]
    fn unbatched_path_is_still_selectable() {
        let rec = Recorder::new();
        let cfg = WireConfig { batch: false, ..WireConfig::default() };
        let a: SocketFabric<u64> = SocketFabric::new(cfg.clone(), rec.clone()).unwrap();
        let b: SocketFabric<u64> = SocketFabric::new(cfg, Recorder::disabled()).unwrap();
        let (addr_a, _rx_a) = a.register();
        let (addr_b, rx_b) = b.register();
        for i in 0..50u64 {
            a.send(addr_a, addr_b, i).unwrap();
        }
        for i in 0..50u64 {
            assert_eq!(recv_within(&rx_b, 2000).msg, i);
        }
        assert_eq!(rec.counter("wire.frames_sent").get(), 50);
        assert_eq!(rec.counter("wire.batch.flushes").get(), 0, "no writer thread when off");
    }

    #[test]
    fn send_many_reaches_remote_and_local_destinations() {
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let b: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let c: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let (addr_a, _rx_a) = a.register();
        let (local, rx_local) = a.register();
        let (addr_b, rx_b) = b.register();
        let (addr_c, rx_c) = c.register();
        // One encoding fans out to two processes; the local member gets
        // the message by move.
        let n = a.send_many(addr_a, &[addr_b, addr_c, local], 77).unwrap();
        assert_eq!(n, 3);
        for (rx, expect_from) in [(&rx_b, addr_a), (&rx_c, addr_a), (&rx_local, addr_a)] {
            let env = recv_within(rx, 2000);
            assert_eq!(env.msg, 77);
            assert_eq!(env.from, expect_from);
        }
        // Each recipient saw its own address as destination, not the
        // first destination the frame was originally encoded for.
        // (Verified implicitly: delivery is routed by the `to` field.)
    }

    #[test]
    fn fabric_handle_wraps_socket_fabric() {
        let a: SocketFabric<u64> =
            SocketFabric::new(WireConfig::default(), Recorder::disabled()).unwrap();
        let h = FabricHandle::new(a);
        assert!(!h.shared_memory());
        let (x, _rx) = h.register();
        let (y, rx_y) = h.register();
        h.send(x, y, 5).unwrap();
        assert_eq!(rx_y.recv_timeout(Duration::from_millis(500)).unwrap().msg, 5);
    }
}
